//! Observability tour: run a small weak-set workload, then inspect the
//! metrics registry, the structured event sink, the causal span DAG
//! (with its critical-path decomposition and a Perfetto-loadable trace
//! export), a machine-readable `ObsSnapshot` of the run, and finally
//! the live telemetry plane — the same registry served over HTTP as
//! Prometheus text.
//!
//! Run with: `cargo run --example observability_tour`

use weak_sets::prelude::*;
use weakset_obs::telemetry::{TelemetryHub, TelemetryServer};
use weakset_obs::{http_get, parse_prometheus};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(7),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }

    // The event sink is off by default (metrics are always on). Enable it
    // to get a time-stamped feed of faults and scheduled tasks.
    world.events_mut().set_enabled(true);

    let set = WeakSetBuilder::new(CollectionId(1), servers[0])
        .client_node(laptop)
        .timeout(SimDuration::from_millis(100))
        .create(&mut world)?;
    for i in 0..12u64 {
        let home = servers[(i % 3) as usize];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("item-{i}"), format!("payload {i}")),
            home,
        )?;
    }

    // Crash one element server mid-run, then iterate with Snapshot
    // semantics: the losses show up in the per-figure iterator counters,
    // and the fault itself lands in the event sink.
    world.schedule_fault(
        world.now() + SimDuration::from_millis(1),
        FaultAction::Crash(servers[2]),
    );
    let (records, end) = set.collect(&mut world, Semantics::Snapshot);
    println!(
        "snapshot iteration: yielded {} of 12 elements, finished with {end:?}\n",
        records.len()
    );

    // 1. The metrics registry: dotted-path counters, gauges, and latency
    //    histograms, instrumented throughout the stack.
    println!("--- metrics ---\n{}", world.metrics());

    // 2. The event sink: structured events keyed by simulated time.
    //    Point events only here — spans are summarized via the DAG below.
    println!("--- events (points) ---");
    for ev in world.events().events().iter().filter(|e| e.span.is_none()) {
        println!("{:>8}us {} {}", ev.at_us, ev.kind, ev.detail);
    }

    // 3. The causal DAG: every `elements` computation is one cross-node
    //    trace. Walk the roots, decompose each trace's simulated latency
    //    along its critical path, and export the whole run as a Chrome
    //    trace-event file loadable in https://ui.perfetto.dev.
    let at = world.now().as_micros();
    let unclosed = world.events_mut().finish(at);
    assert!(unclosed.is_empty(), "unclosed spans: {unclosed:?}");
    let dag = CausalDag::from_events(world.events().events());
    println!("\n--- causal traces ---");
    let mut trivial = 0usize;
    for &root in dag.roots() {
        let span = dag.span(root).expect("root is in the DAG");
        let n_spans = dag.descendants(root).len();
        if n_spans <= 2 {
            trivial += 1; // single setup RPCs: count, don't list
            continue;
        }
        let cp = critical_path_of(&dag, root);
        println!(
            "{} {} [{} spans]: {}us on the critical path \
             (network {}us, queue {}us, quorum-wait {}us, gossip {}us)",
            span.trace
                .map(|t| t.to_string())
                .unwrap_or_else(|| "(untraced)".into()),
            span.kind,
            n_spans,
            cp.total_us(),
            cp.network_us,
            cp.queue_us,
            cp.quorum_wait_us,
            cp.gossip_us,
        );
    }
    println!("(+ {trivial} single-RPC traces from workload setup)");
    let perfetto = chrome_trace(world.events().events());
    let path = std::env::temp_dir().join("weakset-tour-trace.json");
    std::fs::write(&path, &perfetto)?;
    println!(
        "perfetto trace: {} events, {} bytes -> {} (open in ui.perfetto.dev)",
        world.events().len(),
        perfetto.len(),
        path.display()
    );

    // 4. A snapshot: everything above frozen into a deterministic,
    //    machine-readable document (this is what `weakset-bench --bin
    //    snapshot` writes as BENCH_<scenario>.json).
    let snap = world.metrics().snapshot("tour", 7).with_objective(
        "yields",
        world.metrics().counter("iter.fig4.yielded") as f64,
        Direction::HigherIsBetter,
    );
    println!(
        "\n--- snapshot ({}) ---\n{}",
        snap.file_name(),
        snap.to_json()
    );

    // 5. The live plane: publish the same registry into a TelemetryHub
    //    and scrape it over HTTP, exactly as Prometheus (or `curl
    //    http://127.0.0.1:<port>/metrics`) would. On the threaded
    //    runtime views publish here on a cadence while the run is
    //    still going — see `examples/rt_quickstart.rs`.
    let hub = TelemetryHub::new();
    let mut publisher = hub.register(std::time::Duration::from_millis(10));
    publisher.publish(world.metrics());
    let endpoint = TelemetryServer::serve("127.0.0.1:0", hub, "tour", 7)?;
    let (status, text) = http_get(
        endpoint.addr(),
        "/metrics",
        std::time::Duration::from_secs(2),
    )?;
    let series = parse_prometheus(&text).map_err(std::io::Error::other)?;
    println!(
        "\n--- live telemetry (GET http://{}/metrics -> {status}) ---",
        endpoint.addr()
    );
    println!(
        "{} series; the iterator counters as Prometheus sees them:",
        series.len()
    );
    for line in text
        .lines()
        .filter(|l| l.starts_with("weakset_iter"))
        .take(4)
    {
        println!("    {line}");
    }
    endpoint.stop();
    Ok(())
}
