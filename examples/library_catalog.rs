//! The paper's LIS scenario: "through the on-line library information
//! system you want to get a list of papers by a particular author" —
//! and "if the LIS database is not up-to-date, we would not be surprised
//! if an author's most recent paper is not listed."
//!
//! The catalog's membership list is replicated; a replica that was
//! partitioned during an update serves a *stale* read under the
//! optimistic `Any` policy (missing the newest paper), while a `Quorum`
//! read pays more to find the freshest version.
//!
//! Run with: `cargo run --example library_catalog`

use weak_sets::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let patron = topo.add_node("patron", 0);
    // Sites order the replicas by distance from the patron: branch-b is
    // around the corner, the main library is across town.
    let main_lib = topo.add_node("main-library", 9);
    let branch_a = topo.add_node("branch-a", 5);
    let branch_b = topo.add_node("branch-b", 1);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(11),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(2),
            per_hop: SimDuration::from_millis(3),
        },
    );
    for n in [main_lib, branch_a, branch_b] {
        world.install_service(n, Box::new(StoreServer::new()));
    }

    // The "papers by Wing" catalog: primary at the main library,
    // replicas at both branches.
    let catalog = CollectionRef {
        id: CollectionId(1),
        home: main_lib,
        replicas: vec![branch_a, branch_b],
    };
    let librarian = StoreClient::new(main_lib, SimDuration::from_millis(100));
    librarian.create_collection(&mut world, &catalog)?;

    let papers = [
        "A Two-Tiered Approach to Specifying Programs (1983)",
        "Specifications and Their Use in Defining Subtypes (1993)",
    ];
    for (i, title) in papers.iter().enumerate() {
        let id = ObjectId(i as u64 + 1);
        librarian.put_object(
            &mut world,
            main_lib,
            ObjectRecord::new(id, *title, &b"postscript"[..]).with_attr("author", "wing"),
        )?;
        librarian.add_member(
            &mut world,
            &catalog,
            MemberEntry {
                elem: id,
                home: main_lib,
            },
        )?;
    }

    // Branch B is partitioned when the newest paper is catalogued.
    world.topology_mut().partition(&[branch_b]);
    let newest = ObjectId(3);
    librarian.put_object(
        &mut world,
        main_lib,
        ObjectRecord::new(newest, "Specifying Weak Sets (1995)", &b"postscript"[..])
            .with_attr("author", "wing"),
    )?;
    librarian.add_member(
        &mut world,
        &catalog,
        MemberEntry {
            elem: newest,
            home: main_lib,
        },
    )?;
    world.topology_mut().heal_partition();
    println!("catalogued 3 papers; branch-b missed the 1995 update\n");

    // The patron can only reach the branches (the main library's catalog
    // service is down for the evening).
    world.topology_mut().partition(&[main_lib]);
    let reader = StoreClient::new(patron, SimDuration::from_millis(100));

    // Optimistic read: closest replica, possibly stale.
    let any = reader.read_members(&mut world, &catalog, ReadPolicy::Any)?;
    println!(
        "ReadPolicy::Any     -> version {} with {} papers (stale reads are the price of availability)",
        any.version,
        any.entries.len()
    );

    // Quorum read: majority, newest version wins.
    let quorum = reader.read_members(&mut world, &catalog, ReadPolicy::Quorum)?;
    println!(
        "ReadPolicy::Quorum  -> version {} with {} papers",
        quorum.version,
        quorum.entries.len()
    );

    // Primary read: unavailable tonight.
    let primary = reader.read_members(&mut world, &catalog, ReadPolicy::Primary);
    println!("ReadPolicy::Primary -> {primary:?}");
    assert!(primary.is_err());

    // The closest replica (branch-b) is stale; the quorum found
    // branch-a's fresher copy.
    assert_eq!(any.version, 2);
    assert_eq!(any.entries.len(), 2);
    assert_eq!(quorum.version, 3);
    assert_eq!(quorum.entries.len(), 3);
    println!("\nthe patron tolerates staleness exactly as §1 predicts");
    Ok(())
}
