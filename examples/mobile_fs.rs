//! The §1.1 target environment: "a wide-area file system on a network of
//! (possibly mobile) workstations" where "disconnecting a mobile client
//! from the network while traveling is an induced failure."
//!
//! A laptop starts enumerating a big shared directory, boards a flight
//! (disconnects), keeps the partial listing, lands, reconnects, and
//! finishes — while a colleague kept adding files the whole time
//! (grow-only semantics picks those up too).
//!
//! Run with: `cargo run --example mobile_fs`

use weak_sets::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let office = topo.add_node("office-server", 1);
    let archive = topo.add_node("archive-server", 2);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(93),
        topo,
        LatencyModel::Exponential {
            floor: SimDuration::from_millis(5),
            mean: SimDuration::from_millis(10),
        },
    );
    world.install_service(office, Box::new(StoreServer::new()));
    world.install_service(archive, Box::new(StoreServer::new()));

    // A shared project directory with a dozen files.
    let mut fs = FileSystem::format(&mut world, laptop, office, SimDuration::from_millis(400))?;
    let dir = FsPath::parse("/project")?;
    fs.mkdir(&mut world, &dir, office)?;
    for i in 0..12 {
        let vol = if i % 2 == 0 { office } else { archive };
        fs.create_file(
            &mut world,
            &dir.join(format!("draft-{i:02}.tex")),
            b"\\section{}",
            vol,
        )?;
    }

    let mut traveller = MobileClient::new(laptop);
    let mut listing = fs.dynls(
        &mut world,
        &dir,
        PrefetchConfig {
            window: 3,
            fetch_timeout: SimDuration::from_millis(60),
            order: FetchOrder::ClosestFirst,
        },
    )?;

    // Grab a few entries at the gate...
    let mut synced = 0;
    for _ in 0..5 {
        match listing.next(&mut world) {
            DynLsStep::Entry(e) => {
                synced += 1;
                println!("synced before boarding: {}", e.name);
            }
            other => panic!("healthy network: {other:?}"),
        }
    }

    // ...then the cabin door closes.
    traveller.disconnect(&mut world);
    println!("\n-- airplane mode: disconnected --\n");
    let (in_flight, status) = listing.drain_available(&mut world);
    synced += in_flight.len();
    println!(
        "in flight: {} stragglers drained, status {status:?}, {} files pending\n",
        in_flight.len(),
        listing.total() - synced
    );

    // A colleague keeps working while we fly.
    let mut colleague_fs = fs.view_from(archive, SimDuration::from_millis(200));
    colleague_fs.create_file(
        &mut world,
        &dir.join("draft-99-final.tex"),
        b"done!",
        archive,
    )?;
    println!("(a colleague added draft-99-final.tex meanwhile)\n");

    // Landing: reconnect and finish the listing.
    world.sleep(SimDuration::from_millis(500));
    traveller.reconnect(&mut world);
    println!("-- landed: reconnected --\n");
    listing.retry();
    let (rest, end) = listing.drain_available(&mut world);
    synced += rest.len();
    for e in &rest {
        println!("synced after landing: {}", e.name);
    }
    assert_eq!(end, DynLsStep::Complete);
    assert_eq!(synced, 12);

    // The dynamic listing was opened before the colleague's add, so the
    // new file is not in it (snapshot-at-open membership) — a fresh
    // grow-only pass picks it up.
    let fresh = fs.ls(&mut world, &dir)?;
    println!(
        "\nfresh ls sees {} files (including the colleague's new draft)",
        fresh.len()
    );
    assert_eq!(fresh.len(), 13);
    Ok(())
}
