//! Quickstart: build a world, create a weak set, iterate it under all
//! four semantics, and machine-check one run against its specification.
//!
//! Run with: `cargo run --example quickstart`

use weak_sets::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny wide-area system: a laptop and three servers.
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(2026),
        topo,
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(2),
            hi: SimDuration::from_millis(12),
        },
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }

    // A weak set whose membership list lives on server-0; elements are
    // scattered over all three servers.
    let set = WeakSetBuilder::new(CollectionId(1), servers[0])
        .client_node(laptop)
        .timeout(SimDuration::from_millis(100))
        .create(&mut world)?;
    for i in 0..9u64 {
        let home = servers[(i % 3) as usize];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("item-{i}"), format!("payload {i}")),
            home,
        )?;
    }
    println!(
        "created a weak set with {} elements\n",
        set.size(&mut world)?
    );

    // Iterate under each semantics of the paper's design space.
    for semantics in Semantics::ALL {
        let (records, end) = set.collect(&mut world, semantics);
        println!(
            "{semantics}: yielded {} elements, finished with {end:?}",
            records.len()
        );
    }

    // Machine-check an optimistic run against Figure 6.
    let mut it = set.elements_observed(Semantics::Optimistic);
    loop {
        match it.next(&mut world) {
            IterStep::Yielded(_) => {}
            IterStep::Done => break,
            other => panic!("unexpected step: {other:?}"),
        }
    }
    let computation = it.take_computation(&world).expect("observer attached");
    let conformance = check_computation(Figure::Fig6, &computation);
    println!(
        "\nFigure 6 conformance: {} ({} states, {} invocations recorded)",
        if conformance.is_ok() {
            "OK"
        } else {
            "VIOLATED"
        },
        computation.states.len(),
        computation.runs[0].invocations.len(),
    );
    conformance.assert_ok();
    Ok(())
}
