//! A multi-campus deployment where membership travels by gossip.
//!
//! The paper's wide-area reality: sites partition, and "clients happily
//! tolerate partial or slightly stale answers in exchange for latency and
//! availability". Here a course-reader collection has its primary at the
//! main campus and gossip replicas at two satellite campuses. Anti-entropy
//! rounds converge all three; then a backhoe takes the main campus off the
//! network. A primary-read iterator can only block — but the same
//! optimistic iterator configured with `IterConfig::leaderless()` finishes
//! the listing from the satellites, and the recorded run still
//! machine-checks against Figure 6.
//!
//! Run with: `cargo run --example gossip_campus`

use weak_sets::prelude::*;
use weakset::iter::optimistic::OptimisticElements;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let student = topo.add_node("student-laptop", 0);
    let main_campus = topo.add_node("main-campus", 6);
    let north = topo.add_node("north-campus", 1);
    let south = topo.add_node("south-campus", 2);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(1995),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(2),
            per_hop: SimDuration::from_millis(3),
        },
    );
    // Every membership host is a gossip replica wrapping a plain store.
    for n in [main_campus, north, south] {
        world.install_service(n, Box::new(GossipNode::new(n)));
    }

    let readings = CollectionRef {
        id: CollectionId(1),
        home: main_campus,
        replicas: vec![north, south],
    };
    let registrar = StoreClient::new(main_campus, SimDuration::from_millis(100));
    registrar.create_collection(&mut world, &readings)?;

    // Course readers live on the satellite campuses' file servers.
    let texts = [
        ("intro-to-dist-sys.ps", north),
        ("weak-sets-paper.ps", south),
        ("crdt-survey.ps", north),
        ("anti-entropy-notes.ps", south),
    ];
    for (i, (name, home)) in texts.iter().enumerate() {
        let id = ObjectId(i as u64 + 1);
        registrar.put_object(
            &mut world,
            *home,
            ObjectRecord::new(id, *name, &b"postscript"[..]),
        )?;
        registrar.add_member(
            &mut world,
            &readings,
            MemberEntry {
                elem: id,
                home: *home,
            },
        )?;
    }

    // Anti-entropy spreads the membership to every campus.
    let gossip = engine::install(
        &mut world,
        readings.id,
        readings.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(25),
            fanout: 1,
            // Campuses are far apart: budget for the cross-site RTT.
            rpc_timeout: SimDuration::from_millis(100),
            ..GossipConfig::default()
        },
    );
    let settle = world.now() + SimDuration::from_millis(500);
    world.run_until(settle);
    assert!(engine::converged(
        &world,
        readings.id,
        &readings.all_nodes()
    ));
    println!(
        "gossip converged all campuses after {} exchanges ({} entries shipped)",
        world.metrics().counter("gossip.exchanges"),
        world.metrics().counter("gossip.novel_shipped"),
    );

    // The backhoe: main campus (the primary!) drops off the WAN.
    world.topology_mut().partition(&[main_campus]);
    println!("main campus partitioned away — the membership primary is gone");

    let client = StoreClient::new(student, SimDuration::from_millis(100));

    // Reading through the primary can only block now.
    let mut stuck =
        OptimisticElements::new(client.clone(), readings.clone(), IterConfig::default());
    assert_eq!(stuck.next(&mut world), IterStep::Blocked);
    println!("primary-read iterator: Blocked (optimistic semantics never fail)");

    // Leaderless: any reachable converged replica serves the listing.
    let mut it =
        OptimisticElements::new(client.clone(), readings.clone(), IterConfig::leaderless());
    it.observe(
        RunObserver::new(readings.id, readings.home, client.node())
            .with_history_source(HistorySource::new(GossipNode::visit_collection_history)),
    );
    loop {
        match it.next(&mut world) {
            IterStep::Yielded(rec) => println!("  fetched {}", rec.name),
            IterStep::Done => break,
            IterStep::Blocked => world.sleep(SimDuration::from_millis(20)),
            IterStep::Failed(e) => return Err(e.into()),
        }
    }
    println!("leaderless iterator: complete listing, primary still unreachable");

    // The run conforms to Figure 6 — checked against the primary's log,
    // which the observer reads omnisciently through the gossip wrapper.
    let comp = it.take_computation(&world).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
    println!("recorded run machine-checks against Figure 6");

    gossip.stop();
    world.run_to_quiescence();
    Ok(())
}
