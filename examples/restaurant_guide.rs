//! The paper's tourist scenario: "look at the on-line menus of all
//! Chinese restaurants before choosing where to eat for dinner."
//!
//! Menus live on restaurant servers all over the city; the tourist runs a
//! *query-opened dynamic set*. A partition takes a neighbourhood offline
//! mid-browse — the tourist still gets every reachable menu ("we would
//! not go hungry if our restaurant search missed some (but not all)
//! Chinese restaurants"), and the rest arrive after repair.
//!
//! Run with: `cargo run --example restaurant_guide`

use weak_sets::prelude::*;

const NEIGHBOURHOODS: [&str; 4] = ["shadyside", "squirrel-hill", "oakland", "downtown"];

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let tourist = topo.add_node("tourist-phone", 0);
    let hoods: Vec<NodeId> = NEIGHBOURHOODS
        .iter()
        .enumerate()
        .map(|(i, name)| topo.add_node(*name, i as u32 + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(7),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(2),
            per_hop: SimDuration::from_millis(6),
        },
    );
    for &h in &hoods {
        world.install_service(h, Box::new(StoreServer::new()));
    }

    // Restaurants publish menus on their neighbourhood server.
    let client = StoreClient::new(tourist, SimDuration::from_millis(150));
    let mut id = 0u64;
    for (hi, &hood) in hoods.iter().enumerate() {
        for k in 0..3 {
            id += 1;
            let cuisine = if (hi + k) % 2 == 0 {
                "chinese"
            } else {
                "pierogi"
            };
            client.put_object(
                &mut world,
                hood,
                ObjectRecord::new(
                    ObjectId(id),
                    format!("{}-restaurant-{k}.menu", NEIGHBOURHOODS[hi]),
                    format!("menu of restaurant {id}"),
                )
                .with_attr("cuisine", cuisine)
                .with_attr("city", "pittsburgh"),
            )?;
        }
    }

    // Query: all Chinese menus in Pittsburgh, closest neighbourhoods
    // first, four fetches in flight.
    let query = Query::And(vec![
        Query::attr("cuisine", "chinese"),
        Query::attr("city", "pittsburgh"),
    ]);
    let mut menus = DynamicSet::open_query(
        &mut world,
        &client,
        &hoods,
        &query,
        PrefetchConfig {
            window: 4,
            fetch_timeout: SimDuration::from_millis(120),
            order: FetchOrder::ClosestFirst,
        },
    );
    println!(
        "query matched {} chinese menus across {} neighbourhoods\n",
        menus.members_found(),
        hoods.len() - menus.nodes_skipped()
    );

    // Downtown drops off the network while we browse.
    world.topology_mut().partition(&[hoods[3]]);
    println!("(downtown just lost connectivity)\n");

    let (arrived, end) = menus.drain_available(&mut world);
    for menu in &arrived {
        println!("  menu arrived: {}", menu.name);
    }
    println!("\nfirst pass: {} menus, status {end:?}", arrived.len());
    println!("unreachable menus pending: {}", menus.pending().len());

    // Dinner can wait a minute — the neighbourhood comes back.
    world.topology_mut().heal_partition();
    world.sleep(SimDuration::from_millis(50));
    menus.retry_pending();
    let (late, end) = menus.drain_available(&mut world);
    for menu in &late {
        println!("  late menu arrived: {}", menu.name);
    }
    assert_eq!(end, IterStep::Done);
    println!(
        "\nall {} menus in hand after repair — dinner is saved",
        arrived.len() + late.len()
    );
    Ok(())
}
