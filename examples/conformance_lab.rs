//! A tour of the executable specifications: record real runs, check them
//! against the paper's figures, and read the rendered traces — including
//! a deliberately misbehaving configuration that the checker catches.
//!
//! Run with: `cargo run --example conformance_lab`

use weak_sets::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Stage 1: a clean run, checked against every figure.
    let mut topo = Topology::new();
    let me = topo.add_node("client", 0);
    let near = topo.add_node("replica-host", 1);
    let far = topo.add_node("primary-host", 6);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(5),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(2),
            per_hop: SimDuration::from_millis(2),
        },
    );
    world.install_service(near, Box::new(StoreServer::new()));
    world.install_service(far, Box::new(StoreServer::new()));

    let client = StoreClient::new(me, SimDuration::from_millis(150));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: far,
        replicas: vec![near],
    };
    client.create_collection(&mut world, &cref)?;
    let set = WeakSet::new(client.clone(), cref.clone());
    for i in 1..=3u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("doc-{i}"), format!("contents {i}")),
            far,
        )?;
    }

    println!("== stage 1: a clean optimistic run ==\n");
    let mut it = set.elements_observed(Semantics::Optimistic);
    loop {
        match it.next(&mut world) {
            IterStep::Yielded(_) => {}
            IterStep::Done => break,
            other => panic!("unexpected {other:?}"),
        }
    }
    let comp = it.take_computation(&world).expect("observed");
    for fig in Figure::ALL {
        let conf = check_computation(fig, &comp);
        println!("{}", render_verdict(fig, &comp, &conf).trim_end());
    }
    println!("\nthe recorded trace:\n{}", render(&comp));

    // Stage 2: make the replica stale, then iterate with Any-policy
    // membership reads. Any prefers the *closest* replica — the stale
    // one — which resurrects a removed element; the checker catches it.
    world.topology_mut().partition(&[near]);
    set.remove(&mut world, ObjectId(1))?; // replica misses this removal
    world.topology_mut().heal_partition();

    println!("== stage 2: stale closest-replica reads (ReadPolicy::Any) ==\n");
    let stale_set = WeakSet::new(client, cref).with_config(IterConfig {
        read_policy: ReadPolicy::Any,
        fetch_order: FetchOrder::IdOrder,
        ..Default::default()
    });
    let mut it = stale_set.elements_observed(Semantics::Optimistic);
    let mut blocked = 0;
    loop {
        match it.next(&mut world) {
            IterStep::Yielded(rec) => println!("yielded: {} ({})", rec.name, rec.id),
            IterStep::Blocked => {
                blocked += 1;
                if blocked > 2 {
                    break;
                }
                world.sleep(SimDuration::from_millis(20));
            }
            IterStep::Done => break,
            IterStep::Failed(e) => return Err(e.into()),
        }
    }
    let comp = it.take_computation(&world).expect("observed");
    let conf = check_computation(Figure::Fig6, &comp);
    println!(
        "\n{}",
        render_verdict(Figure::Fig6, &comp, &conf).trim_end()
    );
    assert!(
        !conf.is_ok(),
        "the stale read must violate Figure 6 — that is the lab's point"
    );
    println!("\n(the violation above is the expected outcome: stale replica reads");
    println!(" are observably weaker than even the weakest specified semantics)");
    Ok(())
}
