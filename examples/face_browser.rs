//! The paper's opening scenario: "display the .face files of all people
//! listed on Carnegie Mellon's home page."
//!
//! The faces directory spans several department volumes. A strict `ls`
//! must fetch every face before showing anything — and fails outright if
//! one volume is down. The dynamic-set listing paints faces as they
//! arrive, closest volumes first, and shrugs off the dead volume.
//!
//! Run with: `cargo run --example face_browser`

use weak_sets::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut topo = Topology::new();
    let browser = topo.add_node("wean-hall-workstation", 0);
    let volumes: Vec<NodeId> = ["cs-vol", "ece-vol", "hcii-vol", "robotics-vol"]
        .iter()
        .enumerate()
        .map(|(i, name)| topo.add_node(*name, i as u32 + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(1995),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(3),
            per_hop: SimDuration::from_millis(4),
        },
    );
    for &v in &volumes {
        world.install_service(v, Box::new(StoreServer::new()));
    }

    // Build /afs/cmu/faces with one .face file per person, spread over
    // the department volumes.
    let mut fs = FileSystem::format(
        &mut world,
        browser,
        volumes[0],
        SimDuration::from_millis(200),
    )?;
    let faces_dir = FsPath::parse("/faces")?;
    fs.mkdir(&mut world, &faces_dir, volumes[0])?;
    let people = [
        "wing", "steere", "satya", "garlan", "king", "liskov", "guttag", "reynolds",
    ];
    for (i, person) in people.iter().enumerate() {
        fs.create_file(
            &mut world,
            &faces_dir.join(format!("{person}.face")),
            format!("48x48 bitmap of {person}").as_bytes(),
            volumes[i % volumes.len()],
        )?;
    }
    println!(
        "{} .face files across {} volumes\n",
        people.len(),
        volumes.len()
    );

    // The robotics volume is down for maintenance.
    world.topology_mut().crash(volumes[3]);

    // Strict ls: all-or-nothing, so the whole page fails to load.
    match fs.ls(&mut world, &faces_dir) {
        Ok(_) => unreachable!("a volume is down"),
        Err(e) => println!("strict ls:  {e}"),
    }

    // Dynamic-set ls: faces stream in as they arrive, nearest volumes
    // first; the two faces on the dead volume stay pending.
    let t0 = world.now();
    let mut listing = fs.dynls(
        &mut world,
        &faces_dir,
        PrefetchConfig {
            window: 4,
            fetch_timeout: SimDuration::from_millis(80),
            order: FetchOrder::ClosestFirst,
        },
    )?;
    println!("dynamic ls: streaming {} entries...", listing.total());
    loop {
        match listing.next(&mut world) {
            DynLsStep::Entry(face) => {
                let dt = world.now().saturating_since(t0);
                println!("  +{:>5}us  painted {}", dt.as_micros(), face.name);
            }
            DynLsStep::Partial { unreachable } => {
                println!("  ({unreachable} faces unreachable — page is usable anyway)");
                break;
            }
            DynLsStep::Complete => break,
        }
    }

    // Maintenance ends; the missing faces pop in.
    world.topology_mut().restart(volumes[3]);
    listing.retry();
    let (rest, end) = listing.drain_available(&mut world);
    for face in &rest {
        println!("  late      painted {}", face.name);
    }
    assert_eq!(end, DynLsStep::Complete);
    println!("\nall {} faces painted", people.len());
    Ok(())
}
