//! Same program, two clocks: one weak-set routine runs unchanged on the
//! deterministic simulator and on real OS threads.
//!
//! Everything below `demo` takes `&mut StoreRt` — the object-safe
//! runtime boundary — so it never knows which backend is driving it.
//! The simulator gives virtual time and scripted faults; the threaded
//! backend gives wall-clock time, real mailboxes, and a deadline-based
//! shutdown. Run with:
//!
//! ```text
//! cargo run --example rt_quickstart
//! ```

use std::time::Duration;
use weak_sets::prelude::*;
use weakset_obs::telemetry::{TelemetryHub, TelemetryServer};
use weakset_obs::{http_get, parse_prometheus};

/// A backend-agnostic weak-set session: build a replicated collection,
/// add members, iterate optimistically, and report what was yielded.
fn demo(rt: &mut StoreRt, servers: &[NodeId], client_node: NodeId) -> Vec<u64> {
    let client = StoreClient::new(client_node, SimDuration::from_millis(200));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(rt, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 1..=3u64 {
        set.add(
            rt,
            ObjectRecord::new(ObjectId(i), format!("menu-{i}"), &b"dim sum"[..]),
            servers[(i as usize - 1) % servers.len()],
        )
        .unwrap();
    }
    let mut it = set.elements(Semantics::Optimistic);
    let mut got = Vec::new();
    loop {
        match it.next(rt) {
            IterStep::Yielded(rec) => got.push(rec.id.0),
            IterStep::Done => break,
            IterStep::Blocked => rt.sleep(SimDuration::from_millis(5)),
            IterStep::Failed(e) => panic!("{e:?}"),
        }
    }
    got.sort_unstable();
    got
}

fn main() {
    // Backend 1: the simulator. Virtual clock, scripted topology, fully
    // deterministic — `&mut StoreWorld` coerces to `&mut StoreRt`.
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let servers: Vec<NodeId> = topo.add_servers("s", 3);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(1),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let sim_got = demo(&mut world, &servers, cn);
    println!(
        "simulator: yielded {sim_got:?} in {} simulated us",
        world.now().as_micros()
    );

    // Backend 2: real OS threads. Each node is a thread draining a
    // mailbox; time is the wall clock; the same `demo` drives it. A
    // telemetry hub rides along so the run is scrapeable while live.
    let mut rt = ThreadedRuntime::<StoreMsg>::new(1);
    let hub = TelemetryHub::new();
    rt.attach_telemetry(hub.clone(), Duration::from_millis(10));
    let endpoint = TelemetryServer::serve("127.0.0.1:0", hub, "rt_quickstart", 1)
        .expect("bind the telemetry endpoint");
    let tcn = rt.add_node("client");
    let tservers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &tservers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let rt_got = demo(&mut rt, &tservers, tcn);
    println!(
        "threads:   yielded {rt_got:?} in {} wall-clock us",
        rt.now().as_micros()
    );

    // Scrape the live plane exactly as `curl http://.../metrics` would:
    // Prometheus text exposition, fresh from the hub at request time.
    rt.flush_telemetry();
    let (status, text) =
        http_get(endpoint.addr(), "/metrics", Duration::from_secs(2)).expect("scrape the endpoint");
    let series = parse_prometheus(&text).expect("valid Prometheus exposition");
    println!(
        "telemetry: GET http://{}/metrics -> {status}, {} series, e.g.:",
        endpoint.addr(),
        series.len()
    );
    for line in text
        .lines()
        .filter(|l| l.starts_with("weakset_rpc"))
        .take(3)
    {
        println!("    {line}");
    }

    rt.shutdown(Duration::from_secs(5))
        .expect("all node threads exit by the deadline");
    endpoint.stop();

    assert_eq!(sim_got, rt_got, "both backends see the same membership");
    println!("both backends agree.");
}
