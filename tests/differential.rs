//! Differential testing against the Section 2 reference model: in a
//! fault-free, quiescent world, every distributed iterator semantics must
//! yield exactly the element set the pure [`ModelSet`] yields, and the
//! distributed mutation history must track the model's value op-for-op.

use proptest::prelude::*;
use weak_sets::prelude::*;

fn build_world(seed: u64) -> (StoreWorld, WeakSet, Vec<NodeId>) {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("s{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(8),
        },
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(150));
    let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
    client.create_collection(&mut world, &cref).unwrap();
    (world, WeakSet::new(client, cref), servers)
}

/// Applies the same op script to the model and the distributed set.
fn apply_script(
    world: &mut StoreWorld,
    set: &WeakSet,
    servers: &[NodeId],
    script: &[(bool, u64)],
) -> ModelSet {
    let mut model = ModelSet::create();
    for &(is_add, id) in script {
        if is_add {
            let home = servers[(id % 3) as usize];
            // The distributed add is put-object + add-member; re-adding an
            // existing element is idempotent in both worlds.
            set.add(
                world,
                ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
                home,
            )
            .unwrap();
            model = model.add(ElemId(id));
        } else {
            set.remove(world, ObjectId(id)).unwrap();
            model = model.remove(ElemId(id));
        }
    }
    model
}

fn distributed_value(world: &mut StoreWorld, set: &WeakSet) -> SetValue {
    set.client()
        .read_members(world, set.cref(), ReadPolicy::Primary)
        .unwrap()
        .entries
        .iter()
        .map(|m| ElemId(m.elem.0))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// After any op script, the distributed membership equals the model's
    /// value, and `size` agrees.
    #[test]
    fn membership_tracks_the_model(
        seed in 0u64..500,
        script in proptest::collection::vec((any::<bool>(), 1u64..12), 0..25),
    ) {
        let (mut world, set, servers) = build_world(seed);
        let model = apply_script(&mut world, &set, &servers, &script);
        prop_assert_eq!(&distributed_value(&mut world, &set), model.value());
        prop_assert_eq!(set.size(&mut world).unwrap(), model.size());
    }

    /// Every distributed semantics yields exactly the model's element set
    /// in a quiescent, fault-free world.
    #[test]
    fn all_semantics_agree_with_the_model(
        seed in 0u64..500,
        script in proptest::collection::vec((any::<bool>(), 1u64..12), 0..25),
    ) {
        let (mut world, set, servers) = build_world(seed);
        let model = apply_script(&mut world, &set, &servers, &script);
        let expected: Vec<ElemId> = model.elements().collect();
        for semantics in Semantics::ALL {
            let (records, end) = set.collect(&mut world, semantics);
            prop_assert_eq!(&end, &IterStep::Done, "{}", semantics);
            let mut got: Vec<ElemId> = records.iter().map(|r| ElemId(r.id.0)).collect();
            got.sort_unstable();
            prop_assert_eq!(&got, &expected, "{}", semantics);
        }
    }

    /// The distributed primary's whole version log replays through the
    /// model: each logged transition is a model `add` or `remove`.
    #[test]
    fn version_log_replays_through_the_model(
        seed in 0u64..500,
        script in proptest::collection::vec((any::<bool>(), 1u64..12), 1..20),
    ) {
        let (mut world, set, servers) = build_world(seed);
        apply_script(&mut world, &set, &servers, &script);
        let primary = world
            .service::<StoreServer>(set.cref().home)
            .expect("primary");
        let log = primary.collection(set.cref().id).expect("collection").log();
        let mut model = ModelSet::create();
        for w in log.windows(2) {
            let pre: SetValue = w[0].members.iter().map(|m| ElemId(m.elem.0)).collect();
            let post: SetValue = w[1].members.iter().map(|m| ElemId(m.elem.0)).collect();
            prop_assert_eq!(model.value(), &pre);
            model = match classify_transition(&pre, &post) {
                Transition::Add(e) => model.add(e),
                Transition::Remove(e) => model.remove(e),
                Transition::Same => model,
                Transition::Other => {
                    return Err(TestCaseError::fail("unspecified transition in primary log"));
                }
            };
        }
    }
}
