//! Executable checking of Figure 1's *procedure* specifications
//! (`create`, `add`, `remove`, `size`) against the running store: every
//! membership transition in the primary's history must be explained by a
//! specified operation, and each client call's observable effect must
//! match its `ensures` clause.

use weak_sets::prelude::*;

fn sv(entries: &[MemberEntry]) -> SetValue {
    entries.iter().map(|m| ElemId(m.elem.0)).collect()
}

struct Rig {
    world: StoreWorld,
    set: WeakSet,
    server: NodeId,
}

fn rig(seed: u64) -> Rig {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let server = topo.add_node("server", 1);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.install_service(server, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef::unreplicated(CollectionId(1), server);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    Rig { world, set, server }
}

fn membership(r: &mut Rig) -> SetValue {
    let read = r
        .set
        .client()
        .read_members(&mut r.world, r.set.cref(), ReadPolicy::Primary)
        .unwrap();
    sv(&read.entries)
}

#[test]
fn create_satisfies_its_ensures() {
    let mut r = rig(1);
    let value = membership(&mut r);
    check_create(&value).unwrap();
}

#[test]
fn add_and_remove_satisfy_their_ensures_clauses() {
    let mut r = rig(2);
    let mut pre = membership(&mut r);
    // A random-ish sequence of adds and removes, each checked against
    // the procedure spec.
    let script: [(bool, u64); 9] = [
        (true, 1),
        (true, 2),
        (true, 3),
        (false, 2),
        (true, 2),  // re-add
        (true, 2),  // duplicate add: identity
        (false, 9), // remove non-member: identity
        (false, 1),
        (false, 3),
    ];
    for (is_add, id) in script {
        if is_add {
            r.set
                .add(
                    &mut r.world,
                    ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
                    r.server,
                )
                .unwrap();
        } else {
            r.set.remove(&mut r.world, ObjectId(id)).unwrap();
        }
        let post = membership(&mut r);
        if is_add {
            check_add(&pre, ElemId(id), &post).unwrap();
        } else {
            check_remove(&pre, ElemId(id), &post).unwrap();
        }
        pre = post;
    }
}

#[test]
fn size_satisfies_its_ensures() {
    let mut r = rig(3);
    for i in 1..=5u64 {
        r.set
            .add(
                &mut r.world,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
                r.server,
            )
            .unwrap();
        let pre = membership(&mut r);
        let reported = r.set.size(&mut r.world).unwrap();
        check_size(&pre, reported).unwrap();
    }
}

#[test]
fn primary_history_contains_only_specified_transitions() {
    let mut r = rig(4);
    for i in 1..=6u64 {
        r.set
            .add(
                &mut r.world,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
                r.server,
            )
            .unwrap();
    }
    r.set.remove(&mut r.world, ObjectId(2)).unwrap();
    r.set.remove(&mut r.world, ObjectId(4)).unwrap();
    // Omnisciently read the primary's version log and validate every
    // adjacent transition.
    let server = r
        .world
        .service::<StoreServer>(r.server)
        .expect("primary service");
    let coll = server.collection(r.set.cref().id).expect("collection");
    let history: Vec<SetValue> = coll
        .log()
        .iter()
        .map(|mv| mv.members.iter().map(|m| ElemId(m.elem.0)).collect())
        .collect();
    assert_eq!(history.len(), 9); // initial + 6 adds + 2 removes
    validate_history(&history).expect("every step is a specified op");
    // And the individual steps classify as expected.
    assert_eq!(
        classify_transition(&history[0], &history[1]),
        Transition::Add(ElemId(1))
    );
    assert_eq!(
        classify_transition(&history[6], &history[7]),
        Transition::Remove(ElemId(2))
    );
}

#[test]
fn replica_bulk_sync_is_not_a_specified_transition() {
    // A replica that missed several updates jumps versions in one sync:
    // its local history legitimately contains an `Other` transition —
    // the specs describe the logical object, not replica internals.
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let primary = topo.add_node("primary", 1);
    let replica = topo.add_node("replica", 2);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(5),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.install_service(primary, Box::new(StoreServer::new()));
    world.install_service(replica, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: primary,
        replicas: vec![replica],
    };
    client.create_collection(&mut world, &cref).unwrap();
    // Replica offline while two members land.
    world.topology_mut().partition(&[replica]);
    for i in 1..=2u64 {
        client
            .add_member(
                &mut world,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home: primary,
                },
            )
            .unwrap();
    }
    world.topology_mut().heal_partition();
    // Third add triggers a sync carrying all three at once.
    client
        .add_member(
            &mut world,
            &cref,
            MemberEntry {
                elem: ObjectId(3),
                home: primary,
            },
        )
        .unwrap();
    let replica_srv = world.service::<StoreServer>(replica).unwrap();
    let history: Vec<SetValue> = replica_srv
        .collection(cref.id)
        .unwrap()
        .log()
        .iter()
        .map(|mv| mv.members.iter().map(|m| ElemId(m.elem.0)).collect())
        .collect();
    // {} -> {1,2,3} in one step: an unspecified (sync) transition.
    assert_eq!(validate_history(&history), Err(0));
    // The primary's own history stays specified.
    let primary_srv = world.service::<StoreServer>(primary).unwrap();
    let phistory: Vec<SetValue> = primary_srv
        .collection(cref.id)
        .unwrap()
        .log()
        .iter()
        .map(|mv| mv.members.iter().map(|m| ElemId(m.elem.0)).collect())
        .collect();
    validate_history(&phistory).unwrap();
}
