//! The §3.3 grow guard end-to-end: "To ensure that sets only grow during
//! the iterator's use of the set, we can prevent objects from being
//! deleted until the iterator terminates ... and then garbage collect
//! these 'ghost' copies upon termination."
//!
//! With the guard, a grow-only iteration satisfies Figure 5 with the
//! relaxed §3.3 constraint (grow-only during each run, arbitrary between
//! runs) even against writers that delete concurrently; without it, the
//! same workload breaks the constraint.

use weak_sets::prelude::*;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
}

fn rig(seed: u64, guarded: bool) -> Rig {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let server = topo.add_node("server", 1);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    world.install_service(server, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(150));
    let cref = CollectionRef::unreplicated(CollectionId(1), server);
    client.create_collection(&mut world, &cref).unwrap();
    let config = IterConfig {
        guard_growth: guarded,
        ..IterConfig::default()
    };
    let set = WeakSet::new(client, cref).with_config(config);
    for i in 1..=8u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            server,
        )
        .unwrap();
    }
    // A deleting writer fires mid-run (as loopback environment actions).
    for (k, at_ms) in [30u64, 60, 90].iter().enumerate() {
        let cref = set.cref().clone();
        let victim = ObjectId(k as u64 + 5);
        let t = world.now() + SimDuration::from_millis(*at_ms);
        world.spawn_at(t, move |w: &mut StoreWorld| {
            if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                primary.apply(StoreMsg::RemoveMember {
                    coll: cref.id,
                    elem: victim,
                });
            }
        });
    }
    Rig { world, set }
}

fn run_grow(rig: &mut Rig) -> (Computation, Vec<ObjectId>, IterStep) {
    let mut it = rig.set.elements_observed(Semantics::GrowOnly);
    let mut yields = Vec::new();
    let end = loop {
        match it.next(&mut rig.world) {
            IterStep::Yielded(rec) => yields.push(rec.id),
            step => break step,
        }
    };
    (
        it.take_computation(&rig.world).expect("observed"),
        yields,
        end,
    )
}

#[test]
fn guarded_run_satisfies_relaxed_grow_only_under_deletions() {
    let mut r = rig(1, true);
    let (comp, yields, end) = run_grow(&mut r);
    assert_eq!(end, IterStep::Done);
    // The guard deferred the deletions: every element was still yielded.
    assert_eq!(yields.len(), 8);
    // The run satisfies Figure 5 under the §3.3 relaxed constraint.
    Checker::new(Figure::Fig5)
        .with_constraint(ConstraintKind::GrowOnlyDuringRuns)
        .check(&comp)
        .assert_ok();
    // After release, the ghosts were collected: deletions landed.
    let remaining = r.set.size(&mut r.world).unwrap();
    assert_eq!(remaining, 8 - 3);
}

#[test]
fn unguarded_run_breaks_the_grow_only_constraint() {
    let mut r = rig(2, false);
    let (comp, _yields, _end) = run_grow(&mut r);
    let conf = Checker::new(Figure::Fig5)
        .with_constraint(ConstraintKind::GrowOnlyDuringRuns)
        .check(&comp);
    assert!(
        conf.violations
            .iter()
            .any(|v| matches!(v, Violation::Constraint(_))),
        "mid-run deletions must break grow-only: {:?}",
        conf.violations
    );
    // The same trace is fine for Figure 6 (no constraint).
    check_computation(Figure::Fig6, &comp).assert_ok();
}

#[test]
fn guard_is_released_on_failure_too() {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let s0 = topo.add_node("s0", 1);
    let s1 = topo.add_node("s1", 2);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(3),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    world.install_service(s0, Box::new(StoreServer::new()));
    world.install_service(s1, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef::unreplicated(CollectionId(1), s0);
    client.create_collection(&mut world, &cref).unwrap();
    let config = IterConfig {
        guard_growth: true,
        ..IterConfig::default()
    };
    let set = WeakSet::new(client.clone(), cref.clone()).with_config(config);
    set.add(
        &mut world,
        ObjectRecord::new(ObjectId(1), "a", &b""[..]),
        s0,
    )
    .unwrap();
    set.add(
        &mut world,
        ObjectRecord::new(ObjectId(2), "b", &b""[..]),
        s1,
    )
    .unwrap();
    let mut it = set.elements(Semantics::GrowOnly);
    assert!(matches!(it.next(&mut world), IterStep::Yielded(_)));
    // s1 becomes unreachable: the pessimistic run fails and releases.
    world.topology_mut().partition(&[s1]);
    assert!(matches!(it.next(&mut world), IterStep::Failed(_)));
    // A removal now lands immediately (no guard held).
    client
        .remove_member(&mut world, &cref, ObjectId(1))
        .unwrap();
    let read = client
        .read_members(&mut world, &cref, ReadPolicy::Primary)
        .unwrap();
    assert!(!read.entries.iter().any(|m| m.elem == ObjectId(1)));
}
