//! Observability integration tests: the instrumented metrics must agree
//! with the ground-truth `Trace` of the same run, and snapshots must be
//! deterministic (same seed ⇒ byte-identical JSON) and round-trippable.

use weak_sets::prelude::*;
use weak_sets::weakset_sim::trace::TraceEvent;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
}

/// A seeded workload with enough variety to touch most counters: writes
/// across three servers, a crash fault mid-run, and a Snapshot iteration.
fn run_workload(seed: u64) -> Rig {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(9),
        },
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let set = WeakSetBuilder::new(CollectionId(1), servers[0])
        .client_node(laptop)
        .timeout(SimDuration::from_millis(100))
        .create(&mut world)
        .unwrap();
    for i in 0..12u64 {
        let home = servers[(i % 3) as usize];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            home,
        )
        .unwrap();
    }
    world.schedule_fault(
        world.now() + SimDuration::from_millis(1),
        FaultAction::Crash(servers[2]),
    );
    let _ = set.collect(&mut world, Semantics::Snapshot);
    Rig { world, set }
}

/// The metrics registry and the event trace are independent recorders of
/// the same run; their counts of the same phenomena must agree exactly.
#[test]
fn counters_agree_with_trace() {
    let rig = run_workload(99);
    let w = &rig.world;
    let m = w.metrics();
    let t = w.trace();
    assert!(t.is_enabled(), "workload must keep the trace on");

    let sent = t.count(|e| matches!(e, TraceEvent::RpcSend { .. }));
    let ok = t.count(|e| matches!(e, TraceEvent::RpcOk { .. }));
    let failed = t.count(|e| matches!(e, TraceEvent::RpcFailed { .. }));
    let crashes = t.count(|e| matches!(e, TraceEvent::NodeCrashed(_)));

    assert_eq!(m.counter("rpc.sent"), sent as u64);
    assert_eq!(m.counter("rpc.ok"), ok as u64);
    assert_eq!(m.counter("rpc.failed"), failed as u64);
    assert_eq!(m.counter("sim.fault.crash"), crashes as u64);
    // Every completed RPC contributes one latency sample.
    assert_eq!(m.latency("rpc.latency").map_or(0, |l| l.len()), ok);
    // Delivered requests and their replies are dispatched separately.
    assert_eq!(m.counter("sim.dispatch.deliver"), ok as u64);
    assert_eq!(m.counter("sim.dispatch.reply"), ok as u64);
}

/// Store- and iterator-level counters line up with what the workload did.
#[test]
fn stack_counters_reflect_the_workload() {
    let rig = run_workload(99);
    let m = rig.world.metrics();
    assert_eq!(m.counter("store.write.ok"), 12);
    assert_eq!(m.counter("store.read.primary.ok"), 1);
    // One Snapshot (Figure 4) run: every yield is a fetched element, and
    // the run ended exactly once (returned, failed, or blocked).
    assert_eq!(m.counter("iter.fig4.yielded"), m.counter("store.fetch.ok"));
    assert_eq!(
        m.counter("iter.fig4.returned")
            + m.counter("iter.fig4.failed")
            + m.counter("iter.fig4.blocked"),
        1
    );
}

/// Same seed ⇒ identical snapshot, different seed ⇒ (at least) different
/// latency distributions.
#[test]
fn snapshots_are_deterministic_in_the_seed() {
    let a = run_workload(7).world.metrics().snapshot("det", 7);
    let b = run_workload(7).world.metrics().snapshot("det", 7);
    assert_eq!(a.to_json(), b.to_json());

    let c = run_workload(8).world.metrics().snapshot("det", 8);
    assert_ne!(a.to_json(), c.to_json());
}

/// A snapshot taken from a real run survives a JSON round-trip intact.
#[test]
fn snapshot_round_trips_through_json() {
    let rig = run_workload(21);
    let snap = rig
        .world
        .metrics()
        .snapshot("roundtrip", 21)
        .with_objective(
            "yields",
            rig.world.metrics().counter("iter.fig4.yielded") as f64,
            Direction::HigherIsBetter,
        );
    let json = snap.to_json();
    let back = ObsSnapshot::from_json(&json).unwrap();
    assert_eq!(back.to_json(), json);
    assert_eq!(back.scenario, "roundtrip");
    assert_eq!(back.seed, 21);
    assert_eq!(back.objectives.len(), 1);
    drop(rig.set);
}
