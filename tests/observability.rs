//! Observability integration tests: the instrumented metrics must agree
//! with the ground-truth `Trace` of the same run, and snapshots must be
//! deterministic (same seed ⇒ byte-identical JSON) and round-trippable.

use weak_sets::prelude::*;
use weak_sets::weakset_sim::trace::TraceEvent;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
}

/// A seeded workload with enough variety to touch most counters: writes
/// across three servers, a crash fault mid-run, and a Snapshot iteration.
fn run_workload(seed: u64) -> Rig {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(9),
        },
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let set = WeakSetBuilder::new(CollectionId(1), servers[0])
        .client_node(laptop)
        .timeout(SimDuration::from_millis(100))
        .create(&mut world)
        .unwrap();
    for i in 0..12u64 {
        let home = servers[(i % 3) as usize];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            home,
        )
        .unwrap();
    }
    world.schedule_fault(
        world.now() + SimDuration::from_millis(1),
        FaultAction::Crash(servers[2]),
    );
    let _ = set.collect(&mut world, Semantics::Snapshot);
    Rig { world, set }
}

/// The metrics registry and the event trace are independent recorders of
/// the same run; their counts of the same phenomena must agree exactly.
#[test]
fn counters_agree_with_trace() {
    let rig = run_workload(99);
    let w = &rig.world;
    let m = w.metrics();
    let t = w.trace();
    assert!(t.is_enabled(), "workload must keep the trace on");

    let sent = t.count(|e| matches!(e, TraceEvent::RpcSend { .. }));
    let ok = t.count(|e| matches!(e, TraceEvent::RpcOk { .. }));
    let failed = t.count(|e| matches!(e, TraceEvent::RpcFailed { .. }));
    let crashes = t.count(|e| matches!(e, TraceEvent::NodeCrashed(_)));

    assert_eq!(m.counter("rpc.sent"), sent as u64);
    assert_eq!(m.counter("rpc.ok"), ok as u64);
    assert_eq!(m.counter("rpc.failed"), failed as u64);
    assert_eq!(m.counter("sim.fault.crash"), crashes as u64);
    // Every completed RPC contributes one latency sample.
    assert_eq!(m.latency("rpc.latency").map_or(0, |l| l.len()), ok);
    // Delivered requests and their replies are dispatched separately.
    assert_eq!(m.counter("sim.dispatch.deliver"), ok as u64);
    assert_eq!(m.counter("sim.dispatch.reply"), ok as u64);
}

/// Store- and iterator-level counters line up with what the workload did.
#[test]
fn stack_counters_reflect_the_workload() {
    let rig = run_workload(99);
    let m = rig.world.metrics();
    assert_eq!(m.counter("store.write.ok"), 12);
    assert_eq!(m.counter("store.read.primary.ok"), 1);
    // One Snapshot (Figure 4) run: every yield is a fetched element, and
    // the run ended exactly once (returned, failed, or blocked).
    assert_eq!(m.counter("iter.fig4.yielded"), m.counter("store.fetch.ok"));
    assert_eq!(
        m.counter("iter.fig4.returned")
            + m.counter("iter.fig4.failed")
            + m.counter("iter.fig4.blocked"),
        1
    );
}

/// Same seed ⇒ identical snapshot, different seed ⇒ (at least) different
/// latency distributions.
#[test]
fn snapshots_are_deterministic_in_the_seed() {
    let a = run_workload(7).world.metrics().snapshot("det", 7);
    let b = run_workload(7).world.metrics().snapshot("det", 7);
    assert_eq!(a.to_json(), b.to_json());

    let c = run_workload(8).world.metrics().snapshot("det", 8);
    assert_ne!(a.to_json(), c.to_json());
}

/// A snapshot taken from a real run survives a JSON round-trip intact.
#[test]
fn snapshot_round_trips_through_json() {
    let rig = run_workload(21);
    let snap = rig
        .world
        .metrics()
        .snapshot("roundtrip", 21)
        .with_objective(
            "yields",
            rig.world.metrics().counter("iter.fig4.yielded") as f64,
            Direction::HigherIsBetter,
        );
    let json = snap.to_json();
    let back = ObsSnapshot::from_json(&json).unwrap();
    assert_eq!(back.to_json(), json);
    assert_eq!(back.scenario, "roundtrip");
    assert_eq!(back.seed, 21);
    assert_eq!(back.objectives.len(), 1);
    drop(rig.set);
}

// ---------------------------------------------------------------------
// Causal span trees: every `elements` computation is one cross-node
// trace — the first invocation roots it, later invocations parent under
// that root, and the network/server work each invocation triggered
// hangs beneath it.
// ---------------------------------------------------------------------

/// A world with the causal sink on: one client, `n` servers, `2n`
/// elements spread round-robin.
fn span_rig(seed: u64, n: usize) -> (StoreWorld, WeakSet, Vec<NodeId>) {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..n as u32)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.events_mut().set_enabled(true);
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let set = WeakSetBuilder::new(CollectionId(1), servers[0])
        .client_node(laptop)
        .timeout(SimDuration::from_millis(100))
        .create(&mut world)
        .unwrap();
    for i in 0..(2 * n as u64) {
        let home = servers[(i as usize) % n];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            home,
        )
        .unwrap();
    }
    (world, set, servers)
}

/// Closes the span ledger (asserting nothing leaked) and builds the DAG.
fn dag_of(world: &mut StoreWorld) -> CausalDag {
    let at = world.now().as_micros();
    let unclosed = world.events_mut().finish(at);
    assert!(unclosed.is_empty(), "unclosed spans: {unclosed:?}");
    CausalDag::from_events(&world.events_mut().take_events())
}

/// The invocation spans of `kind`, asserting they form one trace: one
/// root (the first invocation) and every later invocation a child of it.
fn assert_one_computation_trace(dag: &CausalDag, kind: &str) -> SpanId {
    let invocations: Vec<&SpanNode> = dag.spans().filter(|s| s.kind == kind).collect();
    assert!(!invocations.is_empty(), "no {kind} spans recorded");
    let roots: Vec<&&SpanNode> = invocations.iter().filter(|s| s.parent.is_none()).collect();
    assert_eq!(roots.len(), 1, "{kind}: exactly one trace root expected");
    let root = roots[0];
    for inv in &invocations {
        assert_eq!(
            inv.trace, root.trace,
            "{kind}: invocation {} is in a different trace",
            inv.id
        );
        if inv.id != root.id {
            assert_eq!(
                inv.parent,
                Some(root.id),
                "{kind}: invocation {} does not parent under the root",
                inv.id
            );
        }
    }
    root.id
}

/// Fig 4 (snapshot): a clean run is one trace whose invocations carry
/// the server handling and network legs beneath them.
#[test]
fn fig4_snapshot_run_is_one_cross_node_trace() {
    let (mut world, set, _servers) = span_rig(5, 3);
    let mut it = set.elements(Semantics::Snapshot);
    while !matches!(it.next(&mut world), IterStep::Done) {}
    let dag = dag_of(&mut world);
    let root = assert_one_computation_trace(&dag, "iter.fig4.invocation");
    let kinds: Vec<&str> = dag
        .descendants(root)
        .into_iter()
        .filter_map(|id| dag.span(id))
        .map(|s| s.kind.as_str())
        .collect();
    assert!(kinds.contains(&"net.rpc"), "no network leg under the root");
    assert!(
        kinds.contains(&"svc.handle"),
        "no server leg under the root"
    );
    assert!(
        kinds.contains(&"store.read.primary"),
        "no membership read under the root"
    );
}

/// Fig 3 (fail-stop): a locked run that hits a crashed member home
/// fails, and the failure evidence sits under the failing invocation.
#[test]
fn fig3_failure_evidence_hangs_under_the_failing_invocation() {
    let (mut world, set, servers) = span_rig(6, 3);
    world.topology_mut().crash(servers[2]);
    let mut it = set.elements(Semantics::Locked);
    loop {
        match it.next(&mut world) {
            IterStep::Failed(_) => break,
            IterStep::Done => panic!("run must fail: a member home is down"),
            _ => {}
        }
    }
    let dag = dag_of(&mut world);
    assert_one_computation_trace(&dag, "iter.fig3.invocation");
    let failed_outcome = dag
        .points()
        .iter()
        .find(|e| e.kind == "iter.outcome" && e.detail.starts_with("fig3 failed:"))
        .expect("failed outcome recorded");
    let inv = failed_outcome.parent.expect("outcome attributed to a span");
    assert_eq!(dag.span(inv).unwrap().kind, "iter.fig3.invocation");
    assert!(
        dag.points_under(inv)
            .iter()
            .any(|e| e.kind == "iter.fetch.unreachable"),
        "no unreachable-member evidence under the failing invocation"
    );
}

/// Fig 5 (grow-only): same single-trace shape, pessimistic failure.
#[test]
fn fig5_growonly_run_is_one_trace_and_fails_pessimistically() {
    let (mut world, set, servers) = span_rig(7, 3);
    world.topology_mut().crash(servers[1]);
    let mut it = set.elements(Semantics::GrowOnly);
    loop {
        match it.next(&mut world) {
            IterStep::Failed(_) => break,
            IterStep::Done => panic!("run must fail: a member home is down"),
            _ => {}
        }
    }
    let dag = dag_of(&mut world);
    assert_one_computation_trace(&dag, "iter.fig5.invocation");
    assert!(dag
        .points()
        .iter()
        .any(|e| e.kind == "iter.outcome" && e.detail.starts_with("fig5 failed:")));
}

/// Fig 6 (optimistic): a run suspended by a crash and resumed after the
/// restart is STILL one trace — the blocked invocations and the
/// post-resume invocations all parent under the same root.
#[test]
fn fig6_suspend_resume_stays_one_trace() {
    let (mut world, set, servers) = span_rig(8, 2);
    let mut it = set.elements(Semantics::Optimistic);
    // Yield a prefix, then lose a server: the run suspends (blocks).
    assert!(matches!(it.next(&mut world), IterStep::Yielded(_)));
    world.topology_mut().crash(servers[1]);
    let mut blocked = 0;
    loop {
        match it.next(&mut world) {
            IterStep::Blocked => {
                blocked += 1;
                break;
            }
            IterStep::Yielded(_) => {}
            step => panic!("optimistic run must block, not {step:?}"),
        }
    }
    // Heal and resume to completion.
    world.topology_mut().restart(servers[1]);
    while !matches!(it.next(&mut world), IterStep::Done) {}
    assert!(blocked > 0);
    let dag = dag_of(&mut world);
    let root = assert_one_computation_trace(&dag, "iter.fig6.invocation");
    let under = dag.points_under(root);
    assert!(
        under
            .iter()
            .any(|e| e.kind == "iter.outcome" && e.detail == "fig6 blocked"),
        "suspension not recorded in the trace"
    );
    assert!(
        under
            .iter()
            .any(|e| e.kind == "iter.outcome" && e.detail == "fig6 returned"),
        "resumption to completion not recorded in the trace"
    );
}

/// Sharded fan-out: one computation crossing several shard groups is one
/// trace — the sharded invocations root it and every per-shard
/// invocation (and its server legs on different shard homes) joins it.
#[test]
fn sharded_computation_is_one_trace_across_shard_groups() {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("server-{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(9),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.events_mut().set_enabled(true);
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(laptop, SimDuration::from_millis(100));
    let groups: Vec<ShardGroup> = servers
        .iter()
        .map(|&home| ShardGroup {
            home,
            replicas: Vec::new(),
        })
        .collect();
    let set = ShardedWeakSet::create(
        &mut world,
        CollectionId(1),
        client,
        &groups,
        IterConfig::default(),
    )
    .unwrap();
    for i in 0..9u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            servers[(i % 3) as usize],
        )
        .unwrap();
    }
    let mut it = set.elements(Semantics::Snapshot);
    while !matches!(it.next(&mut world), IterStep::Done) {}

    let dag = dag_of(&mut world);
    let root = assert_one_computation_trace(&dag, "iter.sharded.invocation");
    let root_trace = dag.span(root).unwrap().trace;
    // Every per-shard invocation joined the sharded computation's trace.
    let per_shard: Vec<&SpanNode> = dag
        .spans()
        .filter(|s| s.kind == "iter.fig4.invocation")
        .collect();
    assert!(per_shard.len() >= 3, "expected runs on several shards");
    for s in &per_shard {
        assert_eq!(s.trace, root_trace, "shard run escaped the trace");
    }
    // ... and the server legs under the trace touch more than one shard
    // group's home.
    let handled_on: std::collections::BTreeSet<String> = dag
        .descendants(root)
        .into_iter()
        .filter_map(|id| dag.span(id))
        .filter(|s| s.kind == "svc.handle")
        .map(|s| s.detail.clone())
        .collect();
    assert!(
        handled_on.len() >= 2,
        "one computation should span multiple shard groups, saw {handled_on:?}"
    );
}
