//! Cross-runtime validation: the deterministic simulator and the real
//! OS-thread runtime must agree about the semantics — every recorded
//! run, in either substrate, satisfies the same figures.

use weak_sets::prelude::*;
use weakset_rt::prelude::*;

/// Runs comparable scenarios in both runtimes and checks the same spec.
#[test]
fn snapshot_semantics_agree_across_runtimes() {
    // Simulator side.
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let s = topo.add_node("server", 1);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(1),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.install_service(s, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef::unreplicated(CollectionId(1), s);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 1..=6u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            s,
        )
        .unwrap();
    }
    let mut it = set.elements_observed(Semantics::Snapshot);
    loop {
        match it.next(&mut world) {
            IterStep::Yielded(_) => {}
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    let sim_comp = it.take_computation(&world).unwrap();

    // Thread side.
    let srv = SetServer::spawn(ServerConfig {
        seed: 1,
        max_delay_us: 10,
    });
    let c = srv.client();
    for i in 1..=6u64 {
        c.add(i).unwrap();
    }
    let mut tit = ThreadedElements::new(srv.client(), RtSemantics::Snapshot);
    tit.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
    loop {
        match tit.next().unwrap() {
            RtStep::Yielded(_) => {}
            RtStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    let rt_comp = tit.take_computation().unwrap();
    srv.shutdown();

    for comp in [&sim_comp, &rt_comp] {
        check_computation(Figure::Fig1, comp).assert_ok();
        check_computation(Figure::Fig3, comp).assert_ok();
        check_computation(Figure::Fig4, comp).assert_ok();
        assert_eq!(comp.runs[0].yielded_set().len(), 6);
    }
}

#[test]
fn optimistic_blocking_agrees_across_runtimes() {
    // Simulator: one unreachable element blocks the run.
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let s0 = topo.add_node("s0", 1);
    let s1 = topo.add_node("s1", 2);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(2),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.install_service(s0, Box::new(StoreServer::new()));
    world.install_service(s1, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef::unreplicated(CollectionId(1), s0);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    set.add(
        &mut world,
        ObjectRecord::new(ObjectId(1), "a", &b""[..]),
        s0,
    )
    .unwrap();
    set.add(
        &mut world,
        ObjectRecord::new(ObjectId(2), "b", &b""[..]),
        s1,
    )
    .unwrap();
    world.topology_mut().partition(&[s1]);
    let mut it = set.elements_observed(Semantics::Optimistic);
    assert!(matches!(it.next(&mut world), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut world), IterStep::Blocked);
    world.topology_mut().heal_partition();
    assert!(matches!(it.next(&mut world), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut world), IterStep::Done);
    let sim_comp = it.take_computation(&world).unwrap();

    // Threads: same story via the reachability fault table.
    let srv = SetServer::spawn(ServerConfig::default());
    let c = srv.client();
    c.add(1).unwrap();
    c.add(2).unwrap();
    c.set_reachable(2, false).unwrap();
    let mut tit = ThreadedElements::new(srv.client(), RtSemantics::Optimistic);
    tit.observe(ThreadObserver::new(srv.log(), srv.unreachable_table()));
    tit.block_attempts = 2;
    tit.retry_interval = std::time::Duration::from_micros(20);
    assert_eq!(tit.next().unwrap(), RtStep::Yielded(1));
    assert_eq!(tit.next().unwrap(), RtStep::Blocked);
    c.set_reachable(2, true).unwrap();
    assert_eq!(tit.next().unwrap(), RtStep::Yielded(2));
    assert_eq!(tit.next().unwrap(), RtStep::Done);
    let rt_comp = tit.take_computation().unwrap();
    srv.shutdown();

    for comp in [&sim_comp, &rt_comp] {
        check_computation(Figure::Fig6, comp).assert_ok();
        // Both runs block exactly once.
        let blocks = comp.runs[0]
            .invocations
            .iter()
            .filter(|i| i.outcome == Outcome::Blocked)
            .count();
        assert_eq!(blocks, 1);
    }
}

#[test]
fn adversarial_thread_interleavings_conform_like_scripted_sim_runs() {
    // The sim gives one deterministic interleaving; the thread runtime
    // explores whatever the OS produces. Both must satisfy Figure 6.
    for seed in 0..3 {
        let result = run_scenario(&Scenario {
            semantics: RtSemantics::Optimistic,
            profile: MutatorProfile::Churn,
            inject_faults: true,
            seed,
            ..Default::default()
        });
        check_computation(Figure::Fig6, &result.computation).assert_ok();
    }
}
