//! Cross-backend parity: the deterministic simulator and the OS-thread
//! runtime must agree about weak-set semantics — the *same* client,
//! iterator, and conformance-checking code runs against both through
//! `&mut StoreRt`, and every recorded run satisfies the same figures.
//!
//! Each scenario scripts an identical sequence of mutations and one
//! observed iteration, then compares what the two backends produced:
//! the yielded elements, the final membership under the read policy,
//! and the per-figure conformance verdicts. The grid covers all four
//! figure semantics crossed with the three read policies.

use std::time::Duration;
use weak_sets::prelude::*;

const COLL: CollectionId = CollectionId(7);
const SEED: u64 = 42;

/// What one scripted scenario produced, in backend-independent form.
#[derive(Debug, PartialEq)]
struct ScenarioOutcome {
    yielded: Vec<u64>,
    membership: Vec<u64>,
    verdicts: Vec<(Figure, bool)>,
}

/// The scripted scenario, generic over the backend: create a collection
/// replicated across three servers, add five elements, remove one, run
/// one observed iteration, then read the final membership.
fn drive(
    rt: &mut StoreRt,
    servers: &[NodeId],
    client_node: NodeId,
    semantics: Semantics,
    policy: ReadPolicy,
) -> ScenarioOutcome {
    let mut client = StoreClient::new(client_node, SimDuration::from_millis(500));
    if policy == ReadPolicy::CausalSession {
        client = client.with_session();
    }
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(rt, &cref).unwrap();

    let set = WeakSet::new(client.clone(), cref.clone()).with_config(IterConfig {
        read_policy: policy,
        ..IterConfig::default()
    });
    for i in 1..=5u64 {
        let home = servers[(i as usize - 1) % servers.len()];
        set.add(
            rt,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            home,
        )
        .unwrap();
    }
    set.remove(rt, ObjectId(2)).unwrap();

    let mut it = set.elements_observed(semantics);
    let mut yielded = Vec::new();
    let mut blocked = 0usize;
    loop {
        match it.next(rt) {
            IterStep::Yielded(rec) => {
                blocked = 0;
                yielded.push(rec.id.0);
            }
            IterStep::Done => break,
            IterStep::Blocked => {
                blocked += 1;
                assert!(blocked < 100, "iterator stuck with all nodes up");
                rt.sleep(SimDuration::from_millis(5));
            }
            IterStep::Failed(e) => panic!("iteration failed with all nodes up: {e:?}"),
        }
    }
    yielded.sort_unstable();

    let comp = it.take_computation(rt).expect("observer was attached");
    let verdicts = Figure::ALL
        .iter()
        .map(|&f| (f, check_computation(f, &comp).is_ok()))
        .collect();

    let mut membership: Vec<u64> = client
        .read_members(rt, &cref, policy)
        .unwrap()
        .entries
        .iter()
        .map(|m| m.elem.0)
        .collect();
    membership.sort_unstable();

    ScenarioOutcome {
        yielded,
        membership,
        verdicts,
    }
}

/// Runs the scenario on the simulator.
fn run_sim(semantics: Semantics, policy: ReadPolicy) -> ScenarioOutcome {
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", 3);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(SEED),
        t,
        LatencyModel::Constant(SimDuration::from_millis(1)),
    );
    for &s in &servers {
        w.install_service(s, Box::new(StoreServer::new()));
    }
    drive(&mut w, &servers, cn, semantics, policy)
}

/// Runs the scenario on real OS threads, then shuts the fleet down
/// under a deadline so a hung node fails the test instead of hanging it.
fn run_threaded(semantics: Semantics, policy: ReadPolicy) -> ScenarioOutcome {
    let mut rt = ThreadedRuntime::<StoreMsg>::new(SEED);
    let cn = rt.add_node("client");
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let out = drive(&mut rt, &servers, cn, semantics, policy);
    rt.shutdown(Duration::from_secs(10))
        .expect("no node thread should hang at shutdown");
    out
}

/// The full grid: four figure semantics × three read policies, each
/// scripted identically on both backends, must agree element-for-element
/// and verdict-for-verdict.
#[test]
fn backends_agree_across_semantics_and_policies() {
    for semantics in [
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
        Semantics::Locked,
    ] {
        for policy in [
            ReadPolicy::Primary,
            ReadPolicy::Quorum,
            ReadPolicy::Leaderless,
        ] {
            let sim = run_sim(semantics, policy);
            let threaded = run_threaded(semantics, policy);
            assert_eq!(
                sim, threaded,
                "backends disagree for {semantics:?} under {policy:?}"
            );
            assert_eq!(
                sim.membership,
                vec![1, 3, 4, 5],
                "scripted membership for {semantics:?}/{policy:?}"
            );
            assert_eq!(sim.yielded, vec![1, 3, 4, 5]);
        }
    }
}

/// Causal-session parity: the same scripted scenario, but every read
/// and iteration carries the client's session token, so both backends
/// must satisfy read-your-writes through the identical wait/redirect
/// machinery — and still agree element-for-element with each other.
#[test]
fn causal_session_reads_agree_across_backends() {
    for semantics in [
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
        Semantics::Locked,
    ] {
        let sim = run_sim(semantics, ReadPolicy::CausalSession);
        let threaded = run_threaded(semantics, ReadPolicy::CausalSession);
        assert_eq!(
            sim, threaded,
            "backends disagree for {semantics:?} under CausalSession"
        );
        // Read-your-writes: the session's own five adds minus its own
        // remove, never a stale subset.
        assert_eq!(
            sim.membership,
            vec![1, 3, 4, 5],
            "session membership for {semantics:?}"
        );
        assert_eq!(sim.yielded, vec![1, 3, 4, 5]);
    }
}

/// The old cross-runtime blocking story, now through one code path: an
/// unreachable member blocks an optimistic run on either backend, and
/// healing the route lets both finish with a Figure 6-conformant record.
#[test]
fn optimistic_blocking_agrees_across_backends() {
    fn setup_set(rt: &mut StoreRt, cn: NodeId, s0: NodeId, s1: NodeId) -> WeakSet {
        let client = StoreClient::new(cn, SimDuration::from_millis(100));
        let cref = CollectionRef::unreplicated(CollectionId(1), s0);
        client.create_collection(rt, &cref).unwrap();
        let set = WeakSet::new(client, cref).with_config(IterConfig {
            block_attempts: 2,
            retry_interval: SimDuration::from_millis(2),
            ..IterConfig::default()
        });
        set.add(rt, ObjectRecord::new(ObjectId(1), "a", &b""[..]), s0)
            .unwrap();
        set.add(rt, ObjectRecord::new(ObjectId(2), "b", &b""[..]), s1)
            .unwrap();
        set
    }

    // Simulator: partition the second home away, then heal.
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let s0 = t.add_node("s0", 1);
    let s1 = t.add_node("s1", 2);
    let mut w = StoreWorld::new(
        WorldConfig::seeded(2),
        t,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    w.install_service(s0, Box::new(StoreServer::new()));
    w.install_service(s1, Box::new(StoreServer::new()));
    let set = setup_set(&mut w, cn, s0, s1);
    w.topology_mut().partition(&[s1]);
    let mut it = set.elements_observed(Semantics::Optimistic);
    assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut w), IterStep::Blocked);
    w.topology_mut().heal_partition();
    assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut w), IterStep::Done);
    let sim_comp = it.take_computation(&w).unwrap();

    // Threads: same story via the fleet's reachability fault table.
    let mut rt = ThreadedRuntime::<StoreMsg>::new(2);
    let tcn = rt.add_node("client");
    let ts0 = rt.add_node("s0");
    let ts1 = rt.add_node("s1");
    rt.install_service(ts0, Box::new(StoreServer::new()));
    rt.install_service(ts1, Box::new(StoreServer::new()));
    let set = setup_set(&mut rt, tcn, ts0, ts1);
    rt.set_reachable(tcn, ts1, false);
    let mut it = set.elements_observed(Semantics::Optimistic);
    assert!(matches!(it.next(&mut rt), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut rt), IterStep::Blocked);
    rt.set_reachable(tcn, ts1, true);
    assert!(matches!(it.next(&mut rt), IterStep::Yielded(_)));
    assert_eq!(it.next(&mut rt), IterStep::Done);
    let rt_comp = it.take_computation(&rt).unwrap();
    rt.shutdown(Duration::from_secs(10))
        .expect("no node thread should hang at shutdown");

    for comp in [&sim_comp, &rt_comp] {
        check_computation(Figure::Fig6, comp).assert_ok();
        assert_eq!(comp.runs[0].yielded_set().len(), 2);
    }
}

/// Anti-entropy rounds — the gossip engine's self-rescheduling task —
/// run on the threaded backend's timer queue and converge real replica
/// threads, exactly as they do on the simulator's event loop.
#[test]
fn gossip_anti_entropy_converges_on_threads() {
    let mut rt = ThreadedRuntime::<StoreMsg>::new(7);
    let cn = rt.add_node("client");
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("g{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(GossipNode::new(s)));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(500));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut rt, &cref).unwrap();
    for i in 1..=5u64 {
        client
            .add_member(
                &mut rt,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home: cref.home,
                },
            )
            .unwrap();
    }

    let handle = engine::install(
        &mut rt,
        COLL,
        cref.all_nodes(),
        GossipConfig {
            interval: SimDuration::from_millis(5),
            ..GossipConfig::default()
        },
    );
    let mut converged = false;
    for _ in 0..200 {
        rt.sleep(SimDuration::from_millis(10));
        if engine::converged(&rt, COLL, &cref.all_nodes()) {
            converged = true;
            break;
        }
    }
    handle.stop();
    assert!(converged, "replicas never converged under threaded gossip");
    for &r in &cref.all_nodes() {
        let mut ids: Vec<u64> = engine::elements_at(&rt, r, COLL)
            .unwrap()
            .iter()
            .map(|m| m.elem.0)
            .collect();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 2, 3, 4, 5], "replica {r:?} membership");
    }
    assert!(rt.metrics().counter("gossip.rounds") > 0);
    rt.shutdown(Duration::from_secs(10))
        .expect("no node thread should hang at shutdown");
}

/// The sharded set's batched quorum fan-out — send_batch plus wait_any
/// over reply tokens — works against real mailboxes and threads.
#[test]
fn sharded_quorum_fanout_runs_on_threads() {
    let mut rt = ThreadedRuntime::<StoreMsg>::new(9);
    let cn = rt.add_node("client");
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(500));
    let groups: Vec<ShardGroup> = servers
        .iter()
        .map(|&h| ShardGroup {
            home: h,
            replicas: servers.iter().copied().filter(|&r| r != h).collect(),
        })
        .collect();
    let set = ShardedWeakSet::create(
        &mut rt,
        CollectionId(100),
        client,
        &groups,
        IterConfig {
            read_policy: ReadPolicy::Quorum,
            ..IterConfig::default()
        },
    )
    .unwrap();
    for i in 1..=9u64 {
        set.add(
            &mut rt,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            servers[(i % 3) as usize],
        )
        .unwrap();
    }

    let mut it = set.elements_observed(Semantics::Snapshot);
    let mut yielded = Vec::new();
    loop {
        match it.next(&mut rt) {
            IterStep::Yielded(rec) => yielded.push(rec.id.0),
            IterStep::Done => break,
            other => panic!("sharded iteration hit {other:?} with all nodes up"),
        }
    }
    yielded.sort_unstable();
    assert_eq!(yielded, (1..=9).collect::<Vec<u64>>());
    rt.shutdown(Duration::from_secs(10))
        .expect("no node thread should hang at shutdown");
}

/// The record→replay round trip across the same semantics × policy grid
/// as the direct parity test: each cell runs live on OS threads with a
/// recorder attached, then replays through the simulator, and the
/// replayed run must reproduce the live yields, membership, and
/// per-figure conformance verdicts — divergence-free.
#[test]
fn recorded_threaded_runs_replay_to_identical_verdicts() {
    use weakset_dst::prelude::{
        record_scenario, replay_recording, Chaos, Deployment, Op, Scenario,
    };

    fn verdicts(comp: &Computation) -> Vec<(Figure, bool)> {
        Figure::ALL
            .iter()
            .map(|&f| (f, check_computation(f, comp).is_ok()))
            .collect()
    }

    for (si, semantics) in [
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
        Semantics::Locked,
    ]
    .into_iter()
    .enumerate()
    {
        for (pi, policy) in [
            ReadPolicy::Primary,
            ReadPolicy::Quorum,
            ReadPolicy::Leaderless,
        ]
        .into_iter()
        .enumerate()
        {
            let scenario = Scenario {
                seed: SEED + (si * 3 + pi) as u64,
                servers: 3,
                deployment: Deployment::Plain,
                semantics,
                read_policy: policy,
                guard_growth: false,
                fetch_order: FetchOrder::IdOrder,
                think_ms: 1,
                budget: 16,
                start_ms: 10,
                setup: (1..=5u64).map(|i| (i, (i as usize - 1) % 3)).collect(),
                ops: vec![Op::Remove { at_ms: 0, elem: 2 }],
                faults: vec![],
                chaos: Chaos::None,
            };

            let live = record_scenario(&scenario)
                .unwrap_or_else(|e| panic!("record {semantics:?}/{policy:?}: {e}"));
            assert!(
                live.report.violations.is_empty(),
                "live {semantics:?}/{policy:?}: {:?}",
                live.report.violations
            );
            let replayed = replay_recording(&live.recording)
                .unwrap_or_else(|e| panic!("replay {semantics:?}/{policy:?}: {e}"));
            assert_eq!(
                replayed.divergences,
                Vec::<String>::new(),
                "replay diverged for {semantics:?}/{policy:?}"
            );

            let mut live_yielded = live.report.yielded.clone();
            let mut replay_yielded = replayed.report.yielded.clone();
            live_yielded.sort_unstable();
            replay_yielded.sort_unstable();
            assert_eq!(
                replay_yielded, live_yielded,
                "yields disagree for {semantics:?}/{policy:?}"
            );
            assert_eq!(
                replayed.membership, live.membership,
                "membership disagrees for {semantics:?}/{policy:?}"
            );
            assert_eq!(live_yielded, vec![1, 3, 4, 5]);
            assert_eq!(live.membership, vec![1, 3, 4, 5]);

            assert_eq!(live.report.computations.len(), 1);
            assert_eq!(replayed.report.computations.len(), 1);
            assert_eq!(
                verdicts(&replayed.report.computations[0]),
                verdicts(&live.report.computations[0]),
                "figure verdicts disagree for {semantics:?}/{policy:?}"
            );
            assert!(
                replayed.report.violations.is_empty(),
                "replay {semantics:?}/{policy:?}: {:?}",
                replayed.report.violations
            );
        }
    }
}
