//! Property-based tests (proptest) over the whole stack: randomized
//! environments — churn scripts, fault plans, latencies — under which
//! every iterator must still satisfy its figure, and the simulator must
//! stay deterministic.

use proptest::prelude::*;
use weak_sets::prelude::*;

/// A randomized environment script.
#[derive(Clone, Debug)]
struct EnvScript {
    seed: u64,
    n_elems: usize,
    /// (at_ms, is_add, key) mutation events.
    mutations: Vec<(u64, bool, u64)>,
    /// Optional (partition_at_ms, heal_at_ms, victim_index).
    partition: Option<(u64, u64, usize)>,
    latency_ms: u64,
}

fn env_script() -> impl Strategy<Value = EnvScript> {
    (
        0u64..1000,
        2usize..10,
        proptest::collection::vec((1u64..600, any::<bool>(), 0u64..12), 0..8),
        proptest::option::of((1u64..300, 301u64..900, 0usize..4)),
        1u64..10,
    )
        .prop_map(
            |(seed, n_elems, mutations, partition, latency_ms)| EnvScript {
                seed,
                n_elems,
                mutations,
                partition,
                latency_ms,
            },
        )
}

struct Built {
    world: StoreWorld,
    set: WeakSet,
}

fn build(script: &EnvScript) -> Built {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let servers: Vec<NodeId> = (0..4)
        .map(|i| topo.add_node(format!("s{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(script.seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(script.latency_ms)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(150));
    let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 0..script.n_elems as u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            servers[(i % 4) as usize],
        )
        .unwrap();
    }
    // Mutation events as loopback environment actions.
    let t0 = world.now();
    for &(at_ms, is_add, key) in &script.mutations {
        let cref = set.cref().clone();
        let home = servers[(key % 4) as usize];
        let fresh = 1_000 + key;
        world.spawn_at(
            t0 + SimDuration::from_millis(at_ms),
            move |w: &mut StoreWorld| {
                if is_add {
                    if let Some(srv) = w.service_mut::<StoreServer>(home) {
                        srv.preload_object(ObjectRecord::new(
                            ObjectId(fresh),
                            format!("f{fresh}"),
                            &b"y"[..],
                        ));
                    }
                    if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                        primary.apply(StoreMsg::AddMember {
                            coll: cref.id,
                            entry: MemberEntry {
                                elem: ObjectId(fresh),
                                home,
                            },
                        });
                    }
                } else if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                    primary.apply(StoreMsg::RemoveMember {
                        coll: cref.id,
                        elem: ObjectId(key + 1),
                    });
                }
            },
        );
    }
    // Never partition the membership home (index 0): Fig 4/6 runs could
    // otherwise not even start, which is legal but uninteresting.
    if let Some((at, heal, victim)) = script.partition {
        let victim = servers[1 + victim % 3];
        world.install_plan(
            &FaultPlan::none()
                .partition_at(t0 + SimDuration::from_millis(at), &[victim])
                .heal_at(t0 + SimDuration::from_millis(heal)),
        );
    }
    Built { world, set }
}

fn drive_observed(built: &mut Built, semantics: Semantics) -> (Computation, IterStep) {
    let mut it = built.set.elements_observed(semantics);
    let mut blocks = 0;
    let end = loop {
        match it.next(&mut built.world) {
            IterStep::Yielded(_) => {}
            IterStep::Blocked => {
                blocks += 1;
                if blocks > 25 {
                    break IterStep::Blocked;
                }
                built.world.sleep(SimDuration::from_millis(40));
            }
            step => break step,
        }
    };
    (it.take_computation(&built.world).expect("observed"), end)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The snapshot iterator conforms to Figure 4 under EVERY random
    /// environment (churn + partitions + latencies).
    #[test]
    fn snapshot_always_conforms_to_fig4(script in env_script()) {
        let mut built = build(&script);
        let (comp, end) = drive_observed(&mut built, Semantics::Snapshot);
        prop_assert!(!matches!(end, IterStep::Blocked));
        let conf = check_computation(Figure::Fig4, &comp);
        prop_assert!(conf.is_ok(), "violations: {:?}", conf.violations);
    }

    /// The optimistic iterator conforms to Figure 6 under every random
    /// environment, never fails, and every yield was a member in-window.
    #[test]
    fn optimistic_always_conforms_to_fig6(script in env_script()) {
        let mut built = build(&script);
        let (comp, end) = drive_observed(&mut built, Semantics::Optimistic);
        prop_assert!(!matches!(end, IterStep::Failed(_)));
        let conf = check_computation(Figure::Fig6, &comp);
        prop_assert!(conf.is_ok(), "violations: {:?}", conf.violations);
        for run in &comp.runs {
            prop_assert!(weakset_spec::specs::fig6::yields_were_members(&comp, run));
        }
    }

    /// The grow-only iterator conforms to Figure 5 whenever the
    /// environment honours the grow-only constraint.
    #[test]
    fn grow_only_conforms_to_fig5_in_growing_envs(mut script in env_script()) {
        for m in &mut script.mutations {
            m.1 = true; // adds only
        }
        let mut built = build(&script);
        let (comp, _end) = drive_observed(&mut built, Semantics::GrowOnly);
        let conf = check_computation(Figure::Fig5, &comp);
        prop_assert!(conf.is_ok(), "violations: {:?}", conf.violations);
    }

    /// Deterministic replay: the same script produces byte-identical
    /// computations.
    #[test]
    fn same_script_same_computation(script in env_script()) {
        let mut a = build(&script);
        let (comp_a, _) = drive_observed(&mut a, Semantics::Optimistic);
        let mut b = build(&script);
        let (comp_b, _) = drive_observed(&mut b, Semantics::Optimistic);
        prop_assert_eq!(comp_a, comp_b);
    }

    /// No duplicates, ever: yields within one run are unique (sets have
    /// no duplicates — §1's requirement).
    #[test]
    fn yields_are_duplicate_free(script in env_script()) {
        let mut built = build(&script);
        for semantics in [Semantics::Snapshot, Semantics::Optimistic] {
            let mut it = built.set.elements(semantics);
            let mut seen = std::collections::BTreeSet::new();
            let mut blocks = 0;
            loop {
                match it.next(&mut built.world) {
                    IterStep::Yielded(rec) => {
                        prop_assert!(seen.insert(rec.id), "duplicate {:?}", rec.id);
                    }
                    IterStep::Blocked => {
                        blocks += 1;
                        if blocks > 10 { break; }
                        built.world.sleep(SimDuration::from_millis(30));
                    }
                    _ => break,
                }
            }
        }
    }
}
