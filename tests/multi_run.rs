//! Multi-run computations: one observer witnessing several uses of the
//! iterator over the same set.
//!
//! This exercises two things the paper calls out:
//!
//! * §3.2: "If clients were concerned about these possible losses, after
//!   the iterator terminates, they can run the iterator again and hope to
//!   catch discrepancies."
//! * §3.1/§3.3: the relaxed constraints that allow mutation *between*
//!   runs but not *within* one — checkable only over a computation that
//!   spans several runs.

use weak_sets::prelude::*;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
    server: NodeId,
}

fn rig(seed: u64, n: u64) -> Rig {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let server = topo.add_node("server", 1);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(2)),
    );
    world.install_service(server, Box::new(StoreServer::new()));
    let client = StoreClient::new(cn, SimDuration::from_millis(100));
    let cref = CollectionRef::unreplicated(CollectionId(1), server);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 1..=n {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            server,
        )
        .unwrap();
    }
    Rig { world, set, server }
}

fn drain(rig: &mut Rig, it: &mut Elements) -> Vec<ObjectId> {
    let mut out = Vec::new();
    loop {
        match it.next(&mut rig.world) {
            IterStep::Yielded(rec) => out.push(rec.id),
            IterStep::Done => return out,
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn rerun_catches_the_discrepancy() {
    // Run 1 misses an element added mid-run (snapshot semantics); run 2,
    // recorded into the same computation, picks it up — and the whole
    // two-run computation conforms to Figure 4.
    let mut r = rig(1, 4);
    let mut it1 = r.set.elements_observed(Semantics::Snapshot);
    // Pull one element, then a concurrent add lands.
    assert!(matches!(it1.next(&mut r.world), IterStep::Yielded(_)));
    r.set
        .add(
            &mut r.world,
            ObjectRecord::new(ObjectId(99), "late", &b"y"[..]),
            r.server,
        )
        .unwrap();
    let mut first: Vec<ObjectId> = Vec::new();
    loop {
        match it1.next(&mut r.world) {
            IterStep::Yielded(rec) => first.push(rec.id),
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    assert!(!first.contains(&ObjectId(99)), "run 1 must miss the add");

    // Hand the observer to a second run.
    let obs = it1.take_observer().expect("observer still attached");
    let mut it2 = r.set.elements(Semantics::Snapshot);
    it2.observe(obs);
    let second = drain(&mut r, &mut it2);
    assert!(second.contains(&ObjectId(99)), "run 2 catches it");

    let comp = it2.take_computation(&r.world).expect("observed");
    assert_eq!(comp.runs.len(), 2);
    let conf = check_computation(Figure::Fig4, &comp);
    conf.assert_ok();
    // Figure 3's full immutability rejects the two-run history (the add
    // happened between states), but...
    assert!(!check_computation(Figure::Fig3, &comp).is_ok());
    // ...the §3.1 relaxed constraint (immutable during each run only)
    // accepts it: the mutation landed inside run 1, wait — it landed
    // during run 1, so even the relaxed form rejects run 1's window.
    let relaxed = Checker::new(Figure::Fig3)
        .with_constraint(ConstraintKind::ImmutableDuringRuns)
        .check(&comp);
    assert!(!relaxed.is_ok());
}

#[test]
fn mutation_between_runs_satisfies_relaxed_constraint_only() {
    let mut r = rig(2, 3);
    // Run 1: quiescent.
    let mut it1 = r.set.elements_observed(Semantics::Snapshot);
    let first = drain(&mut r, &mut it1);
    assert_eq!(first.len(), 3);
    let obs = it1.take_observer().unwrap();
    // Mutate strictly BETWEEN runs.
    r.set
        .add(
            &mut r.world,
            ObjectRecord::new(ObjectId(50), "between", &b"z"[..]),
            r.server,
        )
        .unwrap();
    // Run 2: quiescent again.
    let mut it2 = r.set.elements(Semantics::Snapshot);
    it2.observe(obs);
    let second = drain(&mut r, &mut it2);
    assert_eq!(second.len(), 4);
    let comp = it2.take_computation(&r.world).unwrap();
    assert_eq!(comp.runs.len(), 2);
    // Full immutability: violated. Relaxed per-run immutability: holds.
    assert!(!check_computation(Figure::Fig3, &comp).is_ok());
    Checker::new(Figure::Fig3)
        .with_constraint(ConstraintKind::ImmutableDuringRuns)
        .check(&comp)
        .assert_ok();
    // Each run is also individually Figure-4 conformant.
    check_computation(Figure::Fig4, &comp).assert_ok();
}

#[test]
fn same_query_twice_may_differ_under_churn() {
    // §1's non-serializable expectations: "running the same query twice
    // in a row may return different sets of elements."
    let mut r = rig(3, 5);
    let mut it1 = r.set.elements_observed(Semantics::Optimistic);
    let first = drain(&mut r, &mut it1);
    let obs = it1.take_observer().unwrap();
    r.set.remove(&mut r.world, ObjectId(2)).unwrap();
    r.set
        .add(
            &mut r.world,
            ObjectRecord::new(ObjectId(77), "new", &b"n"[..]),
            r.server,
        )
        .unwrap();
    let mut it2 = r.set.elements(Semantics::Optimistic);
    it2.observe(obs);
    let second = drain(&mut r, &mut it2);
    assert_ne!(
        first.iter().collect::<std::collections::BTreeSet<_>>(),
        second.iter().collect::<std::collections::BTreeSet<_>>()
    );
    let comp = it2.take_computation(&r.world).unwrap();
    assert_eq!(comp.runs.len(), 2);
    // Figure 6 has no constraint: the whole two-run history conforms.
    check_computation(Figure::Fig6, &comp).assert_ok();
    // And each run classifies independently in the taxonomy.
    let c1 = classify_run(&comp, &comp.runs[0]);
    assert_eq!(c1.consistency, Consistency::Strong);
}

#[test]
fn three_runs_in_one_computation() {
    let mut r = rig(4, 2);
    let mut obs = None;
    for round in 0..3 {
        let mut it = r.set.elements(Semantics::GrowOnly);
        match obs.take() {
            Some(o) => it.observe(o),
            None => {
                it = {
                    let mut it = r.set.elements_observed(Semantics::GrowOnly);
                    let _ = &mut it;
                    it
                }
            }
        }
        let got = drain(&mut r, &mut it);
        assert_eq!(got.len(), 2 + round);
        obs = it.take_observer();
        // Grow between runs.
        r.set
            .add(
                &mut r.world,
                ObjectRecord::new(ObjectId(100 + round as u64), "g", &b"g"[..]),
                r.server,
            )
            .unwrap();
        // Re-wrap for the next round.
        let o = obs.take().expect("observer");
        obs = Some(o);
    }
    // Final check over all three runs: grow-only holds globally here.
    let o = obs.expect("observer");
    let mut final_it = r.set.elements(Semantics::GrowOnly);
    final_it.observe(o);
    let comp = final_it.take_computation(&r.world).expect("computation");
    assert_eq!(comp.runs.len(), 3);
    check_computation(Figure::Fig5, &comp).assert_ok();
}
