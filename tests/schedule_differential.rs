//! Differential testing across the design space: push *identical
//! recorded schedules* through the locked baseline and each weak
//! iterator, and check the containment relations the paper's figures
//! imply.
//!
//! Because `weakset-dst` executions are pure functions of the scenario,
//! changing only the `semantics` field replays the same topology, seed,
//! setup, and mutation schedule under a different design point — the
//! cross-semantics comparison is exact, not statistical.
//!
//! Relations checked, per schedule:
//! - every design point runs violation-free against its own figure;
//! - the locked baseline's yield set is contained in the grow-only
//!   iterator's (locking freezes membership at entry; grow-only starts
//!   from the same membership and may pick up concurrent growth);
//! - every optimistic yield was a member in some state between the run's
//!   first and last invocation (Figure 6's `in some state` clause).

use std::collections::BTreeSet;
use weakset::prelude::Semantics;
use weakset_dst::prelude::*;
use weakset_spec::specs::fig6;

/// A fault-free plain deployment carrying a mixed add/remove schedule.
fn schedule(seed: u64, ops: Vec<Op>) -> Scenario {
    Scenario {
        seed,
        servers: 3,
        deployment: Deployment::Plain,
        semantics: Semantics::Snapshot, // overridden per design point
        read_policy: weakset_store::prelude::ReadPolicy::Primary,
        guard_growth: false,
        fetch_order: weakset::prelude::FetchOrder::IdOrder,
        think_ms: 2,
        budget: 32,
        start_ms: 20,
        setup: vec![(1, 0), (2, 1), (3, 2), (4, 0)],
        ops,
        faults: Vec::new(),
        chaos: Chaos::None,
    }
}

fn at(s: &Scenario, sem: Semantics) -> Scenario {
    Scenario {
        semantics: sem,
        guard_growth: sem == Semantics::GrowOnly && s.has_removals(),
        ..s.clone()
    }
}

fn yield_set(r: &RunReport) -> BTreeSet<u64> {
    r.yielded.iter().copied().collect()
}

fn check_schedule(base: &Scenario) {
    let mut reports = Vec::new();
    for sem in Semantics::ALL {
        let s = at(base, sem);
        let r = execute(&s);
        assert!(
            r.violations.is_empty(),
            "seed {} {sem}: {:?}",
            base.seed,
            r.violations
        );
        reports.push((sem, r));
    }

    let report_for = |sem| &reports.iter().find(|(s, _)| *s == sem).unwrap().1;
    let locked = yield_set(report_for(Semantics::Locked));
    let grow = yield_set(report_for(Semantics::GrowOnly));
    assert!(
        locked.is_subset(&grow),
        "seed {}: locked yields {locked:?} not contained in grow-only yields {grow:?}",
        base.seed
    );

    let optimistic = report_for(Semantics::Optimistic);
    let comp = optimistic
        .computations
        .first()
        .expect("observed run records a computation");
    for run in &comp.runs {
        assert!(
            fig6::yields_were_members(comp, run),
            "seed {}: optimistic yield was never a member during its run",
            base.seed
        );
    }
}

#[test]
fn pure_growth_schedule() {
    check_schedule(&schedule(
        11,
        vec![
            Op::Add {
                at_ms: 30,
                elem: 100,
                home: 1,
            },
            Op::Add {
                at_ms: 55,
                elem: 101,
                home: 2,
            },
        ],
    ));
}

#[test]
fn mixed_growth_and_shrink_schedule() {
    check_schedule(&schedule(
        13,
        vec![
            Op::Add {
                at_ms: 28,
                elem: 100,
                home: 0,
            },
            Op::Remove { at_ms: 45, elem: 2 },
            Op::Add {
                at_ms: 60,
                elem: 101,
                home: 1,
            },
            Op::Remove { at_ms: 75, elem: 4 },
        ],
    ));
}

#[test]
fn quiescent_schedule() {
    check_schedule(&schedule(17, Vec::new()));
}

/// Same relations hold across a batch of generator-built fault-free
/// schedules, not just hand-picked ones.
#[test]
fn generated_fault_free_schedules() {
    let mut checked = 0;
    for i in 0..40 {
        let mut s = generate(mix(23, i));
        if !matches!(s.deployment, Deployment::Plain) || !s.faults.is_empty() {
            continue;
        }
        s.read_policy = weakset_store::prelude::ReadPolicy::Primary;
        check_schedule(&s);
        checked += 1;
        if checked >= 5 {
            break;
        }
    }
    assert!(
        checked >= 3,
        "generator produced too few fault-free plain scenarios"
    );
}
