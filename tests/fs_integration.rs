//! File-system-level integration: directories as weak sets, strict vs
//! dynamic listings, mobile clients, and spec conformance of a directory
//! iteration recorded straight off the DFS.

use weak_sets::prelude::*;

struct Dfs {
    world: StoreWorld,
    fs: FileSystem,
    vols: Vec<NodeId>,
    laptop: NodeId,
}

fn dfs(seed: u64, n_files: usize) -> Dfs {
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let vols: Vec<NodeId> = (0..4)
        .map(|i| topo.add_node(format!("vol{i}"), i + 1))
        .collect();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::Constant(SimDuration::from_millis(3)),
    );
    for &v in &vols {
        world.install_service(v, Box::new(StoreServer::new()));
    }
    let mut fs =
        FileSystem::format(&mut world, laptop, vols[0], SimDuration::from_millis(200)).unwrap();
    flat_dir(&mut world, &mut fs, &FsPath::root(), n_files, 32, &vols).unwrap();
    Dfs {
        world,
        fs,
        vols,
        laptop,
    }
}

#[test]
fn directory_iteration_conforms_as_a_weak_set() {
    // Iterate the root directory through the WeakSet machinery with an
    // observer: a directory really is a weak set.
    let mut d = dfs(1, 10);
    let cref = d.fs.dir(&FsPath::root()).unwrap().clone();
    let client = StoreClient::new(d.laptop, SimDuration::from_millis(200));
    let set = WeakSet::new(client, cref);
    let mut it = set.elements_observed(Semantics::Optimistic);
    loop {
        match it.next(&mut d.world) {
            IterStep::Yielded(_) => {}
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    let comp = it.take_computation(&d.world).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
    assert_eq!(comp.runs[0].yielded_set().len(), 10);
}

#[test]
fn strict_and_dynamic_listings_agree_when_healthy() {
    let mut d = dfs(2, 16);
    let strict = d.fs.ls(&mut d.world, &FsPath::root()).unwrap();
    let mut dyn_listing =
        d.fs.dynls(&mut d.world, &FsPath::root(), PrefetchConfig::default())
            .unwrap();
    let (mut entries, end) = dyn_listing.drain_available(&mut d.world);
    assert_eq!(end, DynLsStep::Complete);
    entries.sort_by(|a, b| a.name.cmp(&b.name));
    let strict_names: Vec<_> = strict.iter().map(|e| &e.name).collect();
    let dyn_names: Vec<_> = entries.iter().map(|e| &e.name).collect();
    assert_eq!(strict_names, dyn_names);
}

#[test]
fn concurrent_creation_during_listing_is_weakly_visible() {
    // A colleague creates files while the listing runs: dynls (snapshot
    // membership at open) misses them; a second listing sees them.
    let mut d = dfs(3, 8);
    let mut dyn_listing =
        d.fs.dynls(
            &mut d.world,
            &FsPath::root(),
            PrefetchConfig {
                window: 1,
                ..Default::default()
            },
        )
        .unwrap();
    // Pull two entries, then create a new file from another node.
    for _ in 0..2 {
        assert!(matches!(
            dyn_listing.next(&mut d.world),
            DynLsStep::Entry(_)
        ));
    }
    let mut colleague = d.fs.view_from(d.vols[1], SimDuration::from_millis(200));
    colleague
        .create_file(
            &mut d.world,
            &FsPath::parse("/surprise.txt").unwrap(),
            b"!",
            d.vols[1],
        )
        .unwrap();
    let (rest, end) = dyn_listing.drain_available(&mut d.world);
    assert_eq!(end, DynLsStep::Complete);
    assert_eq!(rest.len() + 2, 8, "snapshot membership misses the add");
    // Re-running the query catches the discrepancy, as §3.2 suggests.
    let fresh = d.fs.ls(&mut d.world, &FsPath::root()).unwrap();
    assert_eq!(fresh.len(), 9);
}

#[test]
fn mobile_disconnect_mid_listing_then_finish() {
    let mut d = dfs(4, 12);
    let mut mc = MobileClient::new(d.laptop);
    let mut listing =
        d.fs.dynls(
            &mut d.world,
            &FsPath::root(),
            PrefetchConfig {
                window: 2,
                fetch_timeout: SimDuration::from_millis(50),
                ..Default::default()
            },
        )
        .unwrap();
    let mut got = 0;
    for _ in 0..4 {
        match listing.next(&mut d.world) {
            DynLsStep::Entry(_) => got += 1,
            other => panic!("{other:?}"),
        }
    }
    mc.disconnect(&mut d.world);
    let (in_flight, end) = listing.drain_available(&mut d.world);
    got += in_flight.len();
    assert!(matches!(end, DynLsStep::Partial { .. }));
    mc.reconnect(&mut d.world);
    listing.retry();
    let (rest, end) = listing.drain_available(&mut d.world);
    got += rest.len();
    assert_eq!(end, DynLsStep::Complete);
    assert_eq!(got, 12);
}

#[test]
fn deep_tree_builds_and_lists_recursively() {
    let mut d = dfs(5, 0);
    let spec = TreeSpec {
        depth: 2,
        fanout: 2,
        files_per_dir: 2,
        file_size: 16,
    };
    let mut placement = Placement::round_robin();
    let mut rng = d.world.rng_for("tree");
    let stats = spec
        .build(&mut d.world, &mut d.fs, &d.vols, &mut placement, &mut rng)
        .unwrap();
    // Every directory lists its expected children.
    for dir in std::iter::once(&FsPath::root()).chain(stats.dirs.iter()) {
        let ls = d.fs.ls(&mut d.world, dir).unwrap();
        let expected_subdirs = if dir.depth() < 2 { 2 } else { 0 };
        assert_eq!(
            ls.len(),
            2 + expected_subdirs,
            "{dir}: {:?}",
            ls.iter().map(|e| &e.name).collect::<Vec<_>>()
        );
    }
    // And files read back their payload.
    let rec = d.fs.read_file(&mut d.world, &stats.files[0]).unwrap();
    assert_eq!(rec.size(), 16);
}

#[test]
fn strict_ls_sorted_dynls_unordered_closest_first() {
    // With site-distance latency and window 1, dynls yields nearest
    // volumes first while strict ls is alphabetical regardless.
    let mut topo = Topology::new();
    let laptop = topo.add_node("laptop", 0);
    let near = topo.add_node("near", 1);
    let far = topo.add_node("far", 8);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(6),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(1),
            per_hop: SimDuration::from_millis(4),
        },
    );
    world.install_service(near, Box::new(StoreServer::new()));
    world.install_service(far, Box::new(StoreServer::new()));
    let mut fs =
        FileSystem::format(&mut world, laptop, near, SimDuration::from_millis(300)).unwrap();
    // "aaa" lives far away, "zzz" nearby: alphabetical vs proximity.
    fs.create_file(&mut world, &FsPath::parse("/aaa").unwrap(), b"far", far)
        .unwrap();
    fs.create_file(&mut world, &FsPath::parse("/zzz").unwrap(), b"near", near)
        .unwrap();
    let strict = fs.ls(&mut world, &FsPath::root()).unwrap();
    assert_eq!(strict[0].name, "aaa");
    let mut listing = fs
        .dynls(
            &mut world,
            &FsPath::root(),
            PrefetchConfig {
                window: 1,
                ..Default::default()
            },
        )
        .unwrap();
    match listing.next(&mut world) {
        DynLsStep::Entry(e) => assert_eq!(e.name, "zzz", "closest first"),
        other => panic!("{other:?}"),
    }
}
