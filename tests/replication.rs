//! Replication and staleness: the paper's observation that "the single
//! 'logical' object may be represented by a set of replicas ... one node
//! may have more up-to-date information than another; cached data may be
//! stale" — and what that does to spec conformance.
//!
//! The headline ablation: an *optimistic iterator reading stale replicas*
//! (`ReadPolicy::Any`) can yield an element that was removed before the
//! run even started, violating Figure 6's "every yield was a member in
//! some state between first and last". The same iterator with
//! `ReadPolicy::Primary` (or `Quorum`) conforms.

use weak_sets::prelude::*;

struct Rig {
    world: StoreWorld,
    client: StoreClient,
    cref: CollectionRef,
    primary: NodeId,
    replica: NodeId,
}

fn rig(seed: u64) -> Rig {
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    // The replica is *closer* to the client than the primary, so
    // ReadPolicy::Any prefers it.
    let replica = topo.add_node("replica", 1);
    let primary = topo.add_node("primary", 6);
    let mut world = StoreWorld::new(
        WorldConfig::seeded(seed),
        topo,
        LatencyModel::SiteDistance {
            base: SimDuration::from_millis(2),
            per_hop: SimDuration::from_millis(2),
        },
    );
    world.install_service(primary, Box::new(StoreServer::new()));
    world.install_service(replica, Box::new(StoreServer::new()));
    let client = StoreClient::new(client_node, SimDuration::from_millis(150));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: primary,
        replicas: vec![replica],
    };
    client.create_collection(&mut world, &cref).unwrap();
    for i in 1..=3u64 {
        client
            .put_object(
                &mut world,
                primary,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            )
            .unwrap();
        client
            .add_member(
                &mut world,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home: primary,
                },
            )
            .unwrap();
    }
    Rig {
        world,
        client,
        cref,
        primary,
        replica,
    }
}

/// Makes the replica stale: cut it off, remove element 1 at the primary,
/// reconnect it. Replica still lists {1,2,3}; truth is {2,3}.
fn make_replica_stale(r: &mut Rig) {
    r.world.topology_mut().partition(&[r.replica]);
    r.client
        .remove_member(&mut r.world, &r.cref, ObjectId(1))
        .unwrap();
    r.world.topology_mut().heal_partition();
}

#[test]
fn stale_any_reads_break_fig6_conformance() {
    let mut r = rig(1);
    make_replica_stale(&mut r);
    let set = WeakSet::new(r.client.clone(), r.cref.clone()).with_config(IterConfig {
        read_policy: ReadPolicy::Any,
        fetch_order: FetchOrder::IdOrder,
        ..Default::default()
    });
    let mut it = set.elements_observed(Semantics::Optimistic);
    let mut yields = Vec::new();
    loop {
        match it.next(&mut r.world) {
            IterStep::Yielded(rec) => yields.push(rec.id),
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    // The stale replica resurrected element 1.
    assert!(yields.contains(&ObjectId(1)), "{yields:?}");
    let comp = it.take_computation(&r.world).expect("observed");
    let conf = check_computation(Figure::Fig6, &comp);
    assert!(
        !conf.is_ok(),
        "stale reads must be flagged: yielding a long-removed element"
    );
    assert!(conf
        .violations
        .iter()
        .any(|v| matches!(v, Violation::Ensures { .. })));
}

#[test]
fn primary_reads_conform_where_any_reads_do_not() {
    let mut r = rig(2);
    make_replica_stale(&mut r);
    let set = WeakSet::new(r.client.clone(), r.cref.clone()).with_config(IterConfig {
        read_policy: ReadPolicy::Primary,
        ..Default::default()
    });
    let mut it = set.elements_observed(Semantics::Optimistic);
    let mut yields = Vec::new();
    loop {
        match it.next(&mut r.world) {
            IterStep::Yielded(rec) => yields.push(rec.id),
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    assert!(!yields.contains(&ObjectId(1)));
    let comp = it.take_computation(&r.world).expect("observed");
    check_computation(Figure::Fig6, &comp).assert_ok();
}

#[test]
fn quorum_reads_also_conform() {
    let mut r = rig(3);
    make_replica_stale(&mut r);
    let set = WeakSet::new(r.client.clone(), r.cref.clone()).with_config(IterConfig {
        read_policy: ReadPolicy::Quorum,
        ..Default::default()
    });
    let (records, end) = set.collect(&mut r.world, Semantics::Optimistic);
    assert_eq!(end, IterStep::Done);
    let ids: Vec<ObjectId> = records.iter().map(|rec| rec.id).collect();
    assert!(!ids.contains(&ObjectId(1)));
    assert_eq!(ids.len(), 2);
}

#[test]
fn replica_catches_up_on_next_write() {
    let mut r = rig(4);
    make_replica_stale(&mut r);
    // Any write propagates the whole membership, healing the replica.
    r.client
        .put_object(
            &mut r.world,
            r.primary,
            ObjectRecord::new(ObjectId(9), "o9", &b"x"[..]),
        )
        .unwrap();
    r.client
        .add_member(
            &mut r.world,
            &r.cref,
            MemberEntry {
                elem: ObjectId(9),
                home: r.primary,
            },
        )
        .unwrap();
    let any = r
        .client
        .read_members(&mut r.world, &r.cref, ReadPolicy::Any)
        .unwrap();
    let primary = r
        .client
        .read_members(&mut r.world, &r.cref, ReadPolicy::Primary)
        .unwrap();
    assert_eq!(any.version, primary.version);
    assert_eq!(any.entries, primary.entries);
}

#[test]
fn availability_ranking_under_primary_outage() {
    // With the primary down: Primary fails, Quorum fails (1 of 2 < 2),
    // Any survives on the stale replica — the paper's
    // pessimistic/optimistic trade-off on the membership list itself.
    let mut r = rig(5);
    make_replica_stale(&mut r);
    r.world.topology_mut().crash(r.primary);
    let p = r
        .client
        .read_members(&mut r.world, &r.cref, ReadPolicy::Primary);
    assert!(p.is_err());
    let q = r
        .client
        .read_members(&mut r.world, &r.cref, ReadPolicy::Quorum);
    assert!(matches!(q, Err(StoreError::NoQuorum { got: 1, need: 2 })));
    let a = r
        .client
        .read_members(&mut r.world, &r.cref, ReadPolicy::Any)
        .unwrap();
    assert_eq!(a.entries.len(), 3); // stale but available
}
