//! End-to-end scrape of the live telemetry plane: a threaded store
//! fleet under load, a `TelemetryServer` on an ephemeral port, and a
//! plain HTTP client asserting the exposition is real Prometheus text
//! with the runtime's counter families in it.
//!
//! This is also the CI smoke test for the endpoint (the
//! `runtime-backend` job runs exactly this test with a hard timeout).

use std::time::Duration;
use weak_sets::prelude::*;
use weakset_obs::telemetry::{TelemetryHub, TelemetryServer};
use weakset_obs::{http_get, parse_prometheus, ObsSnapshot};

const TIMEOUT: Duration = Duration::from_secs(2);

/// Builds a three-server fleet with telemetry attached, runs `reads`
/// membership reads, and returns the runtime plus the live endpoint.
fn fleet_under_load(reads: usize) -> (StoreRtOwned, TelemetryServer) {
    let mut rt = ThreadedRuntime::<StoreMsg>::new(7);
    let hub = TelemetryHub::new();
    rt.attach_telemetry(hub.clone(), Duration::from_millis(5));
    let server = TelemetryServer::serve("127.0.0.1:0", hub, "scrape-test", 7).expect("bind");

    let client_node = rt.add_node("client");
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(client_node, SimDuration::from_millis(200));
    let cref = CollectionRef {
        id: CollectionId(1),
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client.create_collection(&mut rt, &cref).expect("create");
    for i in 1..=8u64 {
        let home = servers[(i % 3) as usize];
        client
            .put_object(
                &mut rt,
                home,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            )
            .expect("put");
        client
            .add_member(
                &mut rt,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home,
                },
            )
            .expect("add");
    }
    for _ in 0..reads {
        client
            .read_members(&mut rt, &cref, ReadPolicy::Quorum)
            .expect("read against a healthy fleet");
    }
    rt.flush_telemetry();
    (rt, server)
}

type StoreRtOwned = ThreadedRuntime<StoreMsg>;

#[test]
fn metrics_endpoint_serves_parseable_prometheus_with_rpc_families() {
    let (mut rt, server) = fleet_under_load(20);

    let (status, text) = http_get(server.addr(), "/metrics", TIMEOUT).expect("scrape");
    assert_eq!(status, 200);
    let series = parse_prometheus(&text).expect("every line fits the exposition grammar");

    // The runtime's rpc counters must be there, under the weakset_
    // namespace, with the values a live scraper would act on.
    let value = |name: &str| {
        series
            .iter()
            .find(|(n, _)| n == name)
            .unwrap_or_else(|| panic!("family {name} missing from:\n{text}"))
            .1
    };
    assert!(value("weakset_rpc_sent") >= 20.0, "20 reads happened");
    assert_eq!(value("weakset_rpc_sent"), value("weakset_rpc_ok"));
    // Live read-latency quantiles are served mid-run.
    assert!(
        text.lines()
            .any(|l| l.starts_with("weakset_rpc_latency{quantile=\"0.99\"}")),
        "p99 series missing from:\n{text}"
    );

    rt.shutdown(Duration::from_secs(5)).expect("clean shutdown");
}

#[test]
fn snapshot_endpoint_round_trips_canonical_json() {
    let (mut rt, server) = fleet_under_load(5);

    let (status, body) = http_get(server.addr(), "/snapshot.json", TIMEOUT).expect("scrape");
    assert_eq!(status, 200);
    let snap = ObsSnapshot::from_json(&body).expect("canonical snapshot JSON");
    assert_eq!(snap.scenario, "scrape-test");
    assert_eq!(snap.seed, 7);
    assert!(snap.counters.get("rpc.sent").copied().unwrap_or(0) >= 5);
    assert_eq!(
        snap.to_json(),
        body,
        "serving and re-freezing agree byte-for-byte"
    );

    rt.shutdown(Duration::from_secs(5)).expect("clean shutdown");
}

#[test]
fn unknown_paths_get_a_404_without_wedging_the_server() {
    let (mut rt, server) = fleet_under_load(1);

    let (status, _) = http_get(server.addr(), "/nope", TIMEOUT).expect("scrape");
    assert_eq!(status, 404);
    // The accept loop keeps serving after an unknown path.
    let (status, _) = http_get(server.addr(), "/metrics", TIMEOUT).expect("scrape");
    assert_eq!(status, 200);

    rt.shutdown(Duration::from_secs(5)).expect("clean shutdown");
}
