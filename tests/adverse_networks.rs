//! Iteration over genuinely hostile networks: flapping links, lossy
//! links, and cascades of outages — the environments the paper's target
//! systems (mobile WAN clients) actually live in.

use weak_sets::prelude::*;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
    servers: Vec<NodeId>,
    client_node: NodeId,
}

fn rig(seed: u64, n_elems: u64) -> Rig {
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    let servers: Vec<NodeId> = (0..4)
        .map(|i| topo.add_node(format!("s{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(3)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(client_node, SimDuration::from_millis(120));
    let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 1..=n_elems {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            servers[(i % 4) as usize],
        )
        .unwrap();
    }
    Rig {
        world,
        set,
        servers,
        client_node,
    }
}

#[test]
fn optimistic_iteration_survives_a_flapping_link() {
    let mut r = rig(1, 16);
    // The link to one server flaps: 40ms down, 40ms up, 20 cycles.
    let victim = r.servers[2];
    let plan = FaultPlan::none().flap_link(
        r.world.now(),
        r.client_node,
        victim,
        SimDuration::from_millis(40),
        SimDuration::from_millis(40),
        20,
    );
    r.world.install_plan(&plan);
    let mut it = r.set.elements_observed(Semantics::Optimistic);
    let mut yields = 0;
    let mut blocks = 0;
    loop {
        match it.next(&mut r.world) {
            IterStep::Yielded(_) => yields += 1,
            IterStep::Blocked => {
                blocks += 1;
                assert!(blocks < 100, "must not block forever on a flapping link");
                r.world.sleep(SimDuration::from_millis(15));
            }
            IterStep::Done => break,
            IterStep::Failed(e) => panic!("optimistic never fails: {e}"),
        }
    }
    assert_eq!(yields, 16, "every element eventually arrives between flaps");
    let comp = it.take_computation(&r.world).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
}

#[test]
fn retrying_client_iterates_over_a_lossy_network() {
    let mut r = rig(2, 12);
    // Every link drops 40% of messages.
    for &s in &r.servers.clone() {
        r.world
            .topology_mut()
            .set_link(r.client_node, s, LinkState::lossy(0.4));
    }
    // A retry-hardened client copes.
    let sturdy = r.set.client().clone().with_retries(20);
    let set = WeakSet::new(sturdy, r.set.cref().clone());
    let (records, end) = set.collect(&mut r.world, Semantics::Optimistic);
    assert_eq!(end, IterStep::Done);
    assert_eq!(records.len(), 12);
}

#[test]
fn snapshot_iteration_under_rolling_outages() {
    // Servers crash and restart one after another. Because the iterator
    // tries *any* reachable unyielded member before declaring failure,
    // brief staggered outages are routed around: the paper's pessimism
    // only bites when every remaining member is unreachable at once.
    let mut r = rig(3, 12);
    let t0 = r.world.now();
    let mut plan = FaultPlan::none();
    for (k, &s) in r.servers.clone().iter().enumerate().skip(1) {
        plan = plan.outage(
            t0 + SimDuration::from_millis(20 + 60 * k as u64),
            s,
            SimDuration::from_millis(50),
        );
    }
    r.world.install_plan(&plan);
    let mut it = r.set.elements_observed(Semantics::Snapshot);
    let mut yields = 0;
    let end = loop {
        match it.next(&mut r.world) {
            IterStep::Yielded(_) => yields += 1,
            step => break step,
        }
    };
    assert_eq!(
        end,
        IterStep::Done,
        "staggered brief outages are routed around"
    );
    assert_eq!(yields, 12);
    let comp = it.take_computation(&r.world).unwrap();
    check_computation(Figure::Fig3, &comp).assert_ok();
    check_computation(Figure::Fig4, &comp).assert_ok();

    // Same schedule, optimistic semantics: full availability.
    let mut r2 = rig(3, 12);
    let t0 = r2.world.now();
    let mut plan = FaultPlan::none();
    for (k, &s) in r2.servers.clone().iter().enumerate().skip(1) {
        plan = plan.outage(
            t0 + SimDuration::from_millis(20 + 60 * k as u64),
            s,
            SimDuration::from_millis(50),
        );
    }
    r2.world.install_plan(&plan);
    let mut it = r2.set.elements_observed(Semantics::Optimistic);
    let mut yields = 0;
    let mut blocks = 0;
    loop {
        match it.next(&mut r2.world) {
            IterStep::Yielded(_) => yields += 1,
            IterStep::Blocked => {
                blocks += 1;
                assert!(blocks < 100);
                r2.world.sleep(SimDuration::from_millis(20));
            }
            IterStep::Done => break,
            IterStep::Failed(e) => panic!("optimistic never fails: {e}"),
        }
    }
    assert_eq!(yields, 12);
    let comp = it.take_computation(&r2.world).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
}

#[test]
fn dynamic_set_paints_through_churn_and_faults_together() {
    let mut r = rig(4, 20);
    // Flap one server while a mutator churns membership.
    let victim = r.servers[3];
    let plan = FaultPlan::none().flap_link(
        r.world.now(),
        r.client_node,
        victim,
        SimDuration::from_millis(30),
        SimDuration::from_millis(30),
        10,
    );
    r.world.install_plan(&plan);
    for k in 0..6u64 {
        let cref = r.set.cref().clone();
        let at = r.world.now() + SimDuration::from_millis(25 * (k + 1));
        let home = r.servers[(k % 4) as usize];
        r.world.spawn_at(at, move |w: &mut StoreWorld| {
            if let Some(srv) = w.service_mut::<StoreServer>(home) {
                srv.preload_object(ObjectRecord::new(
                    ObjectId(500 + k),
                    format!("late{k}"),
                    &b"y"[..],
                ));
            }
            if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                primary.apply(StoreMsg::AddMember {
                    coll: cref.id,
                    entry: MemberEntry {
                        elem: ObjectId(500 + k),
                        home,
                    },
                });
            }
        });
    }
    let client = r.set.client().clone();
    let mut ds = DynamicSet::open_collection(
        &mut r.world,
        &client,
        r.set.cref(),
        ReadPolicy::Primary,
        PrefetchConfig {
            window: 4,
            fetch_timeout: SimDuration::from_millis(80),
            ..Default::default()
        },
    )
    .unwrap();
    let mut got = 0;
    let mut rounds = 0;
    loop {
        let (batch, end) = ds.drain_available(&mut r.world);
        got += batch.len();
        match end {
            IterStep::Done => break,
            IterStep::Blocked => {
                rounds += 1;
                assert!(rounds < 50);
                r.world.sleep(SimDuration::from_millis(25));
                ds.retry_pending();
            }
            other => panic!("{other:?}"),
        }
    }
    // The 20 originals all arrive (membership snapshot at open); the
    // late adds are not in this open's member list.
    assert_eq!(got, 20);
}
