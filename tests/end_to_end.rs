//! End-to-end conformance matrix: every iterator semantics crossed with
//! every environment, checked against every figure.
//!
//! This is the repo's central correctness statement: the implementations
//! conform to exactly the figures the paper says they should, and the
//! stricter figures reject exactly the environments their constraints
//! forbid.

use weak_sets::prelude::*;

/// The environments of §3's design-space dimensions.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(dead_code)] // Quiescent is the implicit default in several tests
enum Env {
    /// No mutation, no failures.
    Quiescent,
    /// Concurrent additions only.
    Growing,
    /// Concurrent additions and removals.
    Churning,
    /// A mid-run partition that heals.
    PartitionHeal,
}

struct Deployment {
    world: StoreWorld,
    set: WeakSet,
    servers: Vec<NodeId>,
}

fn deploy(seed: u64) -> Deployment {
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    let servers: Vec<NodeId> = (0..4)
        .map(|i| topo.add_node(format!("s{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(client_node, SimDuration::from_millis(150));
    let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
    client.create_collection(&mut world, &cref).unwrap();
    let set = WeakSet::new(client, cref);
    for i in 0..12u64 {
        let home = servers[(i % 4) as usize];
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
            home,
        )
        .unwrap();
    }
    Deployment {
        world,
        set,
        servers,
    }
}

fn apply_env(d: &mut Deployment, env: Env) {
    let cref = d.set.cref().clone();
    match env {
        Env::Quiescent => {}
        Env::Growing | Env::Churning => {
            // Scheduled loopback mutations, spread over the expected run.
            for k in 0..8u64 {
                let at = d.world.now() + SimDuration::from_millis(30 * (k + 1));
                let cref = cref.clone();
                let home = d.servers[(k % 4) as usize];
                let remove = env == Env::Churning && k % 2 == 1;
                d.world.spawn_at(at, move |w: &mut StoreWorld| {
                    let primary = w
                        .service_mut::<StoreServer>(cref.home)
                        .expect("primary service");
                    if remove {
                        primary.apply(StoreMsg::RemoveMember {
                            coll: cref.id,
                            elem: ObjectId(k + 1),
                        });
                    } else {
                        primary.apply(StoreMsg::AddMember {
                            coll: cref.id,
                            entry: MemberEntry {
                                elem: ObjectId(100 + k),
                                home,
                            },
                        });
                    }
                });
                // The added objects must exist to be fetchable.
                if !remove {
                    let rec = ObjectRecord::new(ObjectId(100 + k), format!("fresh{k}"), &b"y"[..]);
                    d.world
                        .service_mut::<StoreServer>(home)
                        .expect("service")
                        .preload_object(rec);
                }
            }
        }
        Env::PartitionHeal => {
            let victim = d.servers[3];
            let t0 = d.world.now();
            d.world.install_plan(
                &FaultPlan::none()
                    .partition_at(t0 + SimDuration::from_millis(50), &[victim])
                    .heal_at(t0 + SimDuration::from_millis(400)),
            );
        }
    }
}

/// Drives an observed iterator to its end, returning the computation.
fn observed_run(d: &mut Deployment, semantics: Semantics) -> (Computation, IterStep) {
    let mut it = d.set.elements_observed(semantics);
    let mut blocks = 0;
    let end = loop {
        match it.next(&mut d.world) {
            IterStep::Yielded(_) => {}
            IterStep::Blocked => {
                blocks += 1;
                if blocks > 30 {
                    break IterStep::Blocked;
                }
                d.world.sleep(SimDuration::from_millis(40));
            }
            step => break step,
        }
    };
    (it.take_computation(&d.world).expect("observed"), end)
}

#[test]
fn quiescent_runs_conform_to_every_figure() {
    for semantics in Semantics::ALL {
        let mut d = deploy(1);
        let (comp, end) = observed_run(&mut d, semantics);
        assert_eq!(end, IterStep::Done, "{semantics}");
        for fig in Figure::ALL {
            assert!(
                check_computation(fig, &comp).is_ok(),
                "{semantics} vs {fig}"
            );
        }
    }
}

#[test]
fn growing_env_matches_paper_matrix() {
    // Snapshot under growth: conforms to Fig4 (and the growth makes Fig5
    // reject its early return). Grow-only and optimistic conform to
    // their figures.
    let mut d = deploy(2);
    apply_env(&mut d, Env::Growing);
    let (comp, end) = observed_run(&mut d, Semantics::Snapshot);
    assert_eq!(end, IterStep::Done);
    assert!(check_computation(Figure::Fig4, &comp).is_ok());
    assert!(!check_computation(Figure::Fig3, &comp).is_ok());
    assert!(!check_computation(Figure::Fig5, &comp).is_ok());

    let mut d = deploy(3);
    apply_env(&mut d, Env::Growing);
    let (comp, end) = observed_run(&mut d, Semantics::GrowOnly);
    assert_eq!(end, IterStep::Done);
    assert!(check_computation(Figure::Fig5, &comp).is_ok());
    assert!(check_computation(Figure::Fig6, &comp).is_ok());

    let mut d = deploy(4);
    apply_env(&mut d, Env::Growing);
    let (comp, end) = observed_run(&mut d, Semantics::Optimistic);
    assert_eq!(end, IterStep::Done);
    assert!(check_computation(Figure::Fig6, &comp).is_ok());
}

#[test]
fn churning_env_only_the_weak_figures_survive() {
    let mut d = deploy(5);
    apply_env(&mut d, Env::Churning);
    let (comp, end) = observed_run(&mut d, Semantics::Snapshot);
    assert_eq!(end, IterStep::Done);
    assert!(check_computation(Figure::Fig4, &comp).is_ok());
    assert!(!check_computation(Figure::Fig1, &comp).is_ok());

    let mut d = deploy(6);
    apply_env(&mut d, Env::Churning);
    let (comp, end) = observed_run(&mut d, Semantics::Optimistic);
    assert_eq!(end, IterStep::Done);
    let conf = check_computation(Figure::Fig6, &comp);
    conf.assert_ok();
    // Shrinkage breaks Fig5's constraint for the same trace.
    assert!(!check_computation(Figure::Fig5, &comp).is_ok());
}

#[test]
fn partition_heal_differentiates_failure_handling() {
    // Snapshot (pessimistic): fails during the outage.
    let mut d = deploy(7);
    apply_env(&mut d, Env::PartitionHeal);
    let (comp, end) = observed_run(&mut d, Semantics::Snapshot);
    assert!(matches!(end, IterStep::Failed(_)));
    assert!(check_computation(Figure::Fig3, &comp).is_ok());
    assert!(check_computation(Figure::Fig4, &comp).is_ok());

    // Optimistic: blocks through the outage and finishes after the heal.
    let mut d = deploy(8);
    apply_env(&mut d, Env::PartitionHeal);
    let (comp, end) = observed_run(&mut d, Semantics::Optimistic);
    assert_eq!(end, IterStep::Done);
    check_computation(Figure::Fig6, &comp).assert_ok();
    let run = &comp.runs[0];
    assert_eq!(run.yielded_set().len(), 12, "full availability after heal");
}

#[test]
fn locked_iteration_conforms_with_relaxed_constraint_under_churn() {
    let mut d = deploy(9);
    apply_env(&mut d, Env::Churning);
    let (comp, end) = observed_run(&mut d, Semantics::Locked);
    assert_eq!(end, IterStep::Done);
    // While the lock is held the set cannot change; mutations bounced.
    Checker::new(Figure::Fig3)
        .with_constraint(ConstraintKind::ImmutableDuringRuns)
        .check(&comp)
        .assert_ok();
}

#[test]
fn taxonomy_of_runs_matches_section_4_floors() {
    let mut d = deploy(10);
    apply_env(&mut d, Env::Growing);
    let (comp, _) = observed_run(&mut d, Semantics::GrowOnly);
    let class = classify_run(&comp, &comp.runs[0]);
    assert_eq!(class.currency, Currency::FirstBound);

    let mut d = deploy(11);
    let (comp, _) = observed_run(&mut d, Semantics::Snapshot);
    let class = classify_run(&comp, &comp.runs[0]);
    assert_eq!(class.consistency, Consistency::Strong);
    assert_eq!(class.currency, Currency::FirstVintage);
}
