//! Client-side caching as the paper frames it: "it is reasonable to
//! assume that the iterator does not mutate the set (it might keep a
//! cached version, which is a way to implement a history object)" —
//! and the availability dividend of holding local copies.

use weak_sets::prelude::*;

struct Rig {
    world: StoreWorld,
    set: WeakSet,
    servers: Vec<NodeId>,
}

fn rig(seed: u64, ttl: Option<SimDuration>) -> Rig {
    let mut topo = Topology::new();
    let cn = topo.add_node("client", 0);
    let servers: Vec<NodeId> = (0..3)
        .map(|i| topo.add_node(format!("s{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(cn, SimDuration::from_millis(150));
    let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
    client.create_collection(&mut world, &cref).unwrap();
    let iter_config = IterConfig {
        cache_ttl: ttl,
        ..IterConfig::default()
    };
    let set = WeakSet::new(client, cref).with_config(iter_config);
    for i in 1..=9u64 {
        set.add(
            &mut world,
            ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"x"[..]),
            servers[(i % 3) as usize],
        )
        .unwrap();
    }
    Rig {
        world,
        set,
        servers,
    }
}

fn drain(r: &mut Rig, it: &mut Elements) -> usize {
    let mut n = 0;
    loop {
        match it.next(&mut r.world) {
            IterStep::Yielded(_) => n += 1,
            IterStep::Done => return n,
            other => panic!("{other:?}"),
        }
    }
}

#[test]
fn warm_cache_halves_rerun_rpc_traffic() {
    let mut r = rig(1, Some(SimDuration::from_secs(60)));
    let mut it1 = r.set.elements(Semantics::Snapshot);
    assert_eq!(drain(&mut r, &mut it1), 9);
    let after_first = r.world.metrics().counter("rpc.sent");
    // Second run with the warm cache: only membership reads go out.
    let cache = it1.take_cache().expect("cache configured");
    let mut it2 = r.set.elements(Semantics::Snapshot);
    it2.set_cache(cache);
    assert_eq!(drain(&mut r, &mut it2), 9);
    let second_run_rpcs = r.world.metrics().counter("rpc.sent") - after_first;
    // Only the snapshot membership read: one RPC instead of 1 + 9.
    assert_eq!(second_run_rpcs, 1, "cache hits eliminate object fetches");
}

#[test]
fn cold_rerun_pays_full_price() {
    let mut r = rig(2, None);
    let mut it1 = r.set.elements(Semantics::Snapshot);
    assert_eq!(drain(&mut r, &mut it1), 9);
    let after_first = r.world.metrics().counter("rpc.sent");
    let mut it2 = r.set.elements(Semantics::Snapshot);
    assert!(it2.take_cache().is_none());
    assert_eq!(drain(&mut r, &mut it2), 9);
    let second = r.world.metrics().counter("rpc.sent") - after_first;
    assert_eq!(second, 10); // membership + 9 fetches
}

#[test]
fn cached_copies_survive_a_partition() {
    // After a warm run, the element homes vanish — but the membership
    // home stays up. The cached rerun still yields everything: a local
    // copy is accessible, which is the whole point of hoarding.
    let mut r = rig(3, Some(SimDuration::from_secs(60)));
    let mut it1 = r.set.elements(Semantics::Optimistic);
    assert_eq!(drain(&mut r, &mut it1), 9);
    let cache = it1.take_cache().unwrap();
    // Cut off the two servers that hold elements but not the membership
    // home... elements live on all three (i%3 ∈ {0,1,2}), home=s0.
    let cut: Vec<NodeId> = r.servers[1..].to_vec();
    r.world.topology_mut().partition(&cut);
    let mut it2 = r.set.elements_observed(Semantics::Optimistic);
    it2.set_cache(cache);
    let mut n = 0;
    loop {
        match it2.next(&mut r.world) {
            IterStep::Yielded(_) => n += 1,
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    assert_eq!(n, 9, "all elements served (6 from cache, 3 from s0)");
    // The run conforms: cached copies count as accessible.
    let comp = it2.take_computation(&r.world).unwrap();
    check_computation(Figure::Fig6, &comp).assert_ok();
}

#[test]
fn expired_cache_is_not_used() {
    let mut r = rig(4, Some(SimDuration::from_millis(50)));
    let mut it1 = r.set.elements(Semantics::Snapshot);
    assert_eq!(drain(&mut r, &mut it1), 9);
    let after_first = r.world.metrics().counter("rpc.sent");
    let cache = it1.take_cache().unwrap();
    // Let the TTL lapse.
    r.world.sleep(SimDuration::from_millis(200));
    let mut it2 = r.set.elements(Semantics::Snapshot);
    it2.set_cache(cache);
    assert_eq!(drain(&mut r, &mut it2), 9);
    let second = r.world.metrics().counter("rpc.sent") - after_first;
    assert_eq!(second, 10, "expired entries are refetched");
}

#[test]
fn cache_can_serve_stale_ghost_objects() {
    // The flip side of hoarding (§1: "we probably would not be overly
    // annoyed"): an object updated remotely keeps its old payload in the
    // cache until the TTL lapses. Model item mutation as remove+add of
    // the same id with new content (§3's convention collapses to an
    // overwrite here).
    let mut r = rig(5, Some(SimDuration::from_secs(60)));
    let mut it1 = r.set.elements(Semantics::Snapshot);
    assert_eq!(drain(&mut r, &mut it1), 9);
    let cache = it1.take_cache().unwrap();
    // o1 is updated at its home.
    r.set
        .client()
        .put_object(
            &mut r.world,
            r.servers[1],
            ObjectRecord::new(ObjectId(1), "o1", &b"NEW"[..]),
        )
        .unwrap();
    let mut it2 = r.set.elements(Semantics::Snapshot);
    it2.set_cache(cache);
    let mut saw_stale = false;
    loop {
        match it2.next(&mut r.world) {
            IterStep::Yielded(rec) => {
                if rec.id == ObjectId(1) {
                    saw_stale = rec.payload.as_ref() == b"x";
                }
            }
            IterStep::Done => break,
            other => panic!("{other:?}"),
        }
    }
    assert!(saw_stale, "the cached copy is the old version");
}
