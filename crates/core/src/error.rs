//! The failure exception and iterator step results.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{ObjectRecord, StoreError};

/// The paper's "failure" exception: why an iterator invocation failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Failure {
    /// The collection's membership could not be read (home/replicas
    /// unreachable or no quorum).
    MembershipUnavailable(StoreError),
    /// Every remaining unyielded member is unreachable (Figures 3/4/5's
    /// pessimistic failure branch).
    MembersUnreachable {
        /// How many unyielded members remain.
        remaining: usize,
    },
    /// A required lock or protocol step failed (strong baseline).
    Store(StoreError),
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Failure::MembershipUnavailable(e) => {
                write!(f, "membership unavailable: {e}")
            }
            Failure::MembersUnreachable { remaining } => {
                write!(f, "{remaining} unyielded member(s) unreachable")
            }
            Failure::Store(e) => write!(f, "store operation failed: {e}"),
        }
    }
}

impl Error for Failure {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Failure::MembershipUnavailable(e) | Failure::Store(e) => Some(e),
            Failure::MembersUnreachable { .. } => None,
        }
    }
}

impl From<StoreError> for Failure {
    fn from(e: StoreError) -> Self {
        Failure::Store(e)
    }
}

/// The result of one `elements` iterator invocation.
///
/// Mirrors the paper's `terminates` object: a yield corresponds to
/// `suspends`, [`IterStep::Done`] to `returns`, [`IterStep::Failed`] to
/// `fails`. [`IterStep::Blocked`] is the optimistic semantics' "did not
/// complete yet — resume later".
#[derive(Clone, Debug, PartialEq)]
pub enum IterStep {
    /// An element was retrieved; the iterator suspended.
    Yielded(ObjectRecord),
    /// Normal termination: everything required has been yielded.
    Done,
    /// The failure exception.
    Failed(Failure),
    /// No progress possible right now; call again later (Figure 6 only).
    Blocked,
}

impl IterStep {
    /// The yielded record, if this step yielded.
    pub fn yielded(&self) -> Option<&ObjectRecord> {
        match self {
            IterStep::Yielded(rec) => Some(rec),
            _ => None,
        }
    }

    /// The yielded element id, if this step yielded.
    pub fn elem(&self) -> Option<ObjectId> {
        self.yielded().map(|r| r.id)
    }

    /// True for [`IterStep::Done`] and [`IterStep::Failed`].
    pub fn is_terminal(&self) -> bool {
        matches!(self, IterStep::Done | IterStep::Failed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::net::NetError;

    #[test]
    fn failure_display_and_source() {
        let f = Failure::MembersUnreachable { remaining: 3 };
        assert!(f.to_string().contains("3 unyielded"));
        assert!(f.source().is_none());
        let f = Failure::Store(StoreError::Net(NetError::Timeout));
        assert!(f.source().is_some());
        let f: Failure = StoreError::Locked.into();
        assert!(matches!(f, Failure::Store(StoreError::Locked)));
    }

    #[test]
    fn step_accessors() {
        let rec = ObjectRecord::new(ObjectId(4), "x", &b""[..]);
        let s = IterStep::Yielded(rec.clone());
        assert_eq!(s.yielded(), Some(&rec));
        assert_eq!(s.elem(), Some(ObjectId(4)));
        assert!(!s.is_terminal());
        assert!(IterStep::Done.is_terminal());
        assert!(IterStep::Failed(Failure::MembersUnreachable { remaining: 1 }).is_terminal());
        assert!(!IterStep::Blocked.is_terminal());
        assert_eq!(IterStep::Done.elem(), None);
    }
}
