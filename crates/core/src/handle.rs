//! The `WeakSet` handle: the paper's set interface (`create`, `add`,
//! `remove`, `size`, `elements`) bound to a distributed collection.

use crate::conformance::{HistorySource, RunObserver};
use crate::error::{Failure, IterStep};
use crate::iter::grow_only::GrowElements;
use crate::iter::optimistic::OptimisticElements;
use crate::iter::snapshot::SnapshotElements;
use crate::iter::IterConfig;
use crate::semantics::Semantics;
use crate::strong::LockedElements;
use weakset_sim::node::NodeId;
use weakset_spec::prelude::Computation;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// A weak set: a distributed collection plus the client operating on it.
///
/// Mutations (`add`, `remove`) are serialized at the collection's primary;
/// membership queries (`size`, `contains`) read under the configured
/// policy; and [`WeakSet::elements`] opens an iterator at any point of the
/// paper's design space.
#[derive(Clone, Debug)]
pub struct WeakSet {
    client: StoreClient,
    cref: CollectionRef,
    config: IterConfig,
}

impl WeakSet {
    /// Binds a client to an existing collection with default iteration
    /// config.
    pub fn new(client: StoreClient, cref: CollectionRef) -> Self {
        WeakSet {
            client,
            cref,
            config: IterConfig::default(),
        }
    }

    /// Overrides the iteration configuration.
    #[must_use]
    pub fn with_config(mut self, config: IterConfig) -> Self {
        self.config = config;
        self
    }

    /// The collection this set is bound to.
    pub fn cref(&self) -> &CollectionRef {
        &self.cref
    }

    /// The client this set operates through.
    pub fn client(&self) -> &StoreClient {
        &self.client
    }

    /// The iteration configuration.
    pub fn config(&self) -> &IterConfig {
        &self.config
    }

    /// Stores `rec` on `home` and adds it to the set.
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] when the object cannot be stored or the primary
    /// refuses/misses the membership update.
    pub fn add(&self, world: &mut StoreRt, rec: ObjectRecord, home: NodeId) -> Result<(), Failure> {
        let elem = rec.id;
        self.client.put_object(world, home, rec)?;
        self.client
            .add_member(world, &self.cref, MemberEntry { elem, home })?;
        Ok(())
    }

    /// Removes an element from the set (the stored object is left in
    /// place; item mutation is modelled as remove-then-add, per §3).
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] when the primary is unreachable or locked.
    pub fn remove(&self, world: &mut StoreRt, elem: ObjectId) -> Result<(), Failure> {
        self.client.remove_member(world, &self.cref, elem)?;
        Ok(())
    }

    /// `size`: the current membership count under the configured read
    /// policy.
    ///
    /// # Errors
    ///
    /// [`Failure::MembershipUnavailable`] when membership cannot be read.
    pub fn size(&self, world: &mut StoreRt) -> Result<usize, Failure> {
        self.client
            .read_members(world, &self.cref, self.config.read_policy)
            .map(|r| r.entries.len())
            .map_err(Failure::MembershipUnavailable)
    }

    /// Membership test under the configured read policy.
    ///
    /// # Errors
    ///
    /// [`Failure::MembershipUnavailable`] when membership cannot be read.
    pub fn contains(&self, world: &mut StoreRt, elem: ObjectId) -> Result<bool, Failure> {
        self.client
            .read_members(world, &self.cref, self.config.read_policy)
            .map(|r| r.entries.iter().any(|m| m.elem == elem))
            .map_err(Failure::MembershipUnavailable)
    }

    /// Opens an `elements` iterator with the chosen semantics.
    pub fn elements(&self, semantics: Semantics) -> Elements {
        let c = self.client.clone();
        let r = self.cref.clone();
        let cfg = self.config.clone();
        match semantics {
            Semantics::Snapshot => Elements::Snapshot(SnapshotElements::new(c, r, cfg)),
            Semantics::GrowOnly => Elements::GrowOnly(GrowElements::new(c, r, cfg)),
            Semantics::Optimistic => Elements::Optimistic(OptimisticElements::new(c, r, cfg)),
            Semantics::Locked => Elements::Locked(LockedElements::new(c, r, cfg)),
        }
    }

    /// Opens an iterator with a conformance observer already attached.
    pub fn elements_observed(&self, semantics: Semantics) -> Elements {
        let mut it = self.elements(semantics);
        it.observe(RunObserver::new(
            self.cref.id,
            self.cref.home,
            self.client.node(),
        ));
        it
    }

    /// Opens an observed iterator whose observer reads the omniscient
    /// membership history through a custom [`HistorySource`] — required
    /// when the home node's service wraps the store (e.g. the gossip
    /// replica nodes of `weakset-gossip`).
    pub fn elements_observed_via(&self, semantics: Semantics, source: HistorySource) -> Elements {
        let mut it = self.elements(semantics);
        it.observe(
            RunObserver::new(self.cref.id, self.cref.home, self.client.node())
                .with_history_source(source),
        );
        it
    }

    /// Convenience: drives a fresh iterator to its terminal step,
    /// returning everything yielded plus the terminal step.
    pub fn collect(
        &self,
        world: &mut StoreRt,
        semantics: Semantics,
    ) -> (Vec<ObjectRecord>, IterStep) {
        let mut it = self.elements(semantics);
        let mut out = Vec::new();
        let mut blocked = 0usize;
        loop {
            match it.next(world) {
                IterStep::Yielded(rec) => {
                    blocked = 0;
                    out.push(rec);
                }
                IterStep::Blocked => {
                    blocked += 1;
                    if blocked >= 3 {
                        return (out, IterStep::Blocked);
                    }
                    world.sleep(self.config.retry_interval);
                }
                step => return (out, step),
            }
        }
    }
}

/// An open `elements` iterator of any semantics.
#[derive(Debug)]
pub enum Elements {
    /// Snapshot semantics (Figures 1/3/4).
    Snapshot(SnapshotElements),
    /// Grow-only pessimistic semantics (Figure 5).
    GrowOnly(GrowElements),
    /// Optimistic semantics (Figure 6).
    Optimistic(OptimisticElements),
    /// Locked strong baseline.
    Locked(LockedElements),
}

impl Elements {
    /// Which semantics this iterator provides.
    pub fn semantics(&self) -> Semantics {
        match self {
            Elements::Snapshot(_) => Semantics::Snapshot,
            Elements::GrowOnly(_) => Semantics::GrowOnly,
            Elements::Optimistic(_) => Semantics::Optimistic,
            Elements::Locked(_) => Semantics::Locked,
        }
    }

    /// One invocation. Each call records per-figure observability: an
    /// `iter.<fig>.invocation_us` latency sample plus a counter for the
    /// paper's `terminates` outcome it produced
    /// (`yielded`/`returned`/`failed`/`blocked`).
    ///
    /// Each invocation also opens an `iter.<fig>.invocation` causal
    /// span: the first invocation roots the computation's trace, later
    /// invocations parent under that root (or under whatever span is
    /// already open — the sharded fan-out case), so every store read
    /// and RPC the step performs joins one cross-node span tree.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        let started = world.now();
        let fig = self.semantics().figure().key();
        let kind = match fig {
            "fig3" => "iter.fig3.invocation",
            "fig4" => "iter.fig4.invocation",
            "fig5" => "iter.fig5.invocation",
            "fig6" => "iter.fig6.invocation",
            _ => "iter.invocation",
        };
        let span = if world.current_ctx().is_some() {
            world.span_enter(kind, &String::new)
        } else {
            world.span_enter_under(self.trace_root(), kind, &String::new)
        };
        if self.trace_root().is_none() {
            self.set_trace_root(world.current_ctx());
        }
        let step = match self {
            Elements::Snapshot(it) => it.next(world),
            Elements::GrowOnly(it) => it.next(world),
            Elements::Optimistic(it) => it.next(world),
            Elements::Locked(it) => it.next(world),
        };
        world.trace_event("iter.outcome", &|| match &step {
            IterStep::Yielded(rec) => format!("{fig} yielded elem={}", rec.id),
            IterStep::Done => format!("{fig} returned"),
            IterStep::Failed(f) => format!("{fig} failed: {f}"),
            IterStep::Blocked => format!("{fig} blocked"),
        });
        world.span_exit(span);
        let elapsed = world.now().saturating_since(started).as_micros();
        let outcome = match &step {
            IterStep::Yielded(_) => "yielded",
            IterStep::Done => "returned",
            IterStep::Failed(_) => "failed",
            IterStep::Blocked => "blocked",
        };
        let m = world.metrics_mut();
        m.observe(&format!("iter.{fig}.invocation_us"), elapsed);
        m.incr(&format!("iter.{fig}.{outcome}"));
        step
    }

    /// The stored trace-root context (set by the first invocation).
    fn trace_root(&self) -> Option<weakset_sim::metrics::TraceContext> {
        match self {
            Elements::Snapshot(it) => it.trace,
            Elements::GrowOnly(it) => it.trace,
            Elements::Optimistic(it) => it.trace,
            Elements::Locked(it) => it.trace,
        }
    }

    fn set_trace_root(&mut self, ctx: Option<weakset_sim::metrics::TraceContext>) {
        match self {
            Elements::Snapshot(it) => it.trace = ctx,
            Elements::GrowOnly(it) => it.trace = ctx,
            Elements::Optimistic(it) => it.trace = ctx,
            Elements::Locked(it) => it.trace = ctx,
        }
    }

    /// Attaches a conformance observer.
    pub fn observe(&mut self, observer: RunObserver) {
        match self {
            Elements::Snapshot(it) => it.observe(observer),
            Elements::GrowOnly(it) => it.observe(observer),
            Elements::Optimistic(it) => it.observe(observer),
            Elements::Locked(it) => it.observe(observer),
        }
    }

    /// Finishes observation and returns the recorded computation, if an
    /// observer was attached.
    pub fn take_computation(&mut self, world: &StoreRt) -> Option<Computation> {
        match self {
            Elements::Snapshot(it) => it.take_computation(world),
            Elements::GrowOnly(it) => it.take_computation(world),
            Elements::Optimistic(it) => it.take_computation(world),
            Elements::Locked(it) => it.take_computation(world),
        }
    }

    /// Detaches the live observer so another run can record into the same
    /// computation.
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        match self {
            Elements::Snapshot(it) => it.take_observer(),
            Elements::GrowOnly(it) => it.take_observer(),
            Elements::Optimistic(it) => it.take_observer(),
            Elements::Locked(it) => it.take_observer(),
        }
    }

    /// Hands the warm object cache to a subsequent run.
    pub fn take_cache(&mut self) -> Option<weakset_store::cache::ObjectCache> {
        match self {
            Elements::Snapshot(it) => it.take_cache(),
            Elements::GrowOnly(it) => it.take_cache(),
            Elements::Optimistic(it) => it.take_cache(),
            Elements::Locked(it) => it.take_cache(),
        }
    }

    /// Installs a (possibly pre-warmed) object cache.
    pub fn set_cache(&mut self, cache: weakset_store::cache::ObjectCache) {
        match self {
            Elements::Snapshot(it) => it.set_cache(cache),
            Elements::GrowOnly(it) => it.set_cache(cache),
            Elements::Optimistic(it) => it.set_cache(cache),
            Elements::Locked(it) => it.set_cache(cache),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::check_computation;
    use weakset_store::object::CollectionId;
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    fn setup(n: usize) -> (StoreWorld, WeakSet, Vec<NodeId>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(29),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        (w, WeakSet::new(client, cref), servers)
    }

    #[test]
    fn set_interface_round_trip() {
        let (mut w, set, servers) = setup(2);
        assert_eq!(set.size(&mut w).unwrap(), 0);
        set.add(
            &mut w,
            ObjectRecord::new(ObjectId(1), "a", &b"1"[..]),
            servers[0],
        )
        .unwrap();
        set.add(
            &mut w,
            ObjectRecord::new(ObjectId(2), "b", &b"2"[..]),
            servers[1],
        )
        .unwrap();
        assert_eq!(set.size(&mut w).unwrap(), 2);
        assert!(set.contains(&mut w, ObjectId(1)).unwrap());
        set.remove(&mut w, ObjectId(1)).unwrap();
        assert!(!set.contains(&mut w, ObjectId(1)).unwrap());
        assert_eq!(set.size(&mut w).unwrap(), 1);
    }

    #[test]
    fn collect_works_for_every_semantics() {
        let (mut w, set, servers) = setup(3);
        for i in 0..6u64 {
            set.add(
                &mut w,
                ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
                servers[(i % 3) as usize],
            )
            .unwrap();
        }
        for sem in Semantics::ALL {
            let (got, end) = set.collect(&mut w, sem);
            assert_eq!(end, IterStep::Done, "{sem}");
            assert_eq!(got.len(), 6, "{sem}");
        }
    }

    #[test]
    fn observed_iteration_conforms_to_its_figure() {
        let (mut w, set, servers) = setup(2);
        for i in 0..4u64 {
            set.add(
                &mut w,
                ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b"x"[..]),
                servers[(i % 2) as usize],
            )
            .unwrap();
        }
        for sem in Semantics::ALL {
            let mut it = set.elements_observed(sem);
            assert_eq!(it.semantics(), sem);
            loop {
                match it.next(&mut w) {
                    IterStep::Yielded(_) => {}
                    IterStep::Done => break,
                    other => panic!("{sem}: {other:?}"),
                }
            }
            let comp = it.take_computation(&w).expect("observer attached");
            check_computation(sem.figure(), &comp).assert_ok();
        }
    }

    #[test]
    fn add_fails_when_primary_down() {
        let (mut w, set, servers) = setup(1);
        w.topology_mut().crash(servers[0]);
        let r = set.add(
            &mut w,
            ObjectRecord::new(ObjectId(1), "a", &b""[..]),
            servers[0],
        );
        assert!(matches!(r, Err(Failure::Store(_))));
        assert!(matches!(
            set.size(&mut w),
            Err(Failure::MembershipUnavailable(_))
        ));
    }

    #[test]
    fn with_config_applies() {
        let (_w, set, _servers) = setup(1);
        let set = set.with_config(IterConfig {
            block_attempts: 9,
            ..Default::default()
        });
        assert_eq!(set.config().block_attempts, 9);
        assert!(set.cref().replicas.is_empty());
        assert_eq!(set.client().node(), NodeId(0));
    }
}
