//! Dynamic sets: the Unix-API abstraction the paper's authors were
//! building (Steere's thesis system), with Figure 6 semantics plus
//! parallel prefetching.
//!
//! A dynamic set is opened either over an existing collection or by
//! *query* — "finding all files that satisfy a given predicate" — in which
//! case every reachable node is asked to evaluate the predicate locally
//! and the union forms the membership (nodes that cannot be reached are
//! simply skipped: partial results are the point).

use crate::error::IterStep;
use crate::prefetch::{PrefetchConfig, PrefetchEngine, PrefetchStep};
use std::collections::BTreeSet;
use weakset_sim::node::NodeId;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{CollectionRef, Query, ReadPolicy, StoreClient, StoreError, StoreRt};

/// A dynamic set: optimistic iteration with parallel prefetch and partial
/// results.
#[derive(Debug)]
pub struct DynamicSet {
    engine: PrefetchEngine,
    yielded: BTreeSet<ObjectId>,
    pending: Vec<MemberEntry>,
    members_found: usize,
    nodes_skipped: usize,
}

impl DynamicSet {
    /// Opens a dynamic set over a query: every node in `nodes` is asked to
    /// evaluate `query` locally; unreachable nodes are skipped and their
    /// objects are simply absent (partial results).
    pub fn open_query(
        world: &mut StoreRt,
        client: &StoreClient,
        nodes: &[NodeId],
        query: &Query,
        cfg: PrefetchConfig,
    ) -> Self {
        let mut members = Vec::new();
        let mut skipped = 0;
        for &node in nodes {
            match client.query_node(world, node, query) {
                Ok(ids) => {
                    members.extend(ids.into_iter().map(|elem| MemberEntry { elem, home: node }))
                }
                Err(_) => skipped += 1,
            }
        }
        let found = members.len();
        DynamicSet {
            engine: PrefetchEngine::new(world, client.node(), members, cfg),
            yielded: BTreeSet::new(),
            pending: Vec::new(),
            members_found: found,
            nodes_skipped: skipped,
        }
    }

    /// Opens a dynamic set over an explicit member list (e.g. the union
    /// of several directories' memberships gathered by a recursive
    /// traversal).
    pub fn over_members(
        world: &StoreRt,
        client: &StoreClient,
        members: Vec<MemberEntry>,
        cfg: PrefetchConfig,
    ) -> Self {
        let found = members.len();
        DynamicSet {
            engine: PrefetchEngine::new(world, client.node(), members, cfg),
            yielded: BTreeSet::new(),
            pending: Vec::new(),
            members_found: found,
            nodes_skipped: 0,
        }
    }

    /// Opens a dynamic set over an existing collection's current
    /// membership.
    ///
    /// # Errors
    ///
    /// [`StoreError`] when the membership cannot be read under `policy`.
    pub fn open_collection(
        world: &mut StoreRt,
        client: &StoreClient,
        cref: &CollectionRef,
        policy: ReadPolicy,
        cfg: PrefetchConfig,
    ) -> Result<Self, StoreError> {
        let read = client.read_members(world, cref, policy)?;
        let found = read.entries.len();
        Ok(DynamicSet {
            engine: PrefetchEngine::new(world, client.node(), read.entries, cfg),
            yielded: BTreeSet::new(),
            pending: Vec::new(),
            members_found: found,
            nodes_skipped: 0,
        })
    }

    /// How many members the open discovered.
    pub fn members_found(&self) -> usize {
        self.members_found
    }

    /// How many nodes the query skipped as unreachable.
    pub fn nodes_skipped(&self) -> usize {
        self.nodes_skipped
    }

    /// Members that could not be fetched yet (retry with
    /// [`DynamicSet::retry_pending`]).
    pub fn pending(&self) -> &[MemberEntry] {
        &self.pending
    }

    /// Elements yielded so far.
    pub fn yielded(&self) -> &BTreeSet<ObjectId> {
        &self.yielded
    }

    /// Re-queues every pending member (e.g. after a partition heals).
    pub fn retry_pending(&mut self) {
        for e in self.pending.drain(..) {
            self.engine.push(e);
        }
    }

    /// The next available object, unordered, as soon as it arrives.
    ///
    /// Returns [`IterStep::Blocked`] when only unreachable members remain
    /// (call [`DynamicSet::retry_pending`] later), and [`IterStep::Done`]
    /// when every discovered member has been yielded.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        loop {
            match self.engine.next_ready(world) {
                PrefetchStep::Ready(rec) => {
                    if self.yielded.insert(rec.id) {
                        return IterStep::Yielded(rec);
                    }
                    // Duplicate discovery (same object matched twice):
                    // sets have no duplicates; skip.
                }
                PrefetchStep::Unavailable(entry) => {
                    self.pending.push(entry);
                }
                PrefetchStep::Drained => {
                    return if self.pending.is_empty() {
                        IterStep::Done
                    } else {
                        IterStep::Blocked
                    };
                }
            }
        }
    }

    /// Drives the set until it blocks or finishes, collecting what
    /// arrives. Returns the records plus the final step.
    pub fn drain_available(
        &mut self,
        world: &mut StoreRt,
    ) -> (Vec<weakset_store::object::ObjectRecord>, IterStep) {
        let mut out = Vec::new();
        loop {
            match self.next(world) {
                IterStep::Yielded(rec) => out.push(rec),
                step => return (out, step),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::{SimDuration, SimTime};
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::object::ObjectRecord;
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    fn setup(n: usize) -> (StoreWorld, StoreClient, Vec<NodeId>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(37),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(100));
        (w, client, servers)
    }

    fn load_menus(w: &mut StoreWorld, client: &StoreClient, servers: &[NodeId], n_per: usize) {
        let mut id = 1u64;
        for &s in servers {
            for k in 0..n_per {
                let cuisine = if k % 2 == 0 { "chinese" } else { "thai" };
                client
                    .put_object(
                        w,
                        s,
                        ObjectRecord::new(ObjectId(id), format!("menu-{id}"), &b"menu"[..])
                            .with_attr("cuisine", cuisine),
                    )
                    .unwrap();
                id += 1;
            }
        }
    }

    #[test]
    fn query_open_unions_all_nodes() {
        let (mut w, client, servers) = setup(3);
        load_menus(&mut w, &client, &servers, 4);
        let mut ds = DynamicSet::open_query(
            &mut w,
            &client,
            &servers,
            &Query::attr("cuisine", "chinese"),
            PrefetchConfig::default(),
        );
        assert_eq!(ds.members_found(), 6); // 2 per node × 3 nodes
        assert_eq!(ds.nodes_skipped(), 0);
        let (got, end) = ds.drain_available(&mut w);
        assert_eq!(end, IterStep::Done);
        assert_eq!(got.len(), 6);
        assert!(got.iter().all(|r| r.attr("cuisine") == Some("chinese")));
    }

    #[test]
    fn query_open_skips_unreachable_nodes() {
        let (mut w, client, servers) = setup(3);
        load_menus(&mut w, &client, &servers, 2);
        w.topology_mut().partition(&[servers[2]]);
        let mut ds = DynamicSet::open_query(
            &mut w,
            &client,
            &servers,
            &Query::All,
            PrefetchConfig::default(),
        );
        assert_eq!(ds.nodes_skipped(), 1);
        assert_eq!(ds.members_found(), 4);
        let (got, end) = ds.drain_available(&mut w);
        assert_eq!(end, IterStep::Done);
        assert_eq!(got.len(), 4); // partial result, no failure
    }

    #[test]
    fn time_to_first_is_one_rtt_despite_many_members() {
        let (mut w, client, servers) = setup(4);
        load_menus(&mut w, &client, &servers, 8); // 32 objects
        let mut ds = DynamicSet::open_query(
            &mut w,
            &client,
            &servers,
            &Query::All,
            PrefetchConfig {
                window: 32,
                ..Default::default()
            },
        );
        let opened_at = w.now();
        let first = ds.next(&mut w);
        assert!(matches!(first, IterStep::Yielded(_)));
        // One round trip (2 × 5ms) after the open completed, even though
        // 32 objects are being fetched.
        assert_eq!(w.now(), opened_at + SimDuration::from_millis(10));
    }

    #[test]
    fn blocked_then_retry_after_heal() {
        let (mut w, client, servers) = setup(2);
        load_menus(&mut w, &client, &servers, 1);
        let mut ds = DynamicSet::open_query(
            &mut w,
            &client,
            &servers,
            &Query::All,
            PrefetchConfig::default(),
        );
        w.topology_mut().partition(&[servers[1]]);
        let (got, end) = ds.drain_available(&mut w);
        assert_eq!(end, IterStep::Blocked);
        assert_eq!(got.len(), 1);
        assert_eq!(ds.pending().len(), 1);
        w.topology_mut().heal_partition();
        ds.retry_pending();
        let (got2, end2) = ds.drain_available(&mut w);
        assert_eq!(end2, IterStep::Done);
        assert_eq!(got2.len(), 1);
        assert_eq!(ds.yielded().len(), 2);
    }

    #[test]
    fn open_collection_uses_membership() {
        let (mut w, client, servers) = setup(2);
        let cref = CollectionRef::unreplicated(weakset_store::object::CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        for i in 0..3u64 {
            let home = servers[(i % 2) as usize];
            client
                .put_object(
                    &mut w,
                    home,
                    ObjectRecord::new(ObjectId(i + 1), format!("o{i}"), &b""[..]),
                )
                .unwrap();
            client
                .add_member(
                    &mut w,
                    &cref,
                    MemberEntry {
                        elem: ObjectId(i + 1),
                        home,
                    },
                )
                .unwrap();
        }
        let mut ds = DynamicSet::open_collection(
            &mut w,
            &client,
            &cref,
            ReadPolicy::Primary,
            PrefetchConfig::default(),
        )
        .unwrap();
        let (got, end) = ds.drain_available(&mut w);
        assert_eq!(end, IterStep::Done);
        assert_eq!(got.len(), 3);
    }

    #[test]
    fn open_collection_fails_when_membership_unreachable() {
        let (mut w, client, servers) = setup(1);
        let cref = CollectionRef::unreplicated(weakset_store::object::CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        w.topology_mut().crash(servers[0]);
        let r = DynamicSet::open_collection(
            &mut w,
            &client,
            &cref,
            ReadPolicy::Primary,
            PrefetchConfig::default(),
        );
        assert!(r.is_err());
        let _ = SimTime::ZERO; // keep import used
    }
}
