//! The strongly-consistent baseline: read-locked iteration.
//!
//! Section 3.1 observes that the stringent specifications force
//! implementations to lock: "typical implementations would use locks to
//! synchronize access to the set and its elements", and that mobile or
//! disconnected clients "may extend the period a lock is held
//! indefinitely". [`LockedElements`] is that implementation, built so the
//! experiments can measure exactly the costs the paper warns about.

use crate::conformance::{RunObserver, StepEvidence};
use crate::error::{Failure, IterStep};
use crate::iter::{fetch_first_reachable, order_candidates, IterConfig, ObserverSlot};
use std::collections::BTreeSet;
use weakset_spec::prelude::Computation;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// A strongly-consistent `elements` iterator.
///
/// On the first invocation it acquires a read lock on the collection's
/// primary — blocking all membership mutations — then reads the
/// membership; the lock is held until the run terminates, making the set
/// immutable *for the duration of the run* (the relaxed §3.1 constraint).
/// Failures are signalled pessimistically, like Figure 3.
///
/// Call [`LockedElements::next`] to completion, or call
/// [`LockedElements::abort`] to release the lock early; dropping the
/// iterator mid-run leaks the lock (exactly the disconnection hazard §3.1
/// describes — and measurable in the experiments).
#[derive(Debug)]
pub struct LockedElements {
    client: StoreClient,
    cref: CollectionRef,
    config: IterConfig,
    members: Option<Vec<MemberEntry>>,
    version: u64,
    yielded: BTreeSet<ObjectId>,
    terminated: bool,
    lock_held: bool,
    cache: Option<weakset_store::cache::ObjectCache>,
    observer: ObserverSlot,
    /// Causal context of the computation's trace root (the first
    /// invocation's span); later invocations parent under it.
    pub(crate) trace: Option<weakset_sim::metrics::TraceContext>,
}

impl LockedElements {
    /// Creates the iterator; the lock is taken on the first `next`.
    pub fn new(client: StoreClient, cref: CollectionRef, config: IterConfig) -> Self {
        let cache = crate::iter::cache_from(&config);
        LockedElements {
            client,
            cref,
            config,
            members: None,
            version: 0,
            yielded: BTreeSet::new(),
            terminated: false,
            lock_held: false,
            cache,
            observer: ObserverSlot::default(),
            trace: None,
        }
    }

    /// Attaches a conformance observer to this run.
    pub fn observe(&mut self, observer: RunObserver) {
        self.observer.attach(observer);
    }

    /// Finishes observation (if any) and returns the recorded computation.
    pub fn take_computation(&mut self, world: &StoreRt) -> Option<Computation> {
        self.observer.take_computation(world)
    }

    /// Detaches the live observer for hand-off to another run (keeps the
    /// computation growing across runs).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take_observer()
    }

    /// Hands the warm object cache to a subsequent run (the paper's
    /// history-object-as-cache, persisted across uses of the iterator).
    pub fn take_cache(&mut self) -> Option<weakset_store::cache::ObjectCache> {
        self.cache.take()
    }

    /// Installs a (possibly pre-warmed) object cache.
    pub fn set_cache(&mut self, cache: weakset_store::cache::ObjectCache) {
        self.cache = Some(cache);
    }

    /// Whether this run currently holds the read lock.
    pub fn holds_lock(&self) -> bool {
        self.lock_held
    }

    /// Releases the lock and terminates the run without consuming the
    /// remaining elements.
    pub fn abort(&mut self, world: &mut StoreRt) {
        self.release(world);
        self.terminated = true;
    }

    fn release(&mut self, world: &mut StoreRt) {
        if self.lock_held {
            // Best effort: if the primary is unreachable the lock leaks
            // until the run's owner reconnects (§3.1's hazard).
            let _ = self.client.release_read_lock(world, &self.cref);
            self.lock_held = false;
        }
    }

    /// One invocation under the read lock.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        if self.terminated {
            return IterStep::Done;
        }
        self.observer.mark_start(world);
        if self.members.is_none() {
            if let Err(e) = self.client.acquire_read_lock(world, &self.cref) {
                let step = IterStep::Failed(Failure::Store(e));
                self.terminated = true;
                let ev = StepEvidence {
                    membership_unreachable: true,
                    ..Default::default()
                };
                self.observer.record(world, &step, &ev);
                return step;
            }
            self.lock_held = true;
            match self
                .client
                .read_members(world, &self.cref, self.config.read_policy)
            {
                Ok(read) => {
                    self.version = read.version;
                    self.members = Some(read.entries);
                }
                Err(e) => {
                    self.release(world);
                    let step = IterStep::Failed(Failure::MembershipUnavailable(e));
                    self.terminated = true;
                    let ev = StepEvidence {
                        membership_unreachable: true,
                        ..Default::default()
                    };
                    self.observer.record(world, &step, &ev);
                    return step;
                }
            }
        }
        let members = self.members.clone().expect("membership read under lock");
        let mut candidates: Vec<MemberEntry> = members
            .iter()
            .filter(|m| !self.yielded.contains(&m.elem))
            .copied()
            .collect();
        if candidates.is_empty() {
            self.release(world);
            let step = IterStep::Done;
            self.terminated = true;
            self.observer
                .record(world, &step, &StepEvidence::at_version(self.version));
            return step;
        }
        order_candidates(
            world,
            self.client.node(),
            &mut candidates,
            self.config.fetch_order,
        );
        let (found, unreachable) =
            fetch_first_reachable(world, &self.client, &candidates, &mut self.cache);
        match found {
            Some(rec) => {
                self.yielded.insert(rec.id);
                let step = IterStep::Yielded(rec);
                let ev = StepEvidence {
                    members_version: Some(self.version),
                    confirmed_reachable: step.elem().into_iter().collect(),
                    confirmed_unreachable: unreachable,
                    membership_unreachable: false,
                };
                self.observer.record(world, &step, &ev);
                step
            }
            None => {
                self.release(world);
                let step = IterStep::Failed(Failure::MembersUnreachable {
                    remaining: candidates.len(),
                });
                self.terminated = true;
                let ev = StepEvidence {
                    members_version: Some(self.version),
                    confirmed_unreachable: unreachable,
                    ..Default::default()
                };
                self.observer.record(world, &step, &ev);
                step
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::{Checker, Figure};
    use weakset_spec::constraint::ConstraintKind;
    use weakset_store::object::{CollectionId, ObjectRecord};
    use weakset_store::prelude::StoreWorld;
    use weakset_store::prelude::{StoreError, StoreServer};

    fn setup(
        n: usize,
    ) -> (
        StoreWorld,
        StoreClient,
        CollectionRef,
        Vec<weakset_sim::node::NodeId>,
    ) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(23),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        (w, client, cref, servers)
    }

    fn add(
        w: &mut StoreWorld,
        client: &StoreClient,
        cref: &CollectionRef,
        id: u64,
        home: weakset_sim::node::NodeId,
    ) {
        client
            .put_object(
                w,
                home,
                ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
            )
            .unwrap();
        client
            .add_member(
                w,
                cref,
                MemberEntry {
                    elem: ObjectId(id),
                    home,
                },
            )
            .unwrap();
    }

    #[test]
    fn iterates_under_lock_and_releases() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[0]);
        let mut it = LockedElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        assert!(it.holds_lock());
        // A writer is refused while the run is live.
        let writer = StoreClient::new(client.node(), SimDuration::from_millis(50));
        assert_eq!(
            writer.add_member(
                &mut w,
                &cref,
                MemberEntry {
                    elem: ObjectId(9),
                    home: servers[0]
                }
            ),
            Err(StoreError::Locked)
        );
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        assert_eq!(it.next(&mut w), IterStep::Done);
        assert!(!it.holds_lock());
        // Writer succeeds after release.
        assert!(writer
            .add_member(
                &mut w,
                &cref,
                MemberEntry {
                    elem: ObjectId(9),
                    home: servers[0]
                }
            )
            .is_ok());
        // The run conforms to Figure 3 with the relaxed per-run constraint
        // (mutations happened after the run ended).
        let comp = it.take_computation(&w).unwrap();
        Checker::new(Figure::Fig3)
            .with_constraint(ConstraintKind::ImmutableDuringRuns)
            .check(&comp)
            .assert_ok();
    }

    #[test]
    fn lock_failure_fails_run() {
        let (mut w, client, cref, servers) = setup(1);
        w.topology_mut().crash(servers[0]);
        let mut it = LockedElements::new(client, cref, IterConfig::default());
        assert!(matches!(
            it.next(&mut w),
            IterStep::Failed(Failure::Store(_))
        ));
        assert!(!it.holds_lock());
    }

    #[test]
    fn abort_releases_early() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[0]);
        let mut it = LockedElements::new(client.clone(), cref.clone(), IterConfig::default());
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        it.abort(&mut w);
        assert!(!it.holds_lock());
        assert_eq!(it.next(&mut w), IterStep::Done);
        let writer = StoreClient::new(client.node(), SimDuration::from_millis(50));
        assert!(writer
            .add_member(
                &mut w,
                &cref,
                MemberEntry {
                    elem: ObjectId(9),
                    home: servers[0]
                }
            )
            .is_ok());
    }

    #[test]
    fn disconnection_leaks_lock_and_stalls_writers() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = LockedElements::new(client.clone(), cref.clone(), IterConfig::default());
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        // Element 2's node vanishes: the run fails... and releases. To
        // model a *client* disconnection leaking the lock, partition the
        // client right before release: the release RPC fails silently.
        w.topology_mut().partition(&[client.node()]);
        let step = it.next(&mut w);
        assert!(matches!(step, IterStep::Failed(_)));
        assert!(!it.holds_lock()); // client *thinks* it released
        w.topology_mut().heal_partition();
        // But the primary never heard the release: writers still stall.
        let writer = StoreClient::new(servers[1], SimDuration::from_millis(50));
        assert_eq!(
            writer.add_member(
                &mut w,
                &cref,
                MemberEntry {
                    elem: ObjectId(9),
                    home: servers[0]
                }
            ),
            Err(StoreError::Locked)
        );
    }
}
