//! Builder for configuring and creating weak sets.

use crate::error::Failure;
use crate::handle::WeakSet;
use crate::iter::{FetchOrder, IterConfig};
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_store::object::CollectionId;
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreRt};

/// Configures a [`WeakSet`]: where the collection lives, who operates on
/// it, and how iteration behaves.
///
/// ```no_run
/// # use weakset::builder::WeakSetBuilder;
/// # use weakset_store::prelude::*;
/// # use weakset_sim::prelude::*;
/// # fn demo(world: &mut StoreRt, client_node: NodeId, home: NodeId, replica: NodeId)
/// #     -> Result<(), weakset::error::Failure> {
/// let set = WeakSetBuilder::new(CollectionId(1), home)
///     .client_node(client_node)
///     .replica(replica)
///     .read_policy(ReadPolicy::Quorum)
///     .timeout(SimDuration::from_millis(200))
///     .create(world)?;
/// # Ok(())
/// # }
/// ```
#[derive(Clone, Debug)]
pub struct WeakSetBuilder {
    id: CollectionId,
    home: NodeId,
    replicas: Vec<NodeId>,
    client_node: Option<NodeId>,
    timeout: SimDuration,
    config: IterConfig,
}

impl WeakSetBuilder {
    /// Starts a builder for a collection with the given primary.
    pub fn new(id: CollectionId, home: NodeId) -> Self {
        WeakSetBuilder {
            id,
            home,
            replicas: Vec::new(),
            client_node: None,
            timeout: SimDuration::from_millis(100),
            config: IterConfig::default(),
        }
    }

    /// Adds a secondary replica of the membership list.
    #[must_use]
    pub fn replica(mut self, node: NodeId) -> Self {
        self.replicas.push(node);
        self
    }

    /// Sets the node the client runs on (defaults to the home node).
    #[must_use]
    pub fn client_node(mut self, node: NodeId) -> Self {
        self.client_node = Some(node);
        self
    }

    /// Sets the client's RPC timeout.
    #[must_use]
    pub fn timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Sets the membership read policy.
    #[must_use]
    pub fn read_policy(mut self, policy: ReadPolicy) -> Self {
        self.config.read_policy = policy;
        self
    }

    /// Sets the fetch ordering.
    #[must_use]
    pub fn fetch_order(mut self, order: FetchOrder) -> Self {
        self.config.fetch_order = order;
        self
    }

    /// Sets the optimistic iterator's retry budget and interval.
    #[must_use]
    pub fn blocking(mut self, attempts: usize, interval: SimDuration) -> Self {
        self.config.block_attempts = attempts;
        self.config.retry_interval = interval;
        self
    }

    /// Makes grow-only iterations hold a §3.3 grow guard: concurrent
    /// removals are deferred until the run ends.
    #[must_use]
    pub fn guard_growth(mut self) -> Self {
        self.config.guard_growth = true;
        self
    }

    /// The collection reference this builder describes.
    pub fn collection_ref(&self) -> CollectionRef {
        CollectionRef {
            id: self.id,
            home: self.home,
            replicas: self.replicas.clone(),
        }
    }

    /// Creates the collection on its home and replicas, returning the
    /// bound set.
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] when any replica cannot be created.
    pub fn create(self, world: &mut StoreRt) -> Result<WeakSet, Failure> {
        let cref = self.collection_ref();
        let client = StoreClient::new(self.client_node.unwrap_or(self.home), self.timeout);
        client.create_collection(world, &cref)?;
        Ok(WeakSet::new(client, cref).with_config(self.config))
    }

    /// Binds to an *existing* collection without creating anything.
    pub fn attach(self) -> WeakSet {
        let cref = self.collection_ref();
        let client = StoreClient::new(self.client_node.unwrap_or(self.home), self.timeout);
        WeakSet::new(client, cref).with_config(self.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    #[test]
    fn builds_and_creates() {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let home = t.add_node("home", 1);
        let rep = t.add_node("rep", 2);
        let mut w = StoreWorld::new(WorldConfig::seeded(1), t, LatencyModel::default());
        w.install_service(home, Box::new(StoreServer::new()));
        w.install_service(rep, Box::new(StoreServer::new()));
        let set = WeakSetBuilder::new(CollectionId(5), home)
            .client_node(cn)
            .replica(rep)
            .read_policy(ReadPolicy::Quorum)
            .fetch_order(FetchOrder::IdOrder)
            .blocking(7, SimDuration::from_millis(5))
            .timeout(SimDuration::from_millis(75))
            .create(&mut w)
            .unwrap();
        assert_eq!(set.cref().id, CollectionId(5));
        assert_eq!(set.cref().replicas, vec![rep]);
        assert_eq!(set.client().node(), cn);
        assert_eq!(set.client().timeout(), SimDuration::from_millis(75));
        assert_eq!(set.config().block_attempts, 7);
        assert_eq!(set.config().read_policy, ReadPolicy::Quorum);
        assert_eq!(set.config().fetch_order, FetchOrder::IdOrder);
    }

    #[test]
    fn attach_does_not_touch_world() {
        let set = WeakSetBuilder::new(CollectionId(9), NodeId(3)).attach();
        assert_eq!(set.cref().home, NodeId(3));
        assert_eq!(set.client().node(), NodeId(3)); // defaults to home
    }

    #[test]
    fn create_fails_against_missing_service() {
        let mut t = Topology::new();
        let home = t.add_node("home", 0);
        let mut w = StoreWorld::new(WorldConfig::seeded(1), t, LatencyModel::default());
        // No service installed: CreateCollection times out.
        let r = WeakSetBuilder::new(CollectionId(1), home)
            .timeout(SimDuration::from_millis(10))
            .create(&mut w);
        assert!(r.is_err());
    }
}
