//! # weakset
//!
//! Weak sets and dynamic sets — a full implementation of the design space
//! in Wing & Steere, *Specifying Weak Sets* (ICDCS 1995), over a simulated
//! wide-area object repository.
//!
//! A *weak set* is a set abstraction for wide-area systems (the Web, a
//! distributed file system) where strong consistency is neither expected
//! nor affordable: membership is determined *during* the query, order does
//! not matter, elements may appear or vanish concurrently, and some
//! members may be unreachable because of node or network failures.
//!
//! ## The design space
//!
//! The paper specifies four semantics for the `elements` iterator; this
//! crate implements all of them plus the strongly-consistent baseline the
//! paper argues against ([`semantics::Semantics`]):
//!
//! | Semantics | Figure | Membership consulted | Failure handling |
//! |---|---|---|---|
//! | [`strong::LockedElements`] | 3 (+§3.1 lock discussion) | locked snapshot | fail |
//! | [`iter::snapshot::SnapshotElements`] | 1/3/4 | first-invocation snapshot | fail |
//! | [`iter::grow_only::GrowElements`] | 5 | current, every invocation | fail fast |
//! | [`iter::optimistic::OptimisticElements`] | 6 | current, every invocation | block & retry |
//!
//! Every iterator can carry a [`conformance::RunObserver`] that records
//! the run as a `weakset-spec` computation, machine-checked against the
//! corresponding figure.
//!
//! [`dynamic_set::DynamicSet`] is the paper's target system: Figure 6
//! semantics plus parallel prefetching ([`prefetch::PrefetchEngine`]),
//! closest-first fetching, and partial results under failures.
//!
//! ## Quickstart
//!
//! ```
//! use weakset_sim::prelude::*;
//! use weakset_store::prelude::*;
//! use weakset::prelude::*;
//!
//! // A 3-node world: one client, two servers.
//! let mut topo = Topology::new();
//! let me = topo.add_node("laptop", 0);
//! let s1 = topo.add_node("server-1", 1);
//! let s2 = topo.add_node("server-2", 2);
//! let mut world = StoreWorld::new(WorldConfig::seeded(42), topo, LatencyModel::default());
//! world.install_service(s1, Box::new(StoreServer::new()));
//! world.install_service(s2, Box::new(StoreServer::new()));
//!
//! // A weak set whose membership list lives on s1.
//! let set = WeakSetBuilder::new(CollectionId(1), s1).client_node(me).create(&mut world)?;
//! set.add(&mut world, ObjectRecord::new(ObjectId(1), "menu-1", &b"dim sum"[..]), s1)?;
//! set.add(&mut world, ObjectRecord::new(ObjectId(2), "menu-2", &b"noodles"[..]), s2)?;
//!
//! // Iterate optimistically (Figure 6).
//! let mut it = set.elements(Semantics::Optimistic);
//! let mut names = Vec::new();
//! loop {
//!     match it.next(&mut world) {
//!         IterStep::Yielded(rec) => names.push(rec.name),
//!         IterStep::Done => break,
//!         other => panic!("unexpected: {other:?}"),
//!     }
//! }
//! names.sort();
//! assert_eq!(names, ["menu-1", "menu-2"]);
//! # Ok::<(), weakset::error::Failure>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builder;
pub mod conformance;
pub mod dynamic_set;
pub mod error;
pub mod handle;
pub mod iter;
pub mod prefetch;
pub mod semantics;
pub mod shard;
pub mod strong;

/// One-stop imports for weak-set users.
pub mod prelude {
    pub use crate::builder::WeakSetBuilder;
    pub use crate::conformance::{HistorySource, RunObserver, StepEvidence};
    pub use crate::dynamic_set::DynamicSet;
    pub use crate::error::{Failure, IterStep};
    pub use crate::handle::{Elements, WeakSet};
    pub use crate::iter::{FetchOrder, IterConfig};
    pub use crate::prefetch::{PrefetchConfig, PrefetchEngine, PrefetchStep};
    pub use crate::semantics::Semantics;
    pub use crate::shard::{
        shard_collection_id, ShardGroup, ShardRouter, ShardedElements, ShardedWeakSet,
    };
    pub use crate::strong::LockedElements;
}
