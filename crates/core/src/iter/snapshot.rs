//! Snapshot semantics (Figures 1/3/4): iterate the membership as it was at
//! the first invocation.

use super::{fetch_first_reachable, order_candidates, IterConfig, ObserverSlot};
use crate::conformance::{RunObserver, StepEvidence};
use crate::error::{Failure, IterStep};
use std::collections::BTreeSet;
use weakset_spec::prelude::Computation;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// The snapshot `elements` iterator.
///
/// The membership list is read once — atomically, at the primary — on the
/// first invocation; the run then drains that snapshot. Additions after
/// the first invocation are missed and removals may still be yielded
/// ("loss of mutations", Figure 4). Failures are handled pessimistically:
/// when every unyielded snapshot member is unreachable the iterator
/// signals failure.
#[derive(Debug)]
pub struct SnapshotElements {
    client: StoreClient,
    cref: CollectionRef,
    config: IterConfig,
    snapshot: Option<(u64, Vec<MemberEntry>)>,
    yielded: BTreeSet<ObjectId>,
    terminated: bool,
    cache: Option<weakset_store::cache::ObjectCache>,
    observer: ObserverSlot,
    /// Causal context of the computation's trace root (the first
    /// invocation's span); later invocations parent under it.
    pub(crate) trace: Option<weakset_sim::metrics::TraceContext>,
}

impl SnapshotElements {
    /// Creates the iterator; nothing is read until the first `next`.
    pub fn new(client: StoreClient, cref: CollectionRef, config: IterConfig) -> Self {
        let cache = super::cache_from(&config);
        SnapshotElements {
            client,
            cref,
            config,
            snapshot: None,
            yielded: BTreeSet::new(),
            terminated: false,
            cache,
            observer: ObserverSlot::default(),
            trace: None,
        }
    }

    /// Attaches a conformance observer to this run.
    pub fn observe(&mut self, observer: RunObserver) {
        self.observer.attach(observer);
    }

    /// Finishes observation (if any) and returns the recorded computation.
    pub fn take_computation(&mut self, world: &StoreRt) -> Option<Computation> {
        self.observer.take_computation(world)
    }

    /// Detaches the live observer for hand-off to another run (keeps the
    /// computation growing across runs).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take_observer()
    }

    /// Hands the warm object cache to a subsequent run (the paper's
    /// history-object-as-cache, persisted across uses of the iterator).
    pub fn take_cache(&mut self) -> Option<weakset_store::cache::ObjectCache> {
        self.cache.take()
    }

    /// Installs a (possibly pre-warmed) object cache.
    pub fn set_cache(&mut self, cache: weakset_store::cache::ObjectCache) {
        self.cache = Some(cache);
    }

    /// Elements yielded so far.
    pub fn yielded(&self) -> &BTreeSet<ObjectId> {
        &self.yielded
    }

    /// One invocation: yield an unyielded snapshot member, terminate, or
    /// fail. Calling again after termination returns [`IterStep::Done`].
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        if self.terminated {
            return IterStep::Done;
        }
        self.observer.mark_start(world);
        // First invocation: take the atomic snapshot.
        if self.snapshot.is_none() {
            match self
                .client
                .read_members(world, &self.cref, self.config.read_policy)
            {
                Ok(read) => self.snapshot = Some((read.version, read.entries)),
                Err(e) => {
                    let step = IterStep::Failed(Failure::MembershipUnavailable(e));
                    self.terminated = true;
                    let ev = StepEvidence {
                        membership_unreachable: true,
                        ..Default::default()
                    };
                    self.observer.record(world, &step, &ev);
                    return step;
                }
            }
        }
        let (version, members) = self.snapshot.clone().expect("snapshot just taken");
        let mut candidates: Vec<MemberEntry> = members
            .iter()
            .filter(|m| !self.yielded.contains(&m.elem))
            .copied()
            .collect();
        if candidates.is_empty() {
            let step = IterStep::Done;
            self.terminated = true;
            self.observer
                .record(world, &step, &StepEvidence::at_version(version));
            return step;
        }
        order_candidates(
            world,
            self.client.node(),
            &mut candidates,
            self.config.fetch_order,
        );
        let (found, unreachable) =
            fetch_first_reachable(world, &self.client, &candidates, &mut self.cache);
        match found {
            Some(rec) => {
                self.yielded.insert(rec.id);
                let step = IterStep::Yielded(rec);
                let ev = StepEvidence {
                    members_version: Some(version),
                    confirmed_reachable: step.elem().into_iter().collect(),
                    confirmed_unreachable: unreachable,
                    membership_unreachable: false,
                };
                self.observer.record(world, &step, &ev);
                step
            }
            None => {
                let step = IterStep::Failed(Failure::MembersUnreachable {
                    remaining: candidates.len(),
                });
                self.terminated = true;
                let ev = StepEvidence {
                    members_version: Some(version),
                    confirmed_unreachable: unreachable,
                    ..Default::default()
                };
                self.observer.record(world, &step, &ev);
                step
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::RunObserver;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::{check_computation, Figure};
    use weakset_store::object::{CollectionId, ObjectRecord};
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    fn setup(
        n_servers: usize,
    ) -> (
        StoreWorld,
        StoreClient,
        CollectionRef,
        Vec<weakset_sim::node::NodeId>,
    ) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n_servers);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(11),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        (w, client, cref, servers)
    }

    fn add(
        w: &mut StoreWorld,
        client: &StoreClient,
        cref: &CollectionRef,
        id: u64,
        home: weakset_sim::node::NodeId,
    ) {
        client
            .put_object(
                w,
                home,
                ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
            )
            .unwrap();
        client
            .add_member(
                w,
                cref,
                MemberEntry {
                    elem: ObjectId(id),
                    home,
                },
            )
            .unwrap();
    }

    #[test]
    fn drains_the_set_and_returns() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = SnapshotElements::new(client, cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, it.client.node()));
        let mut got = Vec::new();
        loop {
            match it.next(&mut w) {
                IterStep::Yielded(rec) => got.push(rec.id.0),
                IterStep::Done => break,
                other => panic!("unexpected step {other:?}"),
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2]);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig1, &comp).assert_ok();
        check_computation(Figure::Fig3, &comp).assert_ok();
        check_computation(Figure::Fig4, &comp).assert_ok();
    }

    #[test]
    fn misses_additions_after_first_invocation() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        let mut it = SnapshotElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        // Concurrent addition: snapshot semantics must not see it.
        add(&mut w, &client, &cref, 2, servers[0]);
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig4, &comp).assert_ok();
        // Figure 5 rejects the early return (2 is a current member).
        assert!(!check_computation(Figure::Fig5, &comp).is_ok());
    }

    #[test]
    fn yields_removed_members_ghosts() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[0]);
        let mut it = SnapshotElements::new(
            client.clone(),
            cref.clone(),
            IterConfig {
                fetch_order: super::super::FetchOrder::IdOrder,
                ..Default::default()
            },
        );
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(1)));
        // Remove membership of 2 (object stays): the snapshot still
        // yields it — a lost deletion.
        client.remove_member(&mut w, &cref, ObjectId(2)).unwrap();
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(2)));
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig4, &comp).assert_ok();
    }

    #[test]
    fn fails_when_remaining_members_unreachable() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = SnapshotElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        w.topology_mut().partition(&[servers[1]]);
        // Wait: elem 2 lives on servers[1] which is now unreachable; the
        // home (servers[0]) still answers membership reads... the snapshot
        // is already taken anyway.
        let step = it.next(&mut w);
        assert!(
            matches!(
                step,
                IterStep::Failed(Failure::MembersUnreachable { remaining: 1 })
            ),
            "{step:?}"
        );
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig3, &comp).assert_ok();
        check_computation(Figure::Fig4, &comp).assert_ok();
    }

    #[test]
    fn membership_unavailable_fails_immediately() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        w.topology_mut().partition(&[servers[0]]);
        let mut it = SnapshotElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        let step = it.next(&mut w);
        assert!(matches!(
            step,
            IterStep::Failed(Failure::MembershipUnavailable(_))
        ));
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig3, &comp).assert_ok();
    }

    #[test]
    fn terminated_iterator_is_fused() {
        let (mut w, client, cref, _servers) = setup(1);
        let mut it = SnapshotElements::new(client, cref, IterConfig::default());
        assert_eq!(it.next(&mut w), IterStep::Done);
        assert_eq!(it.next(&mut w), IterStep::Done);
        assert!(it.yielded().is_empty());
    }

    #[test]
    fn heal_mid_run_lets_it_finish() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = SnapshotElements::new(client.clone(), cref.clone(), IterConfig::default());
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        w.topology_mut().partition(&[servers[1]]);
        w.topology_mut().heal_partition();
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        assert_eq!(it.next(&mut w), IterStep::Done);
    }
}
