//! The `elements` iterator implementations, one per design point.
//!
//! All four share the same skeleton: read the membership list (when their
//! semantics says to), pick an unyielded member, fetch its object from its
//! home node, and yield it. They differ exactly where the paper's figures
//! differ — *which* membership state they consult and *what they do when a
//! member is unreachable*.

pub mod grow_only;
pub mod optimistic;
pub mod snapshot;

use crate::conformance::RunObserver;
use crate::error::IterStep;
use serde::{Deserialize, Serialize};
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_spec::prelude::Outcome;
use weakset_spec::value::ElemId;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{ReadPolicy, StoreClient, StoreRt};

/// The order in which unyielded members are attempted.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum FetchOrder {
    /// Lowest estimated latency first ("fetching closer files first").
    #[default]
    ClosestFirst,
    /// Ascending element id (deterministic, locality-blind baseline).
    IdOrder,
}

/// Tunables shared by every iterator.
#[derive(Clone, Debug, PartialEq)]
pub struct IterConfig {
    /// How membership reads pick replicas.
    pub read_policy: ReadPolicy,
    /// Candidate ordering for fetches.
    pub fetch_order: FetchOrder,
    /// Optimistic semantics: membership-read/fetch rounds attempted before
    /// reporting [`IterStep::Blocked`].
    pub block_attempts: usize,
    /// Optimistic semantics: simulated pause between those rounds.
    pub retry_interval: SimDuration,
    /// Grow-only semantics: hold a §3.3 grow guard for the duration of
    /// the run, so concurrent removals are deferred ("ghosts") and the
    /// grow-only constraint holds even against churning writers.
    pub guard_growth: bool,
    /// Client-side object cache TTL. `Some(ttl)` lets iterators serve
    /// member objects from copies fetched earlier (the paper's "cached
    /// version ... is a way to implement a history object"): reruns get
    /// cheaper and a locally-held copy counts as accessible. `None`
    /// disables caching.
    pub cache_ttl: Option<SimDuration>,
}

impl Default for IterConfig {
    fn default() -> Self {
        IterConfig {
            read_policy: ReadPolicy::Primary,
            fetch_order: FetchOrder::ClosestFirst,
            block_attempts: 3,
            retry_interval: SimDuration::from_millis(20),
            guard_growth: false,
            cache_ttl: None,
        }
    }
}

impl IterConfig {
    /// Defaults with [`ReadPolicy::Leaderless`] membership reads: the
    /// iterator progresses from any reachable replica — intended for
    /// deployments whose replicas converge by `weakset-gossip`
    /// anti-entropy, where the union of reachable replicas is itself a
    /// valid weak-set observation.
    pub fn leaderless() -> Self {
        IterConfig {
            read_policy: ReadPolicy::Leaderless,
            ..IterConfig::default()
        }
    }

    /// Defaults with [`ReadPolicy::CausalSession`] membership reads:
    /// leaderless union reads carrying the client's session token, so
    /// every run sees the session's own writes and never goes back in
    /// time (read-your-writes + monotonic reads). The client must be
    /// built with `StoreClient::with_session`.
    pub fn causal_session() -> Self {
        IterConfig {
            read_policy: ReadPolicy::CausalSession,
            ..IterConfig::default()
        }
    }
}

/// Builds the iterator-local cache an [`IterConfig`] asks for.
pub(crate) fn cache_from(config: &IterConfig) -> Option<weakset_store::cache::ObjectCache> {
    config.cache_ttl.map(weakset_store::cache::ObjectCache::new)
}

/// Orders fetch candidates per the configured [`FetchOrder`].
pub(crate) fn order_candidates(
    world: &StoreRt,
    client_node: NodeId,
    candidates: &mut [MemberEntry],
    order: FetchOrder,
) {
    match order {
        FetchOrder::IdOrder => candidates.sort_by_key(|m| m.elem),
        FetchOrder::ClosestFirst => {
            candidates.sort_by_key(|m| (world.estimate_latency(client_node, m.home), m.elem));
        }
    }
}

/// Tries candidates in order until a fetch succeeds, consulting (and
/// filling) the optional client-side cache. A cache hit counts as a
/// successful access: the client holds a copy, so the element is
/// accessible to it regardless of the network.
///
/// Returns the fetched record (if any) and the list of members proven
/// unreachable along the way.
pub(crate) fn fetch_first_reachable(
    world: &mut StoreRt,
    client: &StoreClient,
    candidates: &[MemberEntry],
    cache: &mut Option<weakset_store::cache::ObjectCache>,
) -> (Option<weakset_store::object::ObjectRecord>, Vec<ObjectId>) {
    let mut unreachable = Vec::new();
    for m in candidates {
        if let Some(c) = cache.as_mut() {
            let now = world.now();
            if let Some(rec) = c.get(now, m.elem) {
                let rec = rec.clone();
                world.metrics_mut().incr("store.cache.hit");
                return (Some(rec), unreachable);
            }
            world.metrics_mut().incr("store.cache.miss");
        }
        match client.fetch_object(world, m.home, m.elem) {
            Ok(rec) => {
                if let Some(c) = cache.as_mut() {
                    c.put(world.now(), rec.clone());
                }
                return (Some(rec), unreachable);
            }
            Err(_) => {
                // Attributed to the current invocation span, so a
                // failure explanation can name the member and its home.
                world.trace_event("iter.fetch.unreachable", &|| {
                    format!("elem={} home={}", m.elem, m.home)
                });
                unreachable.push(m.elem);
            }
        }
    }
    (None, unreachable)
}

/// Converts an [`IterStep`] into the spec-level [`Outcome`].
pub(crate) fn outcome_of(step: &IterStep) -> Outcome {
    match step {
        IterStep::Yielded(rec) => Outcome::Yielded(ElemId(rec.id.0)),
        IterStep::Done => Outcome::Returned,
        IterStep::Failed(_) => Outcome::Failed,
        IterStep::Blocked => Outcome::Blocked,
    }
}

/// Shared observer plumbing for iterator implementations.
#[derive(Debug, Default)]
pub(crate) struct ObserverSlot {
    observer: Option<RunObserver>,
    computation: Option<weakset_spec::prelude::Computation>,
}

impl ObserverSlot {
    pub fn attach(&mut self, observer: RunObserver) {
        self.observer = Some(observer);
    }

    /// Marks the start of an invocation (see
    /// [`RunObserver::mark_invocation_start`]).
    pub fn mark_start(&mut self, world: &StoreRt) {
        if let Some(obs) = &mut self.observer {
            obs.mark_invocation_start(world);
        }
    }

    pub fn record(
        &mut self,
        world: &StoreRt,
        step: &IterStep,
        evidence: &crate::conformance::StepEvidence,
    ) {
        if let Some(obs) = &mut self.observer {
            obs.record_step(world, outcome_of(step), evidence);
        }
    }

    /// Finishes observation and returns the recorded computation.
    pub fn take_computation(
        &mut self,
        world: &StoreRt,
    ) -> Option<weakset_spec::prelude::Computation> {
        if let Some(obs) = self.observer.take() {
            self.computation = Some(obs.finish(world));
        }
        self.computation.take()
    }

    /// Detaches the live observer so a *subsequent* iterator run can keep
    /// recording into the same computation (multi-run checking).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::prelude::StoreWorld;

    #[test]
    fn closest_first_orders_by_estimated_latency() {
        let mut t = Topology::new();
        let client = t.add_node("c", 0);
        let near = t.add_node("near", 1);
        let far = t.add_node("far", 9);
        let w = StoreWorld::new(
            WorldConfig::seeded(0),
            t,
            LatencyModel::SiteDistance {
                base: SimDuration::from_millis(1),
                per_hop: SimDuration::from_millis(5),
            },
        );
        let mut cands = vec![
            MemberEntry {
                elem: ObjectId(1),
                home: far,
            },
            MemberEntry {
                elem: ObjectId(2),
                home: near,
            },
        ];
        order_candidates(&w, client, &mut cands, FetchOrder::ClosestFirst);
        assert_eq!(cands[0].home, near);
        order_candidates(&w, client, &mut cands, FetchOrder::IdOrder);
        assert_eq!(cands[0].elem, ObjectId(1));
    }

    #[test]
    fn default_config_is_sensible() {
        let c = IterConfig::default();
        assert_eq!(c.read_policy, ReadPolicy::Primary);
        assert_eq!(c.fetch_order, FetchOrder::ClosestFirst);
        assert!(c.block_attempts >= 1);
    }

    #[test]
    fn outcome_mapping() {
        assert_eq!(outcome_of(&IterStep::Done), Outcome::Returned);
        assert_eq!(outcome_of(&IterStep::Blocked), Outcome::Blocked);
        assert_eq!(
            outcome_of(&IterStep::Failed(
                crate::error::Failure::MembersUnreachable { remaining: 1 }
            )),
            Outcome::Failed
        );
    }
}
