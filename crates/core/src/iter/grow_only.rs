//! Growing-only semantics (Figure 5): every invocation consults the
//! *current* membership; failures are handled pessimistically.

use super::{fetch_first_reachable, order_candidates, IterConfig, ObserverSlot};
use crate::conformance::{RunObserver, StepEvidence};
use crate::error::{Failure, IterStep};
use std::collections::BTreeSet;
use weakset_spec::prelude::Computation;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// The grow-only `elements` iterator.
///
/// Each invocation re-reads the membership, so additions made while
/// iterating are picked up (the paper notes the set may grow faster than
/// the iterator drains it, so termination is not guaranteed). The first
/// unreachable situation — membership unreadable, or every unyielded
/// member unreachable — fails the run immediately.
///
/// The grow-only *constraint* is the environment's obligation, not the
/// iterator's: run this iterator against a set that shrinks and the
/// conformance checker will flag the constraint, not the iterator.
#[derive(Debug)]
pub struct GrowElements {
    client: StoreClient,
    cref: CollectionRef,
    config: IterConfig,
    yielded: BTreeSet<ObjectId>,
    terminated: bool,
    guard_held: bool,
    cache: Option<weakset_store::cache::ObjectCache>,
    observer: ObserverSlot,
    /// Causal context of the computation's trace root (the first
    /// invocation's span); later invocations parent under it.
    pub(crate) trace: Option<weakset_sim::metrics::TraceContext>,
}

impl GrowElements {
    /// Creates the iterator; nothing is read until the first `next`.
    pub fn new(client: StoreClient, cref: CollectionRef, config: IterConfig) -> Self {
        let cache = super::cache_from(&config);
        GrowElements {
            client,
            cref,
            config,
            yielded: BTreeSet::new(),
            terminated: false,
            guard_held: false,
            cache,
            observer: ObserverSlot::default(),
            trace: None,
        }
    }

    /// Whether this run currently holds the §3.3 grow guard.
    pub fn holds_guard(&self) -> bool {
        self.guard_held
    }

    fn release_guard(&mut self, world: &mut StoreRt) {
        if self.guard_held {
            // Best effort: an unreachable primary leaks the guard until
            // the client reconnects, like §3.1's lock hazard.
            let _ = self.client.release_grow_guard(world, &self.cref);
            self.guard_held = false;
        }
    }

    /// Attaches a conformance observer to this run.
    pub fn observe(&mut self, observer: RunObserver) {
        self.observer.attach(observer);
    }

    /// Finishes observation (if any) and returns the recorded computation.
    pub fn take_computation(&mut self, world: &StoreRt) -> Option<Computation> {
        self.observer.take_computation(world)
    }

    /// Detaches the live observer for hand-off to another run (keeps the
    /// computation growing across runs).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take_observer()
    }

    /// Hands the warm object cache to a subsequent run (the paper's
    /// history-object-as-cache, persisted across uses of the iterator).
    pub fn take_cache(&mut self) -> Option<weakset_store::cache::ObjectCache> {
        self.cache.take()
    }

    /// Installs a (possibly pre-warmed) object cache.
    pub fn set_cache(&mut self, cache: weakset_store::cache::ObjectCache) {
        self.cache = Some(cache);
    }

    /// Elements yielded so far.
    pub fn yielded(&self) -> &BTreeSet<ObjectId> {
        &self.yielded
    }

    /// One invocation against the current membership.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        if self.terminated {
            return IterStep::Done;
        }
        self.observer.mark_start(world);
        if self.config.guard_growth && !self.guard_held {
            match self.client.acquire_grow_guard(world, &self.cref) {
                Ok(()) => self.guard_held = true,
                Err(e) => {
                    let step = IterStep::Failed(Failure::Store(e));
                    self.terminated = true;
                    let ev = StepEvidence {
                        membership_unreachable: true,
                        ..Default::default()
                    };
                    self.observer.record(world, &step, &ev);
                    return step;
                }
            }
        }
        let read = match self
            .client
            .read_members(world, &self.cref, self.config.read_policy)
        {
            Ok(read) => read,
            Err(e) => {
                let step = IterStep::Failed(Failure::MembershipUnavailable(e));
                self.terminated = true;
                self.release_guard(world);
                let ev = StepEvidence {
                    membership_unreachable: true,
                    ..Default::default()
                };
                self.observer.record(world, &step, &ev);
                return step;
            }
        };
        let mut candidates: Vec<MemberEntry> = read
            .entries
            .iter()
            .filter(|m| !self.yielded.contains(&m.elem))
            .copied()
            .collect();
        if candidates.is_empty() {
            let step = IterStep::Done;
            self.terminated = true;
            self.release_guard(world);
            self.observer
                .record(world, &step, &StepEvidence::at_version(read.version));
            return step;
        }
        order_candidates(
            world,
            self.client.node(),
            &mut candidates,
            self.config.fetch_order,
        );
        let (found, unreachable) =
            fetch_first_reachable(world, &self.client, &candidates, &mut self.cache);
        match found {
            Some(rec) => {
                self.yielded.insert(rec.id);
                let step = IterStep::Yielded(rec);
                let ev = StepEvidence {
                    members_version: Some(read.version),
                    confirmed_reachable: step.elem().into_iter().collect(),
                    confirmed_unreachable: unreachable,
                    membership_unreachable: false,
                };
                self.observer.record(world, &step, &ev);
                step
            }
            None => {
                let step = IterStep::Failed(Failure::MembersUnreachable {
                    remaining: candidates.len(),
                });
                self.terminated = true;
                self.release_guard(world);
                let ev = StepEvidence {
                    members_version: Some(read.version),
                    confirmed_unreachable: unreachable,
                    ..Default::default()
                };
                self.observer.record(world, &step, &ev);
                step
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::RunObserver;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::{check_computation, Figure};
    use weakset_store::object::{CollectionId, ObjectRecord};
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    fn setup(
        n: usize,
    ) -> (
        StoreWorld,
        StoreClient,
        CollectionRef,
        Vec<weakset_sim::node::NodeId>,
    ) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(13),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        (w, client, cref, servers)
    }

    fn add(
        w: &mut StoreWorld,
        client: &StoreClient,
        cref: &CollectionRef,
        id: u64,
        home: weakset_sim::node::NodeId,
    ) {
        client
            .put_object(
                w,
                home,
                ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
            )
            .unwrap();
        client
            .add_member(
                w,
                cref,
                MemberEntry {
                    elem: ObjectId(id),
                    home,
                },
            )
            .unwrap();
    }

    #[test]
    fn picks_up_concurrent_growth() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(1)));
        // Growth between invocations — unlike the snapshot iterator, this
        // one must yield the new member.
        add(&mut w, &client, &cref, 2, servers[0]);
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(2)));
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig5, &comp).assert_ok();
        check_computation(Figure::Fig6, &comp).assert_ok();
    }

    #[test]
    fn fails_pessimistically_when_member_unreachable() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        w.topology_mut().partition(&[servers[1]]);
        assert!(matches!(
            it.next(&mut w),
            IterStep::Failed(Failure::MembersUnreachable { .. })
        ));
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig5, &comp).assert_ok();
    }

    #[test]
    fn membership_read_failure_fails_run() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        w.topology_mut().crash(servers[0]);
        let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(
            it.next(&mut w),
            IterStep::Failed(Failure::MembershipUnavailable(_))
        ));
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig5, &comp).assert_ok();
    }

    #[test]
    fn producer_outpaces_iterator_without_termination() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::default());
        // Producer adds one element per consumed element for 10 rounds:
        // the iterator keeps yielding, never terminating.
        let mut yields = 0;
        for i in 0..10u64 {
            match it.next(&mut w) {
                IterStep::Yielded(_) => yields += 1,
                other => panic!("unexpected {other:?}"),
            }
            add(&mut w, &client, &cref, i + 2, servers[0]);
        }
        assert_eq!(yields, 10);
        // Once the producer stops, the iterator drains and terminates.
        let mut done = false;
        for _ in 0..5 {
            if it.next(&mut w) == IterStep::Done {
                done = true;
                break;
            }
        }
        assert!(done);
    }

    #[test]
    fn empty_set_returns_immediately() {
        let (mut w, client, cref, _servers) = setup(1);
        let mut it = GrowElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig5, &comp).assert_ok();
    }

    #[test]
    fn shrinking_set_breaks_constraint_not_iterator() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[0]);
        let mut it = GrowElements::new(
            client.clone(),
            cref.clone(),
            IterConfig {
                fetch_order: super::super::FetchOrder::IdOrder,
                ..Default::default()
            },
        );
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(1)));
        // The environment violates grow-only by removing a member.
        client.remove_member(&mut w, &cref, ObjectId(2)).unwrap();
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        let conf = check_computation(Figure::Fig5, &comp);
        assert!(!conf.is_ok());
        assert!(conf
            .violations
            .iter()
            .any(|v| matches!(v, weakset_spec::checker::Violation::Constraint(_))));
        // Under Figure 6 (no constraint) the same run conforms.
        check_computation(Figure::Fig6, &comp).assert_ok();
    }
}
