//! Optimistic semantics (Figure 6): the weakest design point and the one
//! the authors implemented as *dynamic sets*.

use super::{fetch_first_reachable, order_candidates, IterConfig, ObserverSlot};
use crate::conformance::{RunObserver, StepEvidence};
use crate::error::IterStep;
use std::collections::BTreeSet;
use weakset_spec::prelude::Computation;
use weakset_store::collection::MemberEntry;
use weakset_store::object::ObjectId;
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// The optimistic `elements` iterator.
///
/// Each invocation consults the current membership and yields any
/// reachable unyielded member. It **never signals failure**: when nothing
/// unyielded is reachable (or the membership itself cannot be read) it
/// retries — sleeping [`IterConfig::retry_interval`] between rounds, up to
/// [`IterConfig::block_attempts`] rounds — and then reports
/// [`IterStep::Blocked`], "with the expectation that in a later invocation
/// inaccessible objects will become accessible again" (§3). Calling `next`
/// again resumes the wait.
#[derive(Debug)]
pub struct OptimisticElements {
    client: StoreClient,
    cref: CollectionRef,
    config: IterConfig,
    yielded: BTreeSet<ObjectId>,
    terminated: bool,
    cache: Option<weakset_store::cache::ObjectCache>,
    observer: ObserverSlot,
    /// Causal context of the computation's trace root (the first
    /// invocation's span); later invocations parent under it.
    pub(crate) trace: Option<weakset_sim::metrics::TraceContext>,
}

impl OptimisticElements {
    /// Creates the iterator; nothing is read until the first `next`.
    pub fn new(client: StoreClient, cref: CollectionRef, config: IterConfig) -> Self {
        let cache = super::cache_from(&config);
        OptimisticElements {
            client,
            cref,
            config,
            yielded: BTreeSet::new(),
            terminated: false,
            cache,
            observer: ObserverSlot::default(),
            trace: None,
        }
    }

    /// Attaches a conformance observer to this run.
    pub fn observe(&mut self, observer: RunObserver) {
        self.observer.attach(observer);
    }

    /// Finishes observation (if any) and returns the recorded computation.
    pub fn take_computation(&mut self, world: &StoreRt) -> Option<Computation> {
        self.observer.take_computation(world)
    }

    /// Detaches the live observer for hand-off to another run (keeps the
    /// computation growing across runs).
    pub fn take_observer(&mut self) -> Option<RunObserver> {
        self.observer.take_observer()
    }

    /// Hands the warm object cache to a subsequent run (the paper's
    /// history-object-as-cache, persisted across uses of the iterator).
    pub fn take_cache(&mut self) -> Option<weakset_store::cache::ObjectCache> {
        self.cache.take()
    }

    /// Installs a (possibly pre-warmed) object cache.
    pub fn set_cache(&mut self, cache: weakset_store::cache::ObjectCache) {
        self.cache = Some(cache);
    }

    /// Elements yielded so far.
    pub fn yielded(&self) -> &BTreeSet<ObjectId> {
        &self.yielded
    }

    /// One invocation: yield, terminate, or — after exhausting this
    /// invocation's retry budget — block. Never fails.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        if self.terminated {
            return IterStep::Done;
        }
        self.observer.mark_start(world);
        let mut last_version: Option<u64> = None;
        let mut last_unreachable: Vec<ObjectId> = Vec::new();
        let mut saw_membership = false;
        for attempt in 0..self.config.block_attempts.max(1) {
            if attempt > 0 {
                world.sleep(self.config.retry_interval);
            }
            let read = match self
                .client
                .read_members(world, &self.cref, self.config.read_policy)
            {
                Ok(read) => read,
                Err(_) => continue, // optimistic: maybe next round
            };
            saw_membership = true;
            last_version = Some(read.version);
            let mut candidates: Vec<MemberEntry> = read
                .entries
                .iter()
                .filter(|m| !self.yielded.contains(&m.elem))
                .copied()
                .collect();
            if candidates.is_empty() {
                let step = IterStep::Done;
                self.terminated = true;
                self.observer
                    .record(world, &step, &StepEvidence::at_version(read.version));
                return step;
            }
            order_candidates(
                world,
                self.client.node(),
                &mut candidates,
                self.config.fetch_order,
            );
            let (found, unreachable) =
                fetch_first_reachable(world, &self.client, &candidates, &mut self.cache);
            last_unreachable = unreachable;
            if let Some(rec) = found {
                self.yielded.insert(rec.id);
                let step = IterStep::Yielded(rec);
                let ev = StepEvidence {
                    members_version: Some(read.version),
                    confirmed_reachable: step.elem().into_iter().collect(),
                    confirmed_unreachable: last_unreachable.clone(),
                    membership_unreachable: false,
                };
                self.observer.record(world, &step, &ev);
                return step;
            }
        }
        let step = IterStep::Blocked;
        let ev = StepEvidence {
            members_version: last_version,
            confirmed_unreachable: last_unreachable,
            membership_unreachable: !saw_membership,
            ..Default::default()
        };
        self.observer.record(world, &step, &ev);
        step
    }

    /// Drives the iterator until it terminates or blocks `max_blocks`
    /// consecutive times, sleeping `wait` between blocked invocations.
    /// Returns the records yielded and the final step.
    pub fn drain(
        &mut self,
        world: &mut StoreRt,
        max_blocks: usize,
        wait: weakset_sim::time::SimDuration,
    ) -> (Vec<weakset_store::object::ObjectRecord>, IterStep) {
        let mut out = Vec::new();
        let mut blocks = 0;
        loop {
            match self.next(world) {
                IterStep::Yielded(rec) => {
                    blocks = 0;
                    out.push(rec);
                }
                IterStep::Blocked => {
                    blocks += 1;
                    if blocks >= max_blocks {
                        return (out, IterStep::Blocked);
                    }
                    world.sleep(wait);
                }
                step @ IterStep::Done => return (out, step),
                step @ IterStep::Failed(_) => return (out, step),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conformance::RunObserver;
    use weakset_sim::fault::FaultPlan;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::{SimDuration, SimTime};
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::{check_computation, Figure};
    use weakset_spec::specs::fig6;
    use weakset_store::object::{CollectionId, ObjectRecord};
    use weakset_store::prelude::StoreServer;
    use weakset_store::prelude::StoreWorld;

    fn setup(
        n: usize,
    ) -> (
        StoreWorld,
        StoreClient,
        CollectionRef,
        Vec<weakset_sim::node::NodeId>,
    ) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(17),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let cref = CollectionRef::unreplicated(CollectionId(1), servers[0]);
        client.create_collection(&mut w, &cref).unwrap();
        (w, client, cref, servers)
    }

    fn add(
        w: &mut StoreWorld,
        client: &StoreClient,
        cref: &CollectionRef,
        id: u64,
        home: weakset_sim::node::NodeId,
    ) {
        client
            .put_object(
                w,
                home,
                ObjectRecord::new(ObjectId(id), format!("o{id}"), &b"x"[..]),
            )
            .unwrap();
        client
            .add_member(
                w,
                cref,
                MemberEntry {
                    elem: ObjectId(id),
                    home,
                },
            )
            .unwrap();
    }

    #[test]
    fn blocks_under_partition_then_resumes_after_heal() {
        let (mut w, client, cref, servers) = setup(2);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[1]);
        let mut it = OptimisticElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert!(matches!(it.next(&mut w), IterStep::Yielded(_)));
        // Partition away the node holding element 2, healing later.
        w.topology_mut().partition(&[servers[1]]);
        let heal_at = w.now() + SimDuration::from_secs(1);
        w.install_plan(&FaultPlan::none().heal_at(heal_at));
        // First invocation under partition blocks (no failure!).
        assert_eq!(it.next(&mut w), IterStep::Blocked);
        // Keep resuming: after the heal the element arrives.
        let (got, end) = it.drain(&mut w, 50, SimDuration::from_millis(100));
        assert_eq!(end, IterStep::Done);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].id, ObjectId(2));
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig6, &comp).assert_ok();
        for run in &comp.runs {
            assert!(fig6::yields_were_members(&comp, run));
        }
    }

    #[test]
    fn sees_both_growth_and_shrinkage() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        add(&mut w, &client, &cref, 2, servers[0]);
        let mut it = OptimisticElements::new(
            client.clone(),
            cref.clone(),
            IterConfig {
                fetch_order: super::super::FetchOrder::IdOrder,
                ..Default::default()
            },
        );
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(1)));
        // Concurrent: remove 2, add 3.
        client.remove_member(&mut w, &cref, ObjectId(2)).unwrap();
        add(&mut w, &client, &cref, 3, servers[0]);
        assert_eq!(it.next(&mut w).elem(), Some(ObjectId(3)));
        assert_eq!(it.next(&mut w), IterStep::Done);
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig6, &comp).assert_ok();
        // The pessimistic figures reject this history (constraint).
        assert!(!check_computation(Figure::Fig5, &comp).is_ok());
    }

    #[test]
    fn never_fails_even_when_everything_is_down() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        w.topology_mut().crash(servers[0]);
        let mut it = OptimisticElements::new(client.clone(), cref.clone(), IterConfig::default());
        it.observe(RunObserver::new(cref.id, cref.home, client.node()));
        for _ in 0..3 {
            assert_eq!(it.next(&mut w), IterStep::Blocked);
        }
        let comp = it.take_computation(&w).unwrap();
        check_computation(Figure::Fig6, &comp).assert_ok();
    }

    #[test]
    fn empty_set_terminates() {
        let (mut w, client, cref, _servers) = setup(1);
        let mut it = OptimisticElements::new(client, cref, IterConfig::default());
        assert_eq!(it.next(&mut w), IterStep::Done);
        assert_eq!(it.next(&mut w), IterStep::Done);
    }

    #[test]
    fn retry_budget_advances_simulated_time() {
        let (mut w, client, cref, servers) = setup(1);
        add(&mut w, &client, &cref, 1, servers[0]);
        w.topology_mut().partition(&[servers[0]]);
        let cfg = IterConfig {
            block_attempts: 4,
            retry_interval: SimDuration::from_millis(10),
            ..Default::default()
        };
        let mut it = OptimisticElements::new(client, cref, cfg);
        let before = w.now();
        assert_eq!(it.next(&mut w), IterStep::Blocked);
        // 3 sleeps of 10ms plus 4 failure detections of 2ms each.
        assert!(
            w.now() >= before + SimDuration::from_millis(30),
            "{}",
            w.now()
        );
        assert!(w.now() < SimTime::from_secs(1));
    }

    #[test]
    fn drain_collects_everything_in_healthy_world() {
        let (mut w, client, cref, servers) = setup(3);
        for i in 0..9u64 {
            add(&mut w, &client, &cref, i + 1, servers[(i % 3) as usize]);
        }
        let mut it = OptimisticElements::new(client, cref, IterConfig::default());
        let (got, end) = it.drain(&mut w, 3, SimDuration::from_millis(10));
        assert_eq!(end, IterStep::Done);
        assert_eq!(got.len(), 9);
        assert_eq!(it.yielded().len(), 9);
    }
}
