//! Recording iterator runs for conformance checking.
//!
//! A [`RunObserver`] watches one use of an `elements` iterator and builds
//! the [`Computation`] that `weakset-spec`'s checker replays. It is an
//! *omniscient monitor*: it reads the primary replica's version log
//! directly (simulation-level access, not RPC) for ground-truth membership
//! history, and samples per-element accessibility from the topology.
//!
//! # Linearization
//!
//! The paper models each invocation as atomic; the implementation is not.
//! The observer therefore picks one *linearization point* per invocation —
//! the membership version the implementation actually acted on
//! ([`StepEvidence::members_version`], verified to be a real logged state)
//! — and evaluates the spec's pre-state there. Accessibility is sampled
//! from the topology at recording time and then corrected by *observed
//! evidence*: an element whose fetch succeeded during the invocation was
//! reachable ([`StepEvidence::confirmed_reachable`]); one whose fetch
//! failed was not ([`StepEvidence::confirmed_unreachable`]). When the
//! membership itself could not be read, nothing was accessible through the
//! collection object ([`StepEvidence::membership_unreachable`]).
//!
//! A consequence worth knowing: if an implementation serves *stale*
//! membership (e.g. optimistic `Any`-replica reads), its linearization
//! points can run backwards in version order, and the recorded computation
//! may then violate the figure's constraint — that is the monitor
//! truthfully reporting that no atomic-invocation history explains the
//! observed behaviour.

use std::collections::BTreeMap;
use std::fmt;
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_spec::prelude::{Computation, Outcome, Recorder, SetValue, State};
use weakset_spec::value::ElemId;
use weakset_store::collection::{CollectionState, MemberEntry};
use weakset_store::object::{CollectionId, ObjectId};
use weakset_store::prelude::{StoreRt, StoreServer};

/// Where the observer finds the omniscient membership history: a
/// visitor over the hosted [`CollectionState`] whose version log is
/// ground truth, keyed by `(world, home node, collection)`.
///
/// This is a visitor rather than a borrowing lookup because on the
/// threaded runtime backend the state lives behind a lock — a borrow
/// cannot escape the accessor, but a visit can happen inside it on
/// either backend.
///
/// The default source downcasts the home node's service to a plain
/// [`StoreServer`]. Deployments wrapping the server inside another
/// service type — such as the gossip replica nodes of `weakset-gossip` —
/// supply an accessor that reaches through their wrapper.
pub struct HistorySource(
    #[allow(clippy::type_complexity)]
    Box<dyn Fn(&StoreRt, NodeId, CollectionId, &mut dyn FnMut(&CollectionState))>,
);

impl HistorySource {
    /// A source backed by an arbitrary accessor: call `visit` with the
    /// collection's state when it exists, do nothing otherwise.
    pub fn new(
        f: impl Fn(&StoreRt, NodeId, CollectionId, &mut dyn FnMut(&CollectionState)) + 'static,
    ) -> Self {
        HistorySource(Box::new(f))
    }

    /// The default: the home node runs a bare [`StoreServer`].
    pub fn plain_store() -> Self {
        HistorySource::new(|world, home, coll, visit| {
            world.with_service(home, |s: &StoreServer| {
                if let Some(state) = s.collection(coll) {
                    visit(state);
                }
            });
        })
    }

    /// Reads one value out of the collection's state, or `None` when the
    /// home hosts no such collection.
    fn inspect<R>(
        &self,
        world: &StoreRt,
        home: NodeId,
        coll: CollectionId,
        f: impl FnOnce(&CollectionState) -> R,
    ) -> Option<R> {
        let mut f = Some(f);
        let mut out = None;
        (self.0)(world, home, coll, &mut |state| {
            if let Some(f) = f.take() {
                out = Some(f(state));
            }
        });
        out
    }
}

impl Default for HistorySource {
    fn default() -> Self {
        HistorySource::plain_store()
    }
}

impl fmt::Debug for HistorySource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("HistorySource(..)")
    }
}

/// What one invocation observed, reported by the iterator implementation.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct StepEvidence {
    /// The membership version this invocation acted on (its linearization
    /// point). `None` means "the current primary state at recording time".
    pub members_version: Option<u64>,
    /// Elements proven reachable during the invocation (successful fetch).
    pub confirmed_reachable: Vec<ObjectId>,
    /// Elements proven unreachable during the invocation (failed fetch).
    pub confirmed_unreachable: Vec<ObjectId>,
    /// The membership list itself could not be read: the collection object
    /// was inaccessible, so no element was accessible through it.
    pub membership_unreachable: bool,
}

impl StepEvidence {
    /// Evidence for an invocation that acted on membership version `v`.
    pub fn at_version(v: u64) -> Self {
        StepEvidence {
            members_version: Some(v),
            ..Default::default()
        }
    }
}

/// Observes one iterator run and produces a checkable [`Computation`].
#[derive(Debug)]
pub struct RunObserver {
    recorder: Option<Recorder>,
    coll: CollectionId,
    home: NodeId,
    client_node: NodeId,
    seen_version: u64,
    /// Lowest version an invocation may legitimately claim as its
    /// linearization point: the primary's version when the previous
    /// invocation finished. A claim below this (a stale replica read) is
    /// clamped up, so the ensures clause — not a constraint artifact —
    /// reports the staleness.
    window_floor: u64,
    /// Observation starts at the first recorded invocation; history from
    /// before that (workload setup) is not part of the computation.
    initialized: bool,
    /// Homes of every element ever seen in the log (for accessibility
    /// sampling).
    homes: BTreeMap<ObjectId, NodeId>,
    finished: Option<Computation>,
    source: HistorySource,
}

fn to_set(members: &[MemberEntry]) -> SetValue {
    members.iter().map(|m| ElemId(m.elem.0)).collect()
}

impl RunObserver {
    /// Starts observing a run of an iterator owned by a client on
    /// `client_node` over the collection whose primary is `home`.
    pub fn new(coll: CollectionId, home: NodeId, client_node: NodeId) -> Self {
        RunObserver {
            recorder: None,
            coll,
            home,
            client_node,
            seen_version: 0,
            window_floor: 0,
            initialized: false,
            homes: BTreeMap::new(),
            finished: None,
            source: HistorySource::default(),
        }
    }

    /// Replaces the history accessor — required when the home node's
    /// service is not a bare [`StoreServer`] (e.g. a gossip replica
    /// wrapping one).
    #[must_use]
    pub fn with_history_source(mut self, source: HistorySource) -> Self {
        self.source = source;
        self
    }

    fn log_members(&mut self, world: &StoreRt, version: u64) -> Option<Vec<MemberEntry>> {
        self.source
            .inspect(world, self.home, self.coll, |coll| {
                coll.members_at(version).map(<[MemberEntry]>::to_vec)
            })
            .flatten()
    }

    fn latest_version(&self, world: &StoreRt) -> u64 {
        self.source
            .inspect(world, self.home, self.coll, CollectionState::version)
            .unwrap_or(0)
    }

    fn learn_homes(&mut self, world: &StoreRt) {
        let homes = &mut self.homes;
        self.source.inspect(world, self.home, self.coll, |coll| {
            for mv in coll.log() {
                for m in &mv.members {
                    homes.insert(m.elem, m.home);
                }
            }
        });
    }

    fn sample_accessible(&self, world: &StoreRt, evidence: &StepEvidence) -> SetValue {
        if evidence.membership_unreachable {
            return SetValue::empty();
        }
        let mut acc: SetValue = self
            .homes
            .iter()
            .filter(|&(_, &h)| world.reachable(self.client_node, h))
            .map(|(&e, _)| ElemId(e.0))
            .collect();
        for e in &evidence.confirmed_reachable {
            acc.insert(ElemId(e.0));
        }
        for e in &evidence.confirmed_unreachable {
            acc.remove(ElemId(e.0));
        }
        acc
    }

    /// Feeds all primary-log states in `(seen, upto]` to the recorder as
    /// mutation states, returning the members at `upto`.
    fn sync_to(&mut self, world: &StoreRt, upto: u64) -> Vec<MemberEntry> {
        self.learn_homes(world);
        let mut members = Vec::new();
        let from = self.seen_version;
        for v in from..=upto {
            if let Some(m) = self.log_members(world, v) {
                if v > from || self.recorder.is_none() {
                    let st = State {
                        members: to_set(&m),
                        // Accessibility of pure-mutation states is not
                        // consulted by any ensures clause; approximate
                        // with "all known homes reachable now".
                        accessible: self.sample_accessible(world, &StepEvidence::default()),
                    };
                    match &mut self.recorder {
                        Some(r) => {
                            r.observe_state(st);
                        }
                        None => self.recorder = Some(Recorder::new(st)),
                    }
                }
                members = m;
            }
        }
        if upto > self.seen_version {
            self.seen_version = upto;
        }
        members
    }

    /// Marks the start of an invocation: mutations already applied at this
    /// instant must precede the invocation's linearization point. Iterator
    /// implementations call this on entry to `next`.
    pub fn mark_invocation_start(&mut self, world: &StoreRt) {
        let latest = self.latest_version(world);
        if latest > self.window_floor {
            self.window_floor = latest;
        }
    }

    /// Records one completed invocation with its outcome and evidence.
    ///
    /// # Panics
    ///
    /// Panics if called after [`RunObserver::finish`].
    pub fn record_step(&mut self, world: &StoreRt, outcome: Outcome, evidence: &StepEvidence) {
        assert!(self.finished.is_none(), "observer already finished");
        let claimed = evidence
            .members_version
            .unwrap_or_else(|| self.latest_version(world));
        // The linearization point must fall inside this invocation's
        // window; stale claims (including a stale *first* read, when the
        // iterator marked its start) are clamped up to the window floor.
        let version = claimed.max(self.window_floor);
        if !self.initialized {
            // Observation starts here; earlier history (workload setup)
            // is outside the computation.
            self.seen_version = version;
            self.initialized = true;
        }
        let members = if version >= self.seen_version {
            self.sync_to(world, version)
        } else {
            self.learn_homes(world);
            self.log_members(world, version).unwrap_or_default()
        };
        let pre = State {
            members: to_set(&members),
            accessible: self.sample_accessible(world, evidence),
        };
        let rec = match &mut self.recorder {
            Some(r) => r,
            None => {
                self.recorder = Some(Recorder::new(pre.clone()));
                self.recorder.as_mut().expect("just installed")
            }
        };
        if !rec.run_open() {
            // First invocation: its linearization state is the run's
            // first-state. Push it so begin_run anchors there.
            rec.observe_state(pre.clone());
            rec.begin_run();
        } else {
            rec.observe_state(pre.clone());
        }
        rec.record_invocation(pre, outcome);
        // A terminal outcome closes the run; a later record_step then
        // opens a fresh run in the SAME computation, so one observer can
        // witness several uses of the iterator — needed to check the
        // relaxed §3.1/§3.3 per-run constraints and the §3.2 advice to
        // "run the iterator again and hope to catch discrepancies".
        if outcome.is_terminal() {
            rec.end_run();
        }
        self.window_floor = self.latest_version(world);
    }

    /// Ends observation, returning the recorded computation.
    pub fn finish(mut self, world: &StoreRt) -> Computation {
        let latest = self.latest_version(world);
        if self.initialized && latest > self.seen_version {
            self.sync_to(world, latest);
        }
        match self.recorder.take() {
            Some(r) => r.finish(),
            None => Computation::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::{check_computation, Figure};
    use weakset_store::prelude::StoreWorld;
    use weakset_store::prelude::{CollectionRef, StoreClient};

    fn setup() -> (StoreWorld, NodeId, NodeId, CollectionRef, StoreClient) {
        let mut t = Topology::new();
        let client_node = t.add_node("client", 0);
        let home = t.add_node("home", 1);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(home, Box::new(StoreServer::new()));
        let cref = CollectionRef::unreplicated(CollectionId(1), home);
        let client = StoreClient::new(client_node, SimDuration::from_millis(50));
        client.create_collection(&mut w, &cref).unwrap();
        (w, client_node, home, cref, client)
    }

    fn entry(id: u64, home: NodeId) -> MemberEntry {
        MemberEntry {
            elem: ObjectId(id),
            home,
        }
    }

    #[test]
    fn records_a_clean_run() {
        let (mut w, cn, home, cref, client) = setup();
        client.add_member(&mut w, &cref, entry(1, home)).unwrap();
        client.add_member(&mut w, &cref, entry(2, home)).unwrap();
        let mut obs = RunObserver::new(cref.id, home, cn);
        // Simulate an iterator yielding 1 then 2 at version 2, then
        // returning.
        obs.record_step(
            &w,
            Outcome::Yielded(ElemId(1)),
            &StepEvidence::at_version(2),
        );
        obs.record_step(
            &w,
            Outcome::Yielded(ElemId(2)),
            &StepEvidence::at_version(2),
        );
        obs.record_step(&w, Outcome::Returned, &StepEvidence::at_version(2));
        let comp = obs.finish(&w);
        assert_eq!(comp.runs.len(), 1);
        check_computation(Figure::Fig4, &comp).assert_ok();
        check_computation(Figure::Fig5, &comp).assert_ok();
        check_computation(Figure::Fig6, &comp).assert_ok();
    }

    #[test]
    fn mutation_mid_run_is_in_the_history() {
        let (mut w, cn, home, cref, client) = setup();
        client.add_member(&mut w, &cref, entry(1, home)).unwrap();
        let mut obs = RunObserver::new(cref.id, home, cn);
        obs.record_step(
            &w,
            Outcome::Yielded(ElemId(1)),
            &StepEvidence::at_version(1),
        );
        // Growth between invocations.
        client.add_member(&mut w, &cref, entry(2, home)).unwrap();
        obs.record_step(
            &w,
            Outcome::Yielded(ElemId(2)),
            &StepEvidence::at_version(2),
        );
        obs.record_step(&w, Outcome::Returned, &StepEvidence::at_version(2));
        let comp = obs.finish(&w);
        // Grow-only constraint holds across the recorded history.
        check_computation(Figure::Fig5, &comp).assert_ok();
        // Figure 4 flags the yield of an element outside s_first.
        assert!(!check_computation(Figure::Fig4, &comp).is_ok());
    }

    #[test]
    fn accessibility_sampling_respects_partitions() {
        let (mut w, cn, home, cref, client) = setup();
        let far = w.topology_mut().add_node("far", 2);
        w.install_service(far, Box::new(StoreServer::new()));
        client.add_member(&mut w, &cref, entry(1, home)).unwrap();
        client.add_member(&mut w, &cref, entry(2, far)).unwrap();
        w.topology_mut().partition(&[far]);
        let mut obs = RunObserver::new(cref.id, home, cn);
        obs.record_step(
            &w,
            Outcome::Yielded(ElemId(1)),
            &StepEvidence::at_version(2),
        );
        // Failing now (elem 2 unreachable) conforms to Fig 4/5; the
        // sampled accessibility shows 2 inaccessible.
        obs.record_step(&w, Outcome::Failed, &StepEvidence::at_version(2));
        let comp = obs.finish(&w);
        check_computation(Figure::Fig4, &comp).assert_ok();
        check_computation(Figure::Fig5, &comp).assert_ok();
        // Fig 6 never fails.
        assert!(!check_computation(Figure::Fig6, &comp).is_ok());
    }

    #[test]
    fn evidence_overrides_sampling() {
        let (mut w, cn, home, cref, client) = setup();
        client.add_member(&mut w, &cref, entry(1, home)).unwrap();
        let mut obs = RunObserver::new(cref.id, home, cn);
        // Claim 1 was observed unreachable even though topology says
        // reachable: a failure outcome then conforms.
        let ev = StepEvidence {
            members_version: Some(1),
            confirmed_unreachable: vec![ObjectId(1)],
            ..Default::default()
        };
        obs.record_step(&w, Outcome::Failed, &ev);
        let comp = obs.finish(&w);
        check_computation(Figure::Fig4, &comp).assert_ok();
    }

    #[test]
    fn membership_unreachable_empties_accessibility() {
        let (mut w, cn, home, cref, client) = setup();
        client.add_member(&mut w, &cref, entry(1, home)).unwrap();
        let mut obs = RunObserver::new(cref.id, home, cn);
        let ev = StepEvidence {
            members_version: Some(1),
            membership_unreachable: true,
            ..Default::default()
        };
        // Blocked with membership unreachable conforms to Fig 6.
        obs.record_step(&w, Outcome::Blocked, &ev);
        let comp = obs.finish(&w);
        check_computation(Figure::Fig6, &comp).assert_ok();
    }

    #[test]
    fn empty_observation_yields_empty_computation() {
        let (w, cn, home, cref, _client) = setup();
        let obs = RunObserver::new(cref.id, home, cn);
        let comp = obs.finish(&w);
        assert!(comp.runs.is_empty());
    }
}
