//! The design space: which weak-set semantics an iterator provides.

use serde::{Deserialize, Serialize};
use std::fmt;
use weakset_spec::checker::Figure;

/// A point in the paper's design space for the `elements` iterator.
///
/// ```
/// use weakset::semantics::Semantics;
/// use weakset_spec::checker::Figure;
/// assert_eq!(Semantics::Optimistic.figure(), Figure::Fig6);
/// assert!(!Semantics::Optimistic.signals_failure());
/// assert!(Semantics::Optimistic.may_block());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Semantics {
    /// Snapshot semantics: membership is captured atomically at the first
    /// invocation; later mutations are lost. Pessimistic about failures.
    ///
    /// This single implementation covers the paper's Figures 1, 3, *and*
    /// 4: run in a fault-free immutable environment it exhibits Figure 1;
    /// with failures it exhibits Figure 3; with concurrent mutators it
    /// exhibits Figure 4 (the figures differ in constraint/environment,
    /// not in iterator code).
    Snapshot,
    /// Growing-only semantics (Figure 5): every invocation consults the
    /// current membership, picking up concurrent additions; fails
    /// pessimistically when a known member is unreachable.
    GrowOnly,
    /// Optimistic semantics (Figure 6): consults current membership, never
    /// fails — blocks until unreachable members become reachable again.
    /// The semantics of the dynamic sets the authors implemented.
    Optimistic,
    /// The strongly-consistent baseline §3.1 warns about: a distributed
    /// read lock is held for the whole iteration, stalling writers.
    Locked,
}

impl Semantics {
    /// All semantics, weakest guarantees last.
    pub const ALL: [Semantics; 4] = [
        Semantics::Locked,
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
    ];

    /// The paper figure whose specification this semantics is checked
    /// against *in a general environment* (failures and mutators active).
    pub fn figure(self) -> Figure {
        match self {
            // Locked iteration makes the set immutable for the run; with
            // failure signalling it implements Figure 3.
            Semantics::Locked => Figure::Fig3,
            Semantics::Snapshot => Figure::Fig4,
            Semantics::GrowOnly => Figure::Fig5,
            Semantics::Optimistic => Figure::Fig6,
        }
    }

    /// Whether this iterator may signal the failure exception.
    pub fn signals_failure(self) -> bool {
        self != Semantics::Optimistic
    }

    /// Whether this iterator may block (return
    /// [`crate::error::IterStep::Blocked`]).
    pub fn may_block(self) -> bool {
        self == Semantics::Optimistic
    }
}

impl fmt::Display for Semantics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Semantics::Snapshot => "snapshot (figs 1/3/4)",
            Semantics::GrowOnly => "grow-only pessimistic (fig 5)",
            Semantics::Optimistic => "optimistic (fig 6)",
            Semantics::Locked => "locked strong baseline",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_mapping() {
        assert_eq!(Semantics::Snapshot.figure(), Figure::Fig4);
        assert_eq!(Semantics::GrowOnly.figure(), Figure::Fig5);
        assert_eq!(Semantics::Optimistic.figure(), Figure::Fig6);
        assert_eq!(Semantics::Locked.figure(), Figure::Fig3);
    }

    #[test]
    fn failure_and_blocking_signatures() {
        assert!(Semantics::Snapshot.signals_failure());
        assert!(!Semantics::Optimistic.signals_failure());
        assert!(Semantics::Optimistic.may_block());
        assert!(!Semantics::GrowOnly.may_block());
    }

    #[test]
    fn display_names() {
        assert!(Semantics::Optimistic.to_string().contains("fig 6"));
        assert_eq!(Semantics::ALL.len(), 4);
    }
}
