//! Parallel prefetching of member objects.
//!
//! The dynamic-sets motivation (§1.1): "we can implement such file system
//! commands more efficiently by fetching files in parallel, fetching
//! 'closer' files first, and fetching all accessible files despite network
//! failures". The [`PrefetchEngine`] keeps a window of fetches in flight
//! and hands back objects as they arrive, so total latency is roughly
//! `ceil(n / window)` round trips instead of `n`, and time-to-first-object
//! is one round trip.

use crate::iter::FetchOrder;
use std::collections::VecDeque;
use weakset_sim::node::NodeId;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::world::ReplyToken;
use weakset_store::collection::MemberEntry;
use weakset_store::msg::StoreMsg;
use weakset_store::object::ObjectRecord;
use weakset_store::prelude::StoreRt;

/// Prefetch tunables.
#[derive(Clone, Debug, PartialEq)]
pub struct PrefetchConfig {
    /// Maximum fetches in flight at once.
    pub window: usize,
    /// Per-fetch deadline.
    pub fetch_timeout: SimDuration,
    /// Candidate ordering.
    pub order: FetchOrder,
}

impl Default for PrefetchConfig {
    fn default() -> Self {
        PrefetchConfig {
            window: 8,
            fetch_timeout: SimDuration::from_millis(100),
            order: FetchOrder::ClosestFirst,
        }
    }
}

/// What the engine produced.
#[derive(Clone, Debug, PartialEq)]
pub enum PrefetchStep {
    /// An object arrived.
    Ready(ObjectRecord),
    /// A member could not be fetched (unreachable, deleted, or timed out).
    Unavailable(MemberEntry),
    /// Everything queued has been resolved one way or the other.
    Drained,
}

#[derive(Debug)]
struct Inflight {
    token: ReplyToken,
    entry: MemberEntry,
    deadline: SimTime,
}

/// A window of in-flight object fetches over the async message layer.
#[derive(Debug)]
pub struct PrefetchEngine {
    client_node: NodeId,
    cfg: PrefetchConfig,
    queue: VecDeque<MemberEntry>,
    inflight: Vec<Inflight>,
    /// Tokens abandoned at their deadline; drained opportunistically so a
    /// late reply does not accumulate in the world's completion map.
    zombies: Vec<ReplyToken>,
}

impl PrefetchEngine {
    /// Creates an engine over the given members, ordered per the config.
    pub fn new(
        world: &StoreRt,
        client_node: NodeId,
        mut members: Vec<MemberEntry>,
        cfg: PrefetchConfig,
    ) -> Self {
        assert!(cfg.window >= 1, "prefetch window must be at least 1");
        match cfg.order {
            FetchOrder::IdOrder => members.sort_by_key(|m| m.elem),
            FetchOrder::ClosestFirst => {
                members.sort_by_key(|m| (world.estimate_latency(client_node, m.home), m.elem));
            }
        }
        PrefetchEngine {
            client_node,
            cfg,
            queue: members.into(),
            inflight: Vec::new(),
            zombies: Vec::new(),
        }
    }

    /// Re-queues a member (e.g. to retry one reported unavailable).
    pub fn push(&mut self, entry: MemberEntry) {
        self.queue.push_back(entry);
    }

    /// Members not yet fetched or in flight.
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Fetches currently in flight.
    pub fn outstanding(&self) -> usize {
        self.inflight.len()
    }

    fn top_up(&mut self, world: &mut StoreRt) {
        while self.inflight.len() < self.cfg.window {
            let Some(entry) = self.queue.pop_front() else {
                break;
            };
            let token = world.send(
                self.client_node,
                entry.home,
                StoreMsg::GetObject(entry.elem),
            );
            self.inflight.push(Inflight {
                token,
                entry,
                deadline: world.now() + self.cfg.fetch_timeout,
            });
        }
    }

    fn drain_zombies(&mut self, world: &mut StoreRt) {
        self.zombies.retain(|&t| world.try_take_reply(t).is_none());
    }

    /// Blocks (in simulated time) until the next object arrives, a fetch
    /// resolves as unavailable, or everything drains.
    pub fn next_ready(&mut self, world: &mut StoreRt) -> PrefetchStep {
        loop {
            self.drain_zombies(world);
            self.top_up(world);
            if self.inflight.is_empty() {
                return PrefetchStep::Drained;
            }
            let deadline = self
                .inflight
                .iter()
                .map(|f| f.deadline)
                .min()
                .expect("inflight nonempty");
            let tokens: Vec<ReplyToken> = self.inflight.iter().map(|f| f.token).collect();
            match world.wait_any(&tokens, deadline) {
                Some(done) => {
                    let idx = self
                        .inflight
                        .iter()
                        .position(|f| f.token == done)
                        .expect("completed token is in flight");
                    let f = self.inflight.swap_remove(idx);
                    match world.try_take_reply(done) {
                        Some(Ok(StoreMsg::Object(rec))) => return PrefetchStep::Ready(rec),
                        Some(_) => return PrefetchStep::Unavailable(f.entry),
                        None => unreachable!("wait_any returned an incomplete token"),
                    }
                }
                None => {
                    // Deadline hit: expire every overdue fetch.
                    let now = world.now();
                    if let Some(idx) = self.inflight.iter().position(|f| f.deadline <= now) {
                        let f = self.inflight.swap_remove(idx);
                        self.zombies.push(f.token);
                        return PrefetchStep::Unavailable(f.entry);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::object::ObjectId;
    use weakset_store::prelude::{StoreServer, StoreWorld};

    fn setup(n_servers: usize, latency_ms: u64) -> (StoreWorld, NodeId, Vec<NodeId>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("s", n_servers);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(31),
            t,
            LatencyModel::Constant(SimDuration::from_millis(latency_ms)),
        );
        for (i, &s) in servers.iter().enumerate() {
            let mut srv = StoreServer::new();
            srv.preload_object(ObjectRecord::new(
                ObjectId(i as u64 + 1),
                format!("o{i}"),
                &b"data"[..],
            ));
            w.install_service(s, Box::new(srv));
        }
        (w, cn, servers)
    }

    fn members(servers: &[NodeId]) -> Vec<MemberEntry> {
        servers
            .iter()
            .enumerate()
            .map(|(i, &s)| MemberEntry {
                elem: ObjectId(i as u64 + 1),
                home: s,
            })
            .collect()
    }

    #[test]
    fn fetches_everything() {
        let (mut w, cn, servers) = setup(6, 5);
        let mut eng = PrefetchEngine::new(&w, cn, members(&servers), PrefetchConfig::default());
        let mut got = Vec::new();
        loop {
            match eng.next_ready(&mut w) {
                PrefetchStep::Ready(rec) => got.push(rec.id.0),
                PrefetchStep::Unavailable(e) => panic!("unexpected unavailable {e:?}"),
                PrefetchStep::Drained => break,
            }
        }
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn window_parallelism_compresses_wall_time() {
        // 8 objects at 5ms one-way. Window 8: all fetched in ~1 RTT (10ms).
        let (mut w, cn, servers) = setup(8, 5);
        let mut eng = PrefetchEngine::new(
            &w,
            cn,
            members(&servers),
            PrefetchConfig {
                window: 8,
                ..Default::default()
            },
        );
        let mut n = 0;
        while let PrefetchStep::Ready(_) = eng.next_ready(&mut w) {
            n += 1;
        }
        assert_eq!(n, 8);
        assert_eq!(w.now(), SimTime::from_millis(10));

        // Window 1: strictly serial, 8 RTTs.
        let (mut w1, cn1, servers1) = setup(8, 5);
        let mut eng1 = PrefetchEngine::new(
            &w1,
            cn1,
            members(&servers1),
            PrefetchConfig {
                window: 1,
                ..Default::default()
            },
        );
        let mut n1 = 0;
        while let PrefetchStep::Ready(_) = eng1.next_ready(&mut w1) {
            n1 += 1;
        }
        assert_eq!(n1, 8);
        assert_eq!(w1.now(), SimTime::from_millis(80));
    }

    #[test]
    fn unreachable_members_resolve_as_unavailable() {
        let (mut w, cn, servers) = setup(3, 2);
        w.topology_mut().partition(&[servers[1]]);
        let mut eng = PrefetchEngine::new(&w, cn, members(&servers), PrefetchConfig::default());
        let mut ready = 0;
        let mut unavailable = Vec::new();
        loop {
            match eng.next_ready(&mut w) {
                PrefetchStep::Ready(_) => ready += 1,
                PrefetchStep::Unavailable(e) => unavailable.push(e.elem),
                PrefetchStep::Drained => break,
            }
        }
        assert_eq!(ready, 2);
        assert_eq!(unavailable, vec![ObjectId(2)]);
    }

    #[test]
    fn push_retries_after_heal() {
        let (mut w, cn, servers) = setup(2, 2);
        w.topology_mut().partition(&[servers[1]]);
        let mut eng = PrefetchEngine::new(&w, cn, members(&servers), PrefetchConfig::default());
        let mut pending = Vec::new();
        loop {
            match eng.next_ready(&mut w) {
                PrefetchStep::Ready(_) => {}
                PrefetchStep::Unavailable(e) => pending.push(e),
                PrefetchStep::Drained => break,
            }
        }
        assert_eq!(pending.len(), 1);
        w.topology_mut().heal_partition();
        for e in pending.drain(..) {
            eng.push(e);
        }
        assert!(matches!(eng.next_ready(&mut w), PrefetchStep::Ready(_)));
        assert_eq!(eng.next_ready(&mut w), PrefetchStep::Drained);
    }

    #[test]
    fn missing_object_is_unavailable() {
        let (mut w, cn, servers) = setup(1, 1);
        let mut eng = PrefetchEngine::new(
            &w,
            cn,
            vec![MemberEntry {
                elem: ObjectId(99),
                home: servers[0],
            }],
            PrefetchConfig::default(),
        );
        assert!(matches!(
            eng.next_ready(&mut w),
            PrefetchStep::Unavailable(_)
        ));
        assert_eq!(eng.next_ready(&mut w), PrefetchStep::Drained);
    }

    #[test]
    fn timeout_expires_slow_fetches() {
        // Server exists but a 100% lossy link means no reply ever comes;
        // fast-fail doesn't trigger (node reachable), so the deadline does.
        let (mut w, cn, servers) = setup(1, 1);
        w.topology_mut()
            .set_link(cn, servers[0], weakset_sim::link::LinkState::lossy(1.0));
        let mut eng = PrefetchEngine::new(
            &w,
            cn,
            members(&servers[..1]),
            PrefetchConfig {
                fetch_timeout: SimDuration::from_millis(30),
                ..Default::default()
            },
        );
        let start = w.now();
        assert!(matches!(
            eng.next_ready(&mut w),
            PrefetchStep::Unavailable(_)
        ));
        assert_eq!(w.now(), start + SimDuration::from_millis(30));
        assert_eq!(eng.next_ready(&mut w), PrefetchStep::Drained);
    }

    #[test]
    fn closest_first_yields_near_objects_first() {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let near = t.add_node("near", 1);
        let far = t.add_node("far", 8);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(3),
            t,
            LatencyModel::SiteDistance {
                base: SimDuration::from_millis(1),
                per_hop: SimDuration::from_millis(4),
            },
        );
        let mut near_srv = StoreServer::new();
        near_srv.preload_object(ObjectRecord::new(ObjectId(2), "near-obj", &b""[..]));
        w.install_service(near, Box::new(near_srv));
        let mut far_srv = StoreServer::new();
        far_srv.preload_object(ObjectRecord::new(ObjectId(1), "far-obj", &b""[..]));
        w.install_service(far, Box::new(far_srv));
        let ms = vec![
            MemberEntry {
                elem: ObjectId(1),
                home: far,
            },
            MemberEntry {
                elem: ObjectId(2),
                home: near,
            },
        ];
        // Window 1 makes ordering observable.
        let mut eng = PrefetchEngine::new(
            &w,
            cn,
            ms,
            PrefetchConfig {
                window: 1,
                ..Default::default()
            },
        );
        let first = eng.next_ready(&mut w);
        match first {
            PrefetchStep::Ready(rec) => assert_eq!(rec.name, "near-obj"),
            other => panic!("{other:?}"),
        }
    }
}
