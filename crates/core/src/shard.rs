//! Sharded weak sets: one logical set partitioned across shard groups
//! by a deterministic consistent-hash ring, read in batched quorum
//! rounds.
//!
//! A [`ShardedWeakSet`] splits a collection into `n` sub-collections
//! (shards), each with its own primary/replica group, and routes every
//! element to exactly one shard through a [`ShardRouter`]. Because the
//! routing is a function of the element id alone, shards partition the
//! element space: no element can appear in two shards, so fanning an
//! `elements` iteration out across shards and concatenating the yields
//! preserves each figure's constraint — every per-shard run is itself a
//! conforming Figure-3/4/5/6 computation over its sub-collection, and
//! disjointness rules out cross-shard duplicate yields.
//!
//! Membership reads ride the batched quorum path
//! (`StoreClient::read_members_batched`): one envelope per replica node
//! carries the reads for every shard co-located there, so a whole-set
//! `size` costs one round-trip per *node* instead of one per shard per
//! replica.

use crate::conformance::{HistorySource, RunObserver};
use crate::error::{Failure, IterStep};
use crate::handle::{Elements, WeakSet};
use crate::iter::IterConfig;
use crate::semantics::Semantics;
use weakset_sim::metrics::shard_key;
use weakset_sim::node::NodeId;
use weakset_spec::prelude::Computation;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, StoreClient, StoreRt};

/// Domain-separation salts so ring points and key hashes never share an
/// input space.
const POINT_SALT: u64 = 0x5bd1_e995_9d1b_54d1;
const KEY_SALT: u64 = 0x94d0_49bb_1331_11eb;

/// SplitMix64: a tiny, stable, dependency-free 64-bit mixer (Steele et
/// al., "Fast splittable pseudorandom number generators"). Used for the
/// ring so routing is identical across platforms and runs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// A deterministic consistent-hash ring mapping element ids to shard
/// ids.
///
/// Each shard owns `vnodes` points on a `u64` ring; an element routes
/// to the shard owning the first point at or after its own hash
/// (wrapping). The classic stability property holds by construction:
/// adding a shard only moves keys *to* the new shard, and removing one
/// only moves *its* keys — everything else stays put.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardRouter {
    vnodes: usize,
    /// Sorted `(point, shard)` pairs; ties break toward the smaller
    /// shard id (sort order), deterministically.
    ring: Vec<(u64, u32)>,
    /// Shard ids present, ascending.
    shards: Vec<u32>,
}

impl ShardRouter {
    /// Ring points per shard. Enough that a four-shard ring splits keys
    /// within a few percent of evenly.
    pub const DEFAULT_VNODES: usize = 64;

    /// A ring over shard ids `0..shards` with the default vnode count.
    pub fn new(shards: usize) -> Self {
        Self::with_vnodes(shards, Self::DEFAULT_VNODES)
    }

    /// A ring over shard ids `0..shards` with an explicit vnode count.
    ///
    /// # Panics
    ///
    /// Panics if `vnodes` is zero (a shard with no ring presence can
    /// never be routed to).
    pub fn with_vnodes(shards: usize, vnodes: usize) -> Self {
        assert!(vnodes > 0, "a shard needs at least one ring point");
        let mut r = ShardRouter {
            vnodes,
            ring: Vec::new(),
            shards: Vec::new(),
        };
        for id in 0..shards as u32 {
            r.add_shard(id);
        }
        r
    }

    fn point(shard: u32, vnode: usize) -> u64 {
        splitmix64(POINT_SALT ^ (u64::from(shard) << 32) ^ vnode as u64)
    }

    /// Adds a shard's points to the ring. Idempotent.
    pub fn add_shard(&mut self, id: u32) {
        if self.shards.contains(&id) {
            return;
        }
        self.shards.push(id);
        self.shards.sort_unstable();
        for v in 0..self.vnodes {
            self.ring.push((Self::point(id, v), id));
        }
        self.ring.sort_unstable();
    }

    /// Removes a shard's points from the ring. Idempotent.
    pub fn remove_shard(&mut self, id: u32) {
        self.shards.retain(|&s| s != id);
        self.ring.retain(|&(_, s)| s != id);
    }

    /// Shard ids on the ring, ascending.
    pub fn shards(&self) -> &[u32] {
        &self.shards
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// True when the ring has no shards.
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Routes an element to its shard: the owner of the first ring
    /// point at or after the element's hash, wrapping past the top.
    ///
    /// # Panics
    ///
    /// Panics if the ring is empty.
    pub fn shard_for(&self, elem: ObjectId) -> u32 {
        assert!(!self.ring.is_empty(), "routing over an empty ring");
        let h = splitmix64(KEY_SALT ^ elem.0);
        let i = self.ring.partition_point(|&(p, _)| p < h);
        self.ring[i % self.ring.len()].1
    }
}

/// The sub-collection id for shard `shard` of the logical collection
/// `base`. Shard ids get their own block of the collection-id space so
/// they never collide with `base` itself or with other logical sets'
/// shards (for bases below 2^53 / 1024).
pub fn shard_collection_id(base: CollectionId, shard: u32) -> CollectionId {
    CollectionId(base.0 * 1024 + u64::from(shard) + 1)
}

/// One shard's replica group: where its sub-collection lives.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardGroup {
    /// The shard's primary node.
    pub home: NodeId,
    /// Secondary replicas of the shard's membership list.
    pub replicas: Vec<NodeId>,
}

impl ShardGroup {
    /// A group with no secondary replicas.
    pub fn unreplicated(home: NodeId) -> Self {
        ShardGroup {
            home,
            replicas: Vec::new(),
        }
    }
}

/// A weak set partitioned across shard groups.
///
/// Mutations route to the owning shard's primary; whole-set membership
/// reads are batched (one envelope per replica node); iteration fans
/// out across the shards' own `elements` iterators in shard order.
#[derive(Clone, Debug)]
pub struct ShardedWeakSet {
    client: StoreClient,
    router: ShardRouter,
    shards: Vec<WeakSet>,
}

impl ShardedWeakSet {
    /// Creates the shard sub-collections (one per group, ids derived
    /// with [`shard_collection_id`]) and binds the routed set.
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] when any shard's collection cannot be
    /// created.
    pub fn create(
        world: &mut StoreRt,
        base: CollectionId,
        client: StoreClient,
        groups: &[ShardGroup],
        config: IterConfig,
    ) -> Result<Self, Failure> {
        let router = ShardRouter::new(groups.len());
        let mut shards = Vec::with_capacity(groups.len());
        for (i, g) in groups.iter().enumerate() {
            let cref = CollectionRef {
                id: shard_collection_id(base, i as u32),
                home: g.home,
                replicas: g.replicas.clone(),
            };
            client.create_collection(world, &cref)?;
            shards.push(WeakSet::new(client.clone(), cref).with_config(config.clone()));
        }
        Ok(ShardedWeakSet {
            client,
            router,
            shards,
        })
    }

    /// The routing ring.
    pub fn router(&self) -> &ShardRouter {
        &self.router
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// One shard's underlying weak set.
    pub fn shard(&self, index: usize) -> &WeakSet {
        &self.shards[index]
    }

    /// The shard index an element routes to.
    pub fn shard_for(&self, elem: ObjectId) -> usize {
        self.router.shard_for(elem) as usize
    }

    /// Stores `rec` on `home` and adds it to its shard.
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] as for [`WeakSet::add`].
    pub fn add(&self, world: &mut StoreRt, rec: ObjectRecord, home: NodeId) -> Result<(), Failure> {
        let shard = self.shard_for(rec.id);
        self.shards[shard].add(world, rec, home)
    }

    /// Removes an element from its shard.
    ///
    /// # Errors
    ///
    /// [`Failure::Store`] as for [`WeakSet::remove`].
    pub fn remove(&self, world: &mut StoreRt, elem: ObjectId) -> Result<(), Failure> {
        let shard = self.shard_for(elem);
        self.shards[shard].remove(world, elem)
    }

    /// Membership test: a single-shard read (no fan-out needed, the
    /// ring says exactly where the element would live).
    ///
    /// # Errors
    ///
    /// [`Failure::MembershipUnavailable`] when that shard cannot be
    /// read.
    pub fn contains(&self, world: &mut StoreRt, elem: ObjectId) -> Result<bool, Failure> {
        let shard = self.shard_for(elem);
        self.shards[shard].contains(world, elem)
    }

    /// `size`: the whole set's membership count in one batched read
    /// round across all shards.
    ///
    /// # Errors
    ///
    /// [`Failure::MembershipUnavailable`] when any shard cannot be
    /// read under the configured policy.
    pub fn size(&self, world: &mut StoreRt) -> Result<usize, Failure> {
        let mut total = 0;
        let mut first_err = None;
        for r in self.read_all_batched(world) {
            match r {
                Ok(read) => total += read.entries.len(),
                Err(e) => first_err = first_err.or(Some(e)),
            }
        }
        match first_err {
            None => Ok(total),
            Some(e) => Err(Failure::MembershipUnavailable(e)),
        }
    }

    /// One batched membership read covering every shard, with
    /// per-shard observability: each shard records its read latency
    /// (`shard.<i>.read.us`), outcome (`shard.<i>.read.ok`/`.err`),
    /// and how many of its requests shared envelopes this round
    /// (`shard.<i>.queue.depth.max`).
    pub fn read_all_batched(
        &self,
        world: &mut StoreRt,
    ) -> Vec<Result<weakset_store::client::MembershipRead, weakset_store::client::StoreError>> {
        let policy = self.shards.first().map_or_else(
            || IterConfig::default().read_policy,
            |s| s.config().read_policy,
        );
        let crefs: Vec<CollectionRef> = self.shards.iter().map(|s| s.cref().clone()).collect();
        let started = world.now();
        let results = self.client.read_members_batched(world, &crefs, policy);
        let elapsed = world.now().saturating_since(started).as_micros();
        let m = world.metrics_mut();
        for (i, (r, cref)) in results.iter().zip(&crefs).enumerate() {
            m.observe(&shard_key(i, "read.us"), elapsed);
            m.incr(&shard_key(
                i,
                if r.is_ok() { "read.ok" } else { "read.err" },
            ));
            let contacts = match policy {
                weakset_store::prelude::ReadPolicy::Primary => 1,
                _ => 1 + cref.replicas.len(),
            };
            m.gauge_max(&shard_key(i, "queue.depth.max"), contacts as u64);
        }
        results
    }

    /// Opens a fan-out `elements` iterator: each shard contributes its
    /// own iterator of the chosen semantics, driven in shard order, and
    /// the yields concatenate. Routing disjointness guarantees the
    /// merged sequence never yields the same element twice.
    pub fn elements(&self, semantics: Semantics) -> ShardedElements {
        ShardedElements {
            iters: self.shards.iter().map(|s| s.elements(semantics)).collect(),
            current: 0,
            semantics,
            trace: None,
        }
    }

    /// Opens a fan-out iterator with a conformance observer attached to
    /// every shard's run.
    pub fn elements_observed(&self, semantics: Semantics) -> ShardedElements {
        let mut it = self.elements(semantics);
        for (iter, shard) in it.iters.iter_mut().zip(&self.shards) {
            iter.observe(RunObserver::new(
                shard.cref().id,
                shard.cref().home,
                self.client.node(),
            ));
        }
        it
    }

    /// Opens an observed fan-out iterator whose per-shard observers
    /// read omniscient history through custom sources (needed when the
    /// shard homes run wrapped services, e.g. gossip replicas). The
    /// closure is called once per shard index.
    pub fn elements_observed_via(
        &self,
        semantics: Semantics,
        mut source_for: impl FnMut(usize) -> HistorySource,
    ) -> ShardedElements {
        let mut it = self.elements(semantics);
        for (i, (iter, shard)) in it.iters.iter_mut().zip(&self.shards).enumerate() {
            iter.observe(
                RunObserver::new(shard.cref().id, shard.cref().home, self.client.node())
                    .with_history_source(source_for(i)),
            );
        }
        it
    }

    /// Convenience: drives a fresh fan-out iterator to its terminal
    /// step, returning everything yielded plus the terminal step.
    pub fn collect(
        &self,
        world: &mut StoreRt,
        semantics: Semantics,
    ) -> (Vec<ObjectRecord>, IterStep) {
        let retry = self.shards.first().map_or_else(
            || IterConfig::default().retry_interval,
            |s| s.config().retry_interval,
        );
        let mut it = self.elements(semantics);
        let mut out = Vec::new();
        let mut blocked = 0usize;
        loop {
            match it.next(world) {
                IterStep::Yielded(rec) => {
                    blocked = 0;
                    out.push(rec);
                }
                IterStep::Blocked => {
                    blocked += 1;
                    if blocked >= 3 {
                        return (out, IterStep::Blocked);
                    }
                    world.sleep(retry);
                }
                step => return (out, step),
            }
        }
    }
}

/// A fan-out `elements` iterator over a sharded weak set.
///
/// Shards are drained in shard order: `next` drives the current shard's
/// iterator until it returns `Done`, then moves on. A `Failed` or
/// `Blocked` step surfaces as-is (the current shard's semantics decide
/// how its own failures present; earlier shards' yields stand, exactly
/// as a single set's earlier yields stand when a later invocation
/// fails).
#[derive(Debug)]
pub struct ShardedElements {
    iters: Vec<Elements>,
    current: usize,
    semantics: Semantics,
    /// Causal context of the whole computation's trace root (the first
    /// fan-out invocation); per-shard invocation spans nest under it so
    /// one sharded computation is one cross-group trace.
    trace: Option<weakset_sim::metrics::TraceContext>,
}

impl ShardedElements {
    /// Which semantics every per-shard iterator provides.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// The shard currently being drained (== `shard_count` once done).
    pub fn current_shard(&self) -> usize {
        self.current
    }

    /// One invocation: the next step from the current shard, advancing
    /// to the next shard on `Done`. Opens an `iter.sharded.invocation`
    /// causal span so every per-shard step (and its cross-group RPCs)
    /// joins a single trace rooted at the first fan-out invocation.
    pub fn next(&mut self, world: &mut StoreRt) -> IterStep {
        let span = world.span_enter_under(self.trace, "iter.sharded.invocation", &String::new);
        if self.trace.is_none() {
            self.trace = world.current_ctx();
        }
        let step = loop {
            match self.iters.get_mut(self.current) {
                Some(it) => match it.next(world) {
                    IterStep::Done => self.current += 1,
                    step => break step,
                },
                None => break IterStep::Done,
            }
        };
        world.span_exit(span);
        step
    }

    /// Finishes observation on every shard, returning each attached
    /// observer's computation in shard order (empty when opened
    /// unobserved).
    pub fn take_computations(&mut self, world: &StoreRt) -> Vec<Computation> {
        self.iters
            .iter_mut()
            .filter_map(|it| it.take_computation(world))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::Failure;
    use proptest::prelude::*;
    use std::collections::BTreeSet;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_spec::checker::check_computation;
    use weakset_store::prelude::StoreWorld;
    use weakset_store::prelude::{ReadPolicy, StoreServer};

    /// `n_shards` groups of `group_size` servers each, plus a client.
    fn sharded_setup(
        seed: u64,
        n_shards: usize,
        group_size: usize,
        policy: ReadPolicy,
    ) -> (StoreWorld, ShardedWeakSet, Vec<ShardGroup>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let groups: Vec<ShardGroup> = (0..n_shards)
            .map(|g| {
                let nodes = t.add_servers(&format!("g{g}-"), group_size);
                ShardGroup {
                    home: nodes[0],
                    replicas: nodes[1..].to_vec(),
                }
            })
            .collect();
        let mut w = StoreWorld::new(
            WorldConfig::seeded(seed),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for id in w.topology().node_ids().collect::<Vec<_>>() {
            if id != cn {
                w.install_service(id, Box::new(StoreServer::new()));
            }
        }
        let client = StoreClient::new(cn, SimDuration::from_millis(50));
        let config = IterConfig {
            read_policy: policy,
            ..IterConfig::default()
        };
        let set = ShardedWeakSet::create(&mut w, CollectionId(1), client, &groups, config)
            .expect("create shards");
        (w, set, groups)
    }

    fn populate(world: &mut StoreWorld, set: &ShardedWeakSet, groups: &[ShardGroup], n: u64) {
        for i in 0..n {
            let id = ObjectId(i + 1);
            let home = groups[set.shard_for(id)].home;
            set.add(
                world,
                ObjectRecord::new(id, format!("o{i}"), &b"x"[..]),
                home,
            )
            .unwrap();
        }
    }

    #[test]
    fn router_spreads_keys_and_is_deterministic() {
        let r = ShardRouter::new(4);
        let mut seen = BTreeSet::new();
        for k in 0..512u64 {
            seen.insert(r.shard_for(ObjectId(k)));
        }
        assert_eq!(
            seen.into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "512 keys cover all four shards"
        );
        let r2 = ShardRouter::new(4);
        for k in 0..512u64 {
            assert_eq!(r.shard_for(ObjectId(k)), r2.shard_for(ObjectId(k)));
        }
    }

    #[test]
    fn router_add_remove_round_trips() {
        let mut r = ShardRouter::with_vnodes(3, 8);
        assert_eq!(r.shards(), &[0, 1, 2]);
        r.add_shard(1); // idempotent
        assert_eq!(r.len(), 3);
        r.remove_shard(1);
        assert_eq!(r.shards(), &[0, 2]);
        assert!(!r.is_empty());
        for k in 0..128u64 {
            assert_ne!(r.shard_for(ObjectId(k)), 1, "removed shard owns nothing");
        }
        r.add_shard(1);
        let fresh = ShardRouter::with_vnodes(3, 8);
        assert_eq!(r, fresh, "remove+add restores the exact ring");
    }

    #[test]
    #[should_panic(expected = "empty ring")]
    fn routing_on_empty_ring_panics() {
        let mut r = ShardRouter::with_vnodes(1, 4);
        r.remove_shard(0);
        let _ = r.shard_for(ObjectId(1));
    }

    #[test]
    fn sharded_set_interface_round_trip() {
        let (mut w, set, groups) = sharded_setup(11, 3, 2, ReadPolicy::Quorum);
        assert_eq!(set.shard_count(), 3);
        assert_eq!(set.size(&mut w).unwrap(), 0);
        populate(&mut w, &set, &groups, 12);
        assert_eq!(set.size(&mut w).unwrap(), 12);
        assert!(set.contains(&mut w, ObjectId(5)).unwrap());
        set.remove(&mut w, ObjectId(5)).unwrap();
        assert!(!set.contains(&mut w, ObjectId(5)).unwrap());
        assert_eq!(set.size(&mut w).unwrap(), 11);
        // Members landed on more than one shard (the router spreads).
        let mut nonempty = 0;
        for i in 0..set.shard_count() {
            if set.shard(i).size(&mut w).unwrap() > 0 {
                nonempty += 1;
            }
        }
        assert!(nonempty >= 2, "12 members should span several shards");
    }

    #[test]
    fn per_shard_metrics_are_recorded() {
        let (mut w, set, groups) = sharded_setup(13, 2, 3, ReadPolicy::Quorum);
        populate(&mut w, &set, &groups, 6);
        set.size(&mut w).unwrap();
        let stats = weakset_sim::metrics::per_shard_stats(w.metrics());
        assert_eq!(stats.len(), 2);
        for s in &stats {
            assert!(s.reads_ok >= 1, "shard {} read ok", s.shard);
            assert_eq!(s.reads_err, 0);
            assert!(s.read_p50_us.is_some());
            assert_eq!(s.queue_depth_max, 3, "home + 2 replicas per envelope");
        }
    }

    #[test]
    fn fan_out_iteration_conforms_per_shard_for_every_semantics() {
        let (mut w, set, groups) = sharded_setup(17, 3, 1, ReadPolicy::Primary);
        populate(&mut w, &set, &groups, 9);
        for sem in Semantics::ALL {
            let mut it = set.elements_observed(sem);
            assert_eq!(it.semantics(), sem);
            let mut got = BTreeSet::new();
            loop {
                match it.next(&mut w) {
                    IterStep::Yielded(rec) => {
                        assert!(got.insert(rec.id), "{sem}: duplicate yield {:?}", rec.id);
                    }
                    IterStep::Done => break,
                    other => panic!("{sem}: {other:?}"),
                }
            }
            assert_eq!(got.len(), 9, "{sem}");
            let comps = it.take_computations(&w);
            assert_eq!(comps.len(), 3, "{sem}: one computation per shard");
            for comp in &comps {
                check_computation(sem.figure(), comp).assert_ok();
            }
        }
    }

    #[test]
    fn shard_failure_surfaces_and_earlier_yields_stand() {
        let (mut w, set, groups) = sharded_setup(19, 2, 1, ReadPolicy::Primary);
        populate(&mut w, &set, &groups, 8);
        // Crash the SECOND shard's home: draining shard 0 succeeds,
        // then the fan-out fails when it reaches shard 1.
        w.topology_mut().crash(groups[1].home);
        let (got, end) = set.collect(&mut w, Semantics::GrowOnly);
        assert!(matches!(
            end,
            IterStep::Failed(Failure::MembershipUnavailable(_))
        ));
        let shard0: BTreeSet<ObjectId> = (1..=8)
            .map(ObjectId)
            .filter(|&id| set.shard_for(id) == 0)
            .collect();
        assert_eq!(
            got.iter().map(|r| r.id).collect::<BTreeSet<_>>(),
            shard0,
            "shard 0 drained fully before the failure"
        );
    }

    proptest! {
        /// Consistent-hash stability: growing the ring only moves keys
        /// to the new shard; shrinking only moves the removed shard's
        /// keys.
        #[test]
        fn routing_is_stable_under_shard_add_remove(
            keys in proptest::collection::vec(any::<u64>(), 1..200),
            shards in 1usize..8,
        ) {
            let before = ShardRouter::with_vnodes(shards, 16);
            let mut grown = before.clone();
            grown.add_shard(shards as u32);
            for &k in &keys {
                let old = before.shard_for(ObjectId(k));
                let new = grown.shard_for(ObjectId(k));
                prop_assert!(
                    new == old || new == shards as u32,
                    "key {k} moved {old} -> {new}, not to the new shard"
                );
            }
            let victim = (keys[0] % shards as u64) as u32;
            let mut shrunk = before.clone();
            shrunk.remove_shard(victim);
            if !shrunk.is_empty() {
                for &k in &keys {
                    let old = before.shard_for(ObjectId(k));
                    let new = shrunk.shard_for(ObjectId(k));
                    if old != victim {
                        prop_assert_eq!(new, old, "unowned key {} moved on remove", k);
                    } else {
                        prop_assert_ne!(new, victim);
                    }
                }
            }
        }

        /// Fig 5 (grow-only) across shards under partitions: with at
        /// most a minority of each shard group's replicas cut off,
        /// quorum reads still see every member and the fan-out yields
        /// EXACTLY the union of the shards' members — every member
        /// once, no duplicates, no phantoms.
        #[test]
        fn multi_shard_grow_only_yields_exactly_the_union_under_partition(
            seed in 0u64..500,
            n_members in 0u64..24,
            cut_mask in 0usize..8,
            n_shards in 1usize..4,
        ) {
            let (mut w, set, groups) =
                sharded_setup(seed, n_shards, 3, ReadPolicy::Quorum);
            populate(&mut w, &set, &groups, n_members);
            // Cut at most ONE replica per shard group (a minority of
            // its 3 nodes); homes and the client stay connected, so
            // every member object remains reachable.
            let cut: Vec<_> = groups
                .iter()
                .enumerate()
                .filter(|(g, _)| cut_mask & (1 << g) != 0)
                .map(|(_, grp)| grp.replicas[0])
                .collect();
            if !cut.is_empty() {
                w.topology_mut().partition(&cut);
            }
            let mut it = set.elements_observed(Semantics::GrowOnly);
            let mut got = Vec::new();
            loop {
                match it.next(&mut w) {
                    IterStep::Yielded(rec) => got.push(rec.id),
                    IterStep::Done => break,
                    other => prop_assert!(false, "unexpected step: {other:?}"),
                }
            }
            let expect: BTreeSet<ObjectId> = (1..=n_members).map(ObjectId).collect();
            let got_set: BTreeSet<ObjectId> = got.iter().copied().collect();
            prop_assert_eq!(got.len(), got_set.len(), "duplicate yields");
            prop_assert_eq!(&got_set, &expect, "yields != union of shard members");
            for comp in it.take_computations(&w) {
                check_computation(Semantics::GrowOnly.figure(), &comp).assert_ok();
            }
        }
    }
}
