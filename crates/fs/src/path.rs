//! File system paths.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An absolute, normalized file system path (`/`, `/usr/wing/faces`).
///
/// ```
/// use weakset_fs::path::FsPath;
/// let p = FsPath::root().join("usr").join("wing");
/// assert_eq!(p.to_string(), "/usr/wing");
/// assert_eq!(p.parent().unwrap(), FsPath::root().join("usr"));
/// assert_eq!(p.name(), Some("wing"));
/// ```
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FsPath {
    components: Vec<String>,
}

/// Error parsing a path string.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsePathError(String);

impl fmt::Display for ParsePathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid path: {}", self.0)
    }
}

impl std::error::Error for ParsePathError {}

impl FsPath {
    /// The root directory `/`.
    pub fn root() -> Self {
        FsPath {
            components: Vec::new(),
        }
    }

    /// Parses an absolute path.
    ///
    /// # Errors
    ///
    /// Rejects relative paths, empty components, and components containing
    /// `/`.
    pub fn parse(s: &str) -> Result<Self, ParsePathError> {
        if !s.starts_with('/') {
            return Err(ParsePathError(format!("{s:?} is not absolute")));
        }
        let mut components = Vec::new();
        for part in s.split('/').skip(1) {
            if part.is_empty() {
                if s == "/" {
                    break;
                }
                return Err(ParsePathError(format!("{s:?} has an empty component")));
            }
            components.push(part.to_string());
        }
        Ok(FsPath { components })
    }

    /// Appends one component.
    ///
    /// # Panics
    ///
    /// Panics if `name` is empty or contains `/`.
    #[must_use]
    pub fn join(&self, name: impl Into<String>) -> FsPath {
        let name = name.into();
        assert!(
            !name.is_empty() && !name.contains('/'),
            "invalid path component {name:?}"
        );
        let mut components = self.components.clone();
        components.push(name);
        FsPath { components }
    }

    /// The containing directory, or `None` for the root.
    pub fn parent(&self) -> Option<FsPath> {
        if self.components.is_empty() {
            return None;
        }
        Some(FsPath {
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// The final component, or `None` for the root.
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// Number of components (0 for the root).
    pub fn depth(&self) -> usize {
        self.components.len()
    }

    /// True for `/`.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// The components in order.
    pub fn components(&self) -> impl Iterator<Item = &str> {
        self.components.iter().map(String::as_str)
    }

    /// True when `self` is `prefix` or lies below it.
    pub fn starts_with(&self, prefix: &FsPath) -> bool {
        self.components.len() >= prefix.components.len()
            && self.components[..prefix.components.len()] == prefix.components[..]
    }
}

impl fmt::Display for FsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.components.is_empty() {
            return f.write_str("/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for FsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

impl std::str::FromStr for FsPath {
    type Err = ParsePathError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        FsPath::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_properties() {
        let r = FsPath::root();
        assert!(r.is_root());
        assert_eq!(r.depth(), 0);
        assert_eq!(r.to_string(), "/");
        assert_eq!(r.parent(), None);
        assert_eq!(r.name(), None);
        assert_eq!(FsPath::parse("/").unwrap(), r);
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["/a", "/a/b", "/usr/wing/f.face"] {
            assert_eq!(FsPath::parse(s).unwrap().to_string(), s);
        }
    }

    #[test]
    fn rejects_bad_paths() {
        assert!(FsPath::parse("relative").is_err());
        assert!(FsPath::parse("").is_err());
        assert!(FsPath::parse("/a//b").is_err());
        let e = FsPath::parse("x").unwrap_err();
        assert!(e.to_string().contains("not absolute"));
    }

    #[test]
    fn join_and_parent() {
        let p = FsPath::root().join("a").join("b");
        assert_eq!(p.depth(), 2);
        assert_eq!(p.name(), Some("b"));
        assert_eq!(p.parent().unwrap().to_string(), "/a");
        assert_eq!(p.components().collect::<Vec<_>>(), vec!["a", "b"]);
    }

    #[test]
    #[should_panic(expected = "invalid path component")]
    fn join_rejects_slash() {
        let _ = FsPath::root().join("a/b");
    }

    #[test]
    fn from_str_works() {
        let p: FsPath = "/x/y".parse().unwrap();
        assert_eq!(p.depth(), 2);
    }

    #[test]
    fn ordering_is_lexicographic_by_component() {
        let a = FsPath::parse("/a").unwrap();
        let ab = FsPath::parse("/a/b").unwrap();
        let b = FsPath::parse("/b").unwrap();
        assert!(a < ab);
        assert!(ab < b);
    }
}
