//! # weakset-fs
//!
//! A simulated wide-area distributed file system — the context in which
//! the paper's *dynamic sets* were conceived (§1.1): directories whose
//! files live on many nodes, mobile clients that disconnect, and two ways
//! to enumerate a directory:
//!
//! * the strict Unix-like [`fs::FileSystem::ls`], which must access every
//!   file before returning anything and fails outright under partitions;
//! * [`fs::FileSystem::dynls`], a dynamic-set listing that streams entries
//!   unordered as parallel fetches complete, yields partial results under
//!   failures, and resumes after heals.
//!
//! Supporting cast: [`path::FsPath`], [`mobile::MobileClient`] for
//! disconnection scenarios, and [`workload`] generators for the
//! experiments.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fs;
pub mod mobile;
pub mod path;
pub mod workload;

/// One-stop imports for file-system users.
pub mod prelude {
    pub use crate::fs::{DirEntry, DynLs, DynLsStep, EntryKind, FileSystem, FindStream, FsError};
    pub use crate::mobile::MobileClient;
    pub use crate::path::FsPath;
    pub use crate::workload::{flat_dir, TreeSpec, TreeStats};
}
