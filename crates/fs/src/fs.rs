//! A wide-area distributed file system over the object store.
//!
//! Directories are store *collections* (their membership lists live on a
//! home node); files and directory-entry markers are store *objects*
//! scattered across volume nodes. That is exactly the paper's §1.1
//! setting: "files and subdirectories in the same directory may reside on
//! nodes different from each other and/or from the directory itself".
//!
//! Two directory-listing implementations are provided:
//!
//! * [`FileSystem::ls`] — the strict Unix-like baseline: reads the
//!   membership, fetches **every** entry, sorts alphabetically, and
//!   returns all-or-nothing. Under failures it returns an error (and in
//!   the worst case the paper notes such a design may simply never
//!   complete; here the RPC timeout bounds it).
//! * [`FileSystem::dynls`] — `ls` over a dynamic set: entries stream back
//!   unordered as they arrive, in parallel, and unreachable entries are
//!   reported as pending instead of failing the whole listing.

use crate::path::FsPath;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use weakset::prelude::{DynamicSet, IterStep, PrefetchConfig};
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_store::collection::MemberEntry;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{
    CollectionRef, Query, ReadPolicy, StoreClient, StoreError, StoreWorld,
};

/// What kind of thing a directory entry names.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EntryKind {
    /// A regular file.
    File,
    /// A subdirectory.
    Dir,
}

/// One entry of a directory listing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DirEntry {
    /// The entry's name within its directory.
    pub name: String,
    /// File or directory.
    pub kind: EntryKind,
    /// Payload size in bytes (0 for directories).
    pub size: usize,
    /// The underlying object id.
    pub id: ObjectId,
}

impl DirEntry {
    fn from_record(rec: &ObjectRecord) -> Self {
        let kind = if rec.attr("kind") == Some("dir") {
            EntryKind::Dir
        } else {
            EntryKind::File
        };
        DirEntry {
            name: rec.name.clone(),
            kind,
            size: rec.size(),
            id: rec.id,
        }
    }
}

/// Why a file system operation failed.
#[derive(Clone, Debug, PartialEq)]
pub enum FsError {
    /// The path (or its parent) does not exist in the namespace.
    NotFound(FsPath),
    /// The path already exists.
    AlreadyExists(FsPath),
    /// A store/network operation failed.
    Store(StoreError),
    /// Strict `ls` could not fetch every entry.
    Incomplete {
        /// Entries fetched before the failure.
        fetched: usize,
        /// Total entries in the directory.
        total: usize,
    },
}

impl fmt::Display for FsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsError::NotFound(p) => write!(f, "no such file or directory: {p}"),
            FsError::AlreadyExists(p) => write!(f, "already exists: {p}"),
            FsError::Store(e) => write!(f, "store failure: {e}"),
            FsError::Incomplete { fetched, total } => {
                write!(
                    f,
                    "listing incomplete: {fetched} of {total} entries fetched"
                )
            }
        }
    }
}

impl std::error::Error for FsError {}

impl From<StoreError> for FsError {
    fn from(e: StoreError) -> Self {
        FsError::Store(e)
    }
}

/// A client view of the distributed file system.
///
/// The namespace table (path → collection/object) is client-side state,
/// like a mount table plus a lookup cache; the authoritative membership
/// and payloads live in the store.
#[derive(Clone, Debug)]
pub struct FileSystem {
    client: StoreClient,
    dirs: BTreeMap<FsPath, CollectionRef>,
    files: BTreeMap<FsPath, MemberEntry>,
    next_obj: u64,
    next_coll: u64,
    replicas: Vec<NodeId>,
}

impl FileSystem {
    /// Creates a file system whose root directory's membership list lives
    /// on `root_home`, operated by a client on `client_node`.
    ///
    /// # Errors
    ///
    /// [`FsError::Store`] when the root collection cannot be created.
    pub fn format(
        world: &mut StoreWorld,
        client_node: NodeId,
        root_home: NodeId,
        timeout: SimDuration,
    ) -> Result<Self, FsError> {
        let client = StoreClient::new(client_node, timeout);
        let mut fs = FileSystem {
            client,
            dirs: BTreeMap::new(),
            files: BTreeMap::new(),
            next_obj: 1,
            next_coll: 1,
            replicas: Vec::new(),
        };
        let root = CollectionRef::unreplicated(CollectionId(0), root_home);
        fs.client.create_collection(world, &root)?;
        fs.dirs.insert(FsPath::root(), root);
        Ok(fs)
    }

    /// Replicates every *subsequently created* directory's membership list
    /// onto these nodes.
    #[must_use]
    pub fn with_dir_replicas(mut self, replicas: Vec<NodeId>) -> Self {
        self.replicas = replicas;
        self
    }

    /// A second client view of the same namespace from another node
    /// (e.g. a concurrent mutator or a mobile client).
    pub fn view_from(&self, client_node: NodeId, timeout: SimDuration) -> FileSystem {
        FileSystem {
            client: StoreClient::new(client_node, timeout),
            dirs: self.dirs.clone(),
            files: self.files.clone(),
            // Disjoint id ranges so two views can create objects without
            // colliding (a real FS would allocate ids at the server).
            next_obj: self.next_obj + 1_000_000,
            next_coll: self.next_coll + 1_000_000,
            replicas: self.replicas.clone(),
        }
    }

    /// The client this view operates through.
    pub fn client(&self) -> &StoreClient {
        &self.client
    }

    /// The collection backing a directory.
    pub fn dir(&self, path: &FsPath) -> Option<&CollectionRef> {
        self.dirs.get(path)
    }

    /// The member entry backing a file.
    pub fn file(&self, path: &FsPath) -> Option<MemberEntry> {
        self.files.get(path).copied()
    }

    /// Known directories (client-side namespace).
    pub fn dir_paths(&self) -> impl Iterator<Item = &FsPath> {
        self.dirs.keys()
    }

    fn fresh_obj(&mut self) -> ObjectId {
        let id = ObjectId(self.next_obj);
        self.next_obj += 1;
        id
    }

    fn fresh_coll(&mut self) -> CollectionId {
        let id = CollectionId(self.next_coll);
        self.next_coll += 1;
        id
    }

    fn parent_of(&self, path: &FsPath) -> Result<CollectionRef, FsError> {
        let parent = path
            .parent()
            .ok_or_else(|| FsError::AlreadyExists(path.clone()))?;
        self.dirs
            .get(&parent)
            .cloned()
            .ok_or(FsError::NotFound(parent))
    }

    /// Creates a directory whose membership list lives on `home`. A
    /// directory-entry marker object is stored on `home` and linked into
    /// the parent directory.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] if the parent does not exist,
    /// [`FsError::AlreadyExists`] for duplicates, [`FsError::Store`] on
    /// communication failure.
    pub fn mkdir(
        &mut self,
        world: &mut StoreWorld,
        path: &FsPath,
        home: NodeId,
    ) -> Result<CollectionRef, FsError> {
        if self.dirs.contains_key(path) || self.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.clone()));
        }
        let parent = self.parent_of(path)?;
        let name = path.name().expect("non-root path has a name").to_string();
        let coll = self.fresh_coll();
        let cref = CollectionRef {
            id: coll,
            home,
            replicas: self.replicas.clone(),
        };
        self.client.create_collection(world, &cref)?;
        // The dirent marker makes the directory visible in listings.
        let marker = self.fresh_obj();
        let rec = ObjectRecord::new(marker, name, &b""[..])
            .with_attr("kind", "dir")
            .with_attr("coll", coll.0.to_string());
        self.client.put_object(world, home, rec)?;
        self.client
            .add_member(world, &parent, MemberEntry { elem: marker, home })?;
        self.dirs.insert(path.clone(), cref.clone());
        Ok(cref)
    }

    /// Creates a file stored on `home` and links it into its parent
    /// directory.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::mkdir`].
    pub fn create_file(
        &mut self,
        world: &mut StoreWorld,
        path: &FsPath,
        content: &[u8],
        home: NodeId,
    ) -> Result<ObjectId, FsError> {
        self.create_file_with_attrs(world, path, content, home, &[])
    }

    /// [`FileSystem::create_file`] with extra queryable attributes.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::mkdir`].
    pub fn create_file_with_attrs(
        &mut self,
        world: &mut StoreWorld,
        path: &FsPath,
        content: &[u8],
        home: NodeId,
        attrs: &[(&str, &str)],
    ) -> Result<ObjectId, FsError> {
        if self.dirs.contains_key(path) || self.files.contains_key(path) {
            return Err(FsError::AlreadyExists(path.clone()));
        }
        let parent = self.parent_of(path)?;
        let name = path.name().expect("non-root path has a name").to_string();
        let id = self.fresh_obj();
        let mut rec = ObjectRecord::new(id, name, content.to_vec()).with_attr("kind", "file");
        for (k, v) in attrs {
            rec = rec.with_attr(*k, *v);
        }
        self.client.put_object(world, home, rec)?;
        self.client
            .add_member(world, &parent, MemberEntry { elem: id, home })?;
        self.files
            .insert(path.clone(), MemberEntry { elem: id, home });
        Ok(id)
    }

    /// Removes a file from its directory (the payload object is deleted
    /// too).
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown paths, [`FsError::Store`] on
    /// communication failure.
    pub fn unlink(&mut self, world: &mut StoreWorld, path: &FsPath) -> Result<(), FsError> {
        let entry = self
            .files
            .get(path)
            .copied()
            .ok_or(FsError::NotFound(path.clone()))?;
        let parent = self.parent_of(path)?;
        self.client.remove_member(world, &parent, entry.elem)?;
        let _ = self.client.delete_object(world, entry.home, entry.elem);
        self.files.remove(path);
        Ok(())
    }

    /// Metadata for one file or directory, fetched from its home node.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown paths, [`FsError::Store`] on
    /// communication failure.
    pub fn stat(&self, world: &mut StoreWorld, path: &FsPath) -> Result<DirEntry, FsError> {
        if let Some(entry) = self.files.get(path) {
            let rec = self.client.fetch_object(world, entry.home, entry.elem)?;
            return Ok(DirEntry::from_record(&rec));
        }
        if path.is_root() {
            return Ok(DirEntry {
                name: "/".to_string(),
                kind: EntryKind::Dir,
                size: 0,
                id: ObjectId(0),
            });
        }
        if self.dirs.contains_key(path) {
            // Directories stat via their dirent marker in the parent.
            let name = path.name().expect("non-root").to_string();
            let parent = self.parent_of(path)?;
            let read = self
                .client
                .read_members(world, &parent, ReadPolicy::Primary)?;
            for m in &read.entries {
                if let Ok(rec) = self.client.fetch_object(world, m.home, m.elem) {
                    if rec.name == name && rec.attr("kind") == Some("dir") {
                        return Ok(DirEntry::from_record(&rec));
                    }
                }
            }
        }
        Err(FsError::NotFound(path.clone()))
    }

    /// Renames a file, possibly across directories: the member moves from
    /// the old parent's collection to the new one and the object's name
    /// is rewritten in place.
    ///
    /// Not atomic — exactly the weak-set behaviour §1 warns about: a
    /// concurrent listing may observe the file in neither directory (the
    /// remove landed, the add has not) or with its old name.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::AlreadyExists`] /
    /// [`FsError::Store`].
    pub fn rename(
        &mut self,
        world: &mut StoreWorld,
        from: &FsPath,
        to: &FsPath,
    ) -> Result<(), FsError> {
        let entry = self
            .files
            .get(from)
            .copied()
            .ok_or(FsError::NotFound(from.clone()))?;
        if self.files.contains_key(to) || self.dirs.contains_key(to) {
            return Err(FsError::AlreadyExists(to.clone()));
        }
        let new_parent = self.parent_of(to)?;
        let old_parent = self.parent_of(from)?;
        // Rewrite the object's name first so a window where the file is
        // linked nowhere never shows a stale name afterwards.
        let mut rec = self.client.fetch_object(world, entry.home, entry.elem)?;
        rec.name = to.name().expect("non-root").to_string();
        self.client.put_object(world, entry.home, rec)?;
        self.client.remove_member(world, &old_parent, entry.elem)?;
        self.client.add_member(world, &new_parent, entry)?;
        self.files.remove(from);
        self.files.insert(to.clone(), entry);
        Ok(())
    }

    /// Reads one file's contents.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] / [`FsError::Store`].
    pub fn read_file(
        &self,
        world: &mut StoreWorld,
        path: &FsPath,
    ) -> Result<ObjectRecord, FsError> {
        let entry = self
            .files
            .get(path)
            .ok_or(FsError::NotFound(path.clone()))?;
        Ok(self.client.fetch_object(world, entry.home, entry.elem)?)
    }

    /// The strict baseline `ls`: fetch *all* entries, sort by name,
    /// all-or-nothing.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown directories, [`FsError::Store`]
    /// when the membership cannot be read, and [`FsError::Incomplete`]
    /// when any entry fetch fails — partial listings are not returned.
    pub fn ls(&self, world: &mut StoreWorld, path: &FsPath) -> Result<Vec<DirEntry>, FsError> {
        let cref = self.dirs.get(path).ok_or(FsError::NotFound(path.clone()))?;
        let read = self.client.read_members(world, cref, ReadPolicy::Primary)?;
        let total = read.entries.len();
        let mut out = Vec::with_capacity(total);
        for m in &read.entries {
            match self.client.fetch_object(world, m.home, m.elem) {
                Ok(rec) => out.push(DirEntry::from_record(&rec)),
                Err(_) => {
                    return Err(FsError::Incomplete {
                        fetched: out.len(),
                        total,
                    })
                }
            }
        }
        out.sort_by(|a, b| a.name.cmp(&b.name));
        Ok(out)
    }

    /// `ls` over a dynamic set: opens a streaming, unordered, partial
    /// listing.
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] for unknown directories, [`FsError::Store`]
    /// when the membership cannot be read at open time.
    pub fn dynls(
        &self,
        world: &mut StoreWorld,
        path: &FsPath,
        cfg: PrefetchConfig,
    ) -> Result<DynLs, FsError> {
        self.dynls_with_policy(world, path, ReadPolicy::Primary, cfg)
    }

    /// [`FileSystem::dynls`] with an explicit membership read policy —
    /// with directory replicas ([`FileSystem::with_dir_replicas`]),
    /// `ReadPolicy::Any` keeps listings available through a primary
    /// outage at the price of possibly stale membership.
    ///
    /// # Errors
    ///
    /// As for [`FileSystem::dynls`].
    pub fn dynls_with_policy(
        &self,
        world: &mut StoreWorld,
        path: &FsPath,
        policy: ReadPolicy,
        cfg: PrefetchConfig,
    ) -> Result<DynLs, FsError> {
        let cref = self.dirs.get(path).ok_or(FsError::NotFound(path.clone()))?;
        let set = DynamicSet::open_collection(world, &self.client, cref, policy, cfg)?;
        Ok(DynLs { set })
    }
}

impl FileSystem {
    /// Recursive predicate search ("finding all files that satisfy a
    /// given predicate", §1.1): gathers the membership of every known
    /// directory at or below `root`, then streams matching files back
    /// with dynamic-set semantics. Directories whose membership list is
    /// unreachable are *skipped* — partial results, reported in
    /// [`FindStream::dirs_skipped`].
    ///
    /// # Errors
    ///
    /// [`FsError::NotFound`] when `root` is not a known directory.
    pub fn find(
        &self,
        world: &mut StoreWorld,
        root: &FsPath,
        query: &Query,
        cfg: PrefetchConfig,
    ) -> Result<FindStream, FsError> {
        if !self.dirs.contains_key(root) {
            return Err(FsError::NotFound(root.clone()));
        }
        let mut members: Vec<MemberEntry> = Vec::new();
        let mut dirs_skipped = 0;
        for (path, cref) in &self.dirs {
            if !path.starts_with(root) {
                continue;
            }
            match self.client.read_members(world, cref, ReadPolicy::Primary) {
                Ok(read) => members.extend(read.entries),
                Err(_) => dirs_skipped += 1,
            }
        }
        members.sort_by_key(|m| m.elem);
        members.dedup_by_key(|m| m.elem);
        let set = DynamicSet::over_members(world, &self.client, members, cfg);
        Ok(FindStream {
            set,
            query: query.clone(),
            dirs_skipped,
        })
    }
}

/// A streaming recursive search: fetched objects are filtered by the
/// query client-side; directory-entry markers are skipped.
#[derive(Debug)]
pub struct FindStream {
    set: DynamicSet,
    query: Query,
    dirs_skipped: usize,
}

impl FindStream {
    /// Directories the traversal could not read (unreachable membership
    /// lists).
    pub fn dirs_skipped(&self) -> usize {
        self.dirs_skipped
    }

    /// Candidate entries discovered (before filtering).
    pub fn candidates(&self) -> usize {
        self.set.members_found()
    }

    /// The next matching file, unordered.
    pub fn next(&mut self, world: &mut StoreWorld) -> DynLsStep {
        loop {
            match self.set.next(world) {
                IterStep::Yielded(rec) => {
                    let is_dirent = rec.attr("kind") == Some("dir");
                    if !is_dirent && self.query.matches(&rec) {
                        return DynLsStep::Entry(DirEntry::from_record(&rec));
                    }
                }
                IterStep::Done => return DynLsStep::Complete,
                IterStep::Blocked => {
                    return DynLsStep::Partial {
                        unreachable: self.set.pending().len(),
                    }
                }
                IterStep::Failed(_) => unreachable!("dynamic sets do not fail"),
            }
        }
    }

    /// Retries entries previously reported unreachable.
    pub fn retry(&mut self) {
        self.set.retry_pending();
    }

    /// Drains everything currently fetchable.
    pub fn drain_available(&mut self, world: &mut StoreWorld) -> (Vec<DirEntry>, DynLsStep) {
        let mut out = Vec::new();
        loop {
            match self.next(world) {
                DynLsStep::Entry(e) => out.push(e),
                step => return (out, step),
            }
        }
    }
}

/// A streaming directory listing with dynamic-set semantics.
#[derive(Debug)]
pub struct DynLs {
    set: DynamicSet,
}

impl DynLs {
    /// Total entries discovered at open time.
    pub fn total(&self) -> usize {
        self.set.members_found()
    }

    /// The next entry to arrive, unordered.
    pub fn next(&mut self, world: &mut StoreWorld) -> DynLsStep {
        match self.set.next(world) {
            IterStep::Yielded(rec) => DynLsStep::Entry(DirEntry::from_record(&rec)),
            IterStep::Done => DynLsStep::Complete,
            IterStep::Blocked => DynLsStep::Partial {
                unreachable: self.set.pending().len(),
            },
            IterStep::Failed(_) => unreachable!("dynamic sets do not fail"),
        }
    }

    /// Retries entries previously reported unreachable.
    pub fn retry(&mut self) {
        self.set.retry_pending();
    }

    /// Drives the listing until it completes or only unreachable entries
    /// remain, returning what arrived.
    pub fn drain_available(&mut self, world: &mut StoreWorld) -> (Vec<DirEntry>, DynLsStep) {
        let mut out = Vec::new();
        loop {
            match self.next(world) {
                DynLsStep::Entry(e) => out.push(e),
                step => return (out, step),
            }
        }
    }
}

/// Result of polling a [`DynLs`].
#[derive(Clone, Debug, PartialEq)]
pub enum DynLsStep {
    /// An entry arrived.
    Entry(DirEntry),
    /// Every entry has been listed.
    Complete,
    /// Only unreachable entries remain (`unreachable` of them); retry
    /// later.
    Partial {
        /// Entries that could not be fetched.
        unreachable: usize,
    },
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::prelude::StoreServer;

    fn setup(n: usize) -> (StoreWorld, FileSystem, Vec<NodeId>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let servers: Vec<_> = t.add_servers("vol", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(41),
            t,
            LatencyModel::Constant(SimDuration::from_millis(2)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(StoreServer::new()));
        }
        let fs = FileSystem::format(&mut w, cn, servers[0], SimDuration::from_millis(100)).unwrap();
        (w, fs, servers)
    }

    #[test]
    fn mkdir_create_ls_round_trip() {
        let (mut w, mut fs, servers) = setup(2);
        let dir = FsPath::parse("/docs").unwrap();
        fs.mkdir(&mut w, &dir, servers[1]).unwrap();
        fs.create_file(&mut w, &dir.join("b.txt"), b"bbb", servers[0])
            .unwrap();
        fs.create_file(&mut w, &dir.join("a.txt"), b"aa", servers[1])
            .unwrap();
        let listing = fs.ls(&mut w, &dir).unwrap();
        assert_eq!(listing.len(), 2);
        // Strict ls is alphabetical.
        assert_eq!(listing[0].name, "a.txt");
        assert_eq!(listing[0].size, 2);
        assert_eq!(listing[1].name, "b.txt");
        assert_eq!(listing[1].kind, EntryKind::File);
        // Root lists the subdirectory marker.
        let root = fs.ls(&mut w, &FsPath::root()).unwrap();
        assert_eq!(root.len(), 1);
        assert_eq!(root[0].kind, EntryKind::Dir);
        assert_eq!(root[0].name, "docs");
    }

    #[test]
    fn namespace_errors() {
        let (mut w, mut fs, servers) = setup(1);
        let p = FsPath::parse("/x/y").unwrap();
        assert!(matches!(
            fs.create_file(&mut w, &p, b"", servers[0]),
            Err(FsError::NotFound(_))
        ));
        let d = FsPath::parse("/x").unwrap();
        fs.mkdir(&mut w, &d, servers[0]).unwrap();
        assert!(matches!(
            fs.mkdir(&mut w, &d, servers[0]),
            Err(FsError::AlreadyExists(_))
        ));
        fs.create_file(&mut w, &p, b"hi", servers[0]).unwrap();
        assert!(matches!(
            fs.create_file(&mut w, &p, b"", servers[0]),
            Err(FsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.ls(&mut w, &FsPath::parse("/nope").unwrap()),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn read_and_unlink() {
        let (mut w, mut fs, servers) = setup(1);
        let p = FsPath::parse("/f").unwrap();
        fs.create_file(&mut w, &p, b"payload", servers[0]).unwrap();
        let rec = fs.read_file(&mut w, &p).unwrap();
        assert_eq!(&rec.payload[..], b"payload");
        fs.unlink(&mut w, &p).unwrap();
        assert!(matches!(
            fs.read_file(&mut w, &p),
            Err(FsError::NotFound(_))
        ));
        assert!(fs.ls(&mut w, &FsPath::root()).unwrap().is_empty());
    }

    #[test]
    fn strict_ls_fails_entirely_under_partition() {
        let (mut w, mut fs, servers) = setup(3);
        let dir = FsPath::root();
        for (i, &s) in servers.iter().enumerate() {
            fs.create_file(&mut w, &dir.join(format!("f{i}")), b"x", s)
                .unwrap();
        }
        w.topology_mut().partition(&[servers[2]]);
        let err = fs.ls(&mut w, &dir).unwrap_err();
        assert!(matches!(err, FsError::Incomplete { total: 3, .. }), "{err}");
        assert!(err.to_string().contains("of 3"));
    }

    #[test]
    fn dynls_returns_partial_results_under_partition() {
        let (mut w, mut fs, servers) = setup(3);
        let dir = FsPath::root();
        for (i, &s) in servers.iter().enumerate() {
            fs.create_file(&mut w, &dir.join(format!("f{i}")), b"x", s)
                .unwrap();
        }
        w.topology_mut().partition(&[servers[2]]);
        let mut listing = fs.dynls(&mut w, &dir, PrefetchConfig::default()).unwrap();
        assert_eq!(listing.total(), 3);
        let (entries, end) = listing.drain_available(&mut w);
        assert_eq!(entries.len(), 2);
        assert_eq!(end, DynLsStep::Partial { unreachable: 1 });
        // Heal and retry: the remaining entry arrives.
        w.topology_mut().heal_partition();
        listing.retry();
        let (more, end2) = listing.drain_available(&mut w);
        assert_eq!(more.len(), 1);
        assert_eq!(end2, DynLsStep::Complete);
    }

    #[test]
    fn find_matches_across_the_tree() {
        let (mut w, mut fs, servers) = setup(3);
        let docs = FsPath::parse("/docs").unwrap();
        let pics = FsPath::parse("/docs/pics").unwrap();
        fs.mkdir(&mut w, &docs, servers[1]).unwrap();
        fs.mkdir(&mut w, &pics, servers[2]).unwrap();
        fs.create_file_with_attrs(
            &mut w,
            &docs.join("a.face"),
            b"A",
            servers[0],
            &[("owner", "wing")],
        )
        .unwrap();
        fs.create_file_with_attrs(
            &mut w,
            &pics.join("b.face"),
            b"B",
            servers[1],
            &[("owner", "wing")],
        )
        .unwrap();
        fs.create_file_with_attrs(
            &mut w,
            &pics.join("c.txt"),
            b"C",
            servers[2],
            &[("owner", "steere")],
        )
        .unwrap();
        let mut stream = fs
            .find(
                &mut w,
                &FsPath::root(),
                &Query::NameSuffix(".face".into()),
                weakset::prelude::PrefetchConfig::default(),
            )
            .unwrap();
        // Candidates include everything (files + dirent markers).
        assert_eq!(stream.candidates(), 5);
        assert_eq!(stream.dirs_skipped(), 0);
        let (hits, end) = stream.drain_available(&mut w);
        assert_eq!(end, DynLsStep::Complete);
        let mut names: Vec<_> = hits.iter().map(|e| e.name.clone()).collect();
        names.sort();
        assert_eq!(names, vec!["a.face", "b.face"]);
    }

    #[test]
    fn find_scoped_to_a_subtree() {
        let (mut w, mut fs, servers) = setup(2);
        let a = FsPath::parse("/a").unwrap();
        let b = FsPath::parse("/b").unwrap();
        fs.mkdir(&mut w, &a, servers[0]).unwrap();
        fs.mkdir(&mut w, &b, servers[1]).unwrap();
        fs.create_file(&mut w, &a.join("inside"), b"x", servers[0])
            .unwrap();
        fs.create_file(&mut w, &b.join("outside"), b"x", servers[1])
            .unwrap();
        let mut stream = fs
            .find(
                &mut w,
                &a,
                &Query::All,
                weakset::prelude::PrefetchConfig::default(),
            )
            .unwrap();
        let (hits, _) = stream.drain_available(&mut w);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "inside");
        assert!(matches!(
            fs.find(
                &mut w,
                &FsPath::parse("/missing").unwrap(),
                &Query::All,
                weakset::prelude::PrefetchConfig::default()
            ),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn find_skips_unreachable_directories() {
        let (mut w, mut fs, servers) = setup(3);
        let far = FsPath::parse("/far").unwrap();
        fs.mkdir(&mut w, &far, servers[2]).unwrap();
        fs.create_file(&mut w, &far.join("hidden"), b"x", servers[2])
            .unwrap();
        fs.create_file(&mut w, &FsPath::parse("/near").unwrap(), b"x", servers[0])
            .unwrap();
        w.topology_mut().partition(&[servers[2]]);
        let mut stream = fs
            .find(
                &mut w,
                &FsPath::root(),
                &Query::All,
                weakset::prelude::PrefetchConfig::default(),
            )
            .unwrap();
        assert_eq!(stream.dirs_skipped(), 1);
        let (hits, end) = stream.drain_available(&mut w);
        // "near" plus the /far dirent marker is filtered out; the marker
        // lives on the cut server so it is pending, not listed.
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].name, "near");
        assert!(matches!(end, DynLsStep::Partial { .. }));
    }

    #[test]
    fn view_from_shares_namespace() {
        let (mut w, mut fs, servers) = setup(2);
        let dir = FsPath::parse("/shared").unwrap();
        fs.mkdir(&mut w, &dir, servers[0]).unwrap();
        let mut other = fs.view_from(servers[1], SimDuration::from_millis(100));
        other
            .create_file(&mut w, &dir.join("from-other"), b"x", servers[1])
            .unwrap();
        // The original view lists the new file (membership is shared).
        let listing = fs.ls(&mut w, &dir).unwrap();
        assert_eq!(listing.len(), 1);
        assert_eq!(listing[0].name, "from-other");
    }

    #[test]
    fn replicated_directories_list_through_primary_outage() {
        let (mut w, fs, servers) = setup(3);
        let mut fs = fs.with_dir_replicas(vec![servers[1], servers[2]]);
        let d = FsPath::parse("/shared").unwrap();
        fs.mkdir(&mut w, &d, servers[0]).unwrap();
        fs.create_file(&mut w, &d.join("a"), b"x", servers[1])
            .unwrap();
        fs.create_file(&mut w, &d.join("b"), b"y", servers[2])
            .unwrap();
        // The directory's primary (servers[0]) goes down.
        w.topology_mut().crash(servers[0]);
        // Primary-policy listing dies at open...
        assert!(fs
            .dynls(&mut w, &d, weakset::prelude::PrefetchConfig::default())
            .is_err());
        // ...but Any-policy reads a replica and lists both files.
        let mut listing = fs
            .dynls_with_policy(
                &mut w,
                &d,
                ReadPolicy::Any,
                weakset::prelude::PrefetchConfig::default(),
            )
            .unwrap();
        let (entries, end) = listing.drain_available(&mut w);
        assert_eq!(end, DynLsStep::Complete);
        assert_eq!(entries.len(), 2);
    }

    #[test]
    fn stat_reports_metadata() {
        let (mut w, mut fs, servers) = setup(2);
        let d = FsPath::parse("/d").unwrap();
        fs.mkdir(&mut w, &d, servers[1]).unwrap();
        let f = d.join("file.bin");
        fs.create_file(&mut w, &f, &[0u8; 100], servers[0]).unwrap();
        let st = fs.stat(&mut w, &f).unwrap();
        assert_eq!(st.kind, EntryKind::File);
        assert_eq!(st.size, 100);
        assert_eq!(st.name, "file.bin");
        let sd = fs.stat(&mut w, &d).unwrap();
        assert_eq!(sd.kind, EntryKind::Dir);
        let root = fs.stat(&mut w, &FsPath::root()).unwrap();
        assert_eq!(root.kind, EntryKind::Dir);
        assert!(matches!(
            fs.stat(&mut w, &FsPath::parse("/nope").unwrap()),
            Err(FsError::NotFound(_))
        ));
    }

    #[test]
    fn rename_moves_across_directories() {
        let (mut w, mut fs, servers) = setup(2);
        let a = FsPath::parse("/a").unwrap();
        let b = FsPath::parse("/b").unwrap();
        fs.mkdir(&mut w, &a, servers[0]).unwrap();
        fs.mkdir(&mut w, &b, servers[1]).unwrap();
        let old = a.join("draft.txt");
        fs.create_file(&mut w, &old, b"text", servers[0]).unwrap();
        let new = b.join("final.txt");
        fs.rename(&mut w, &old, &new).unwrap();
        // Old path gone, new path live with the new name and old bytes.
        assert!(matches!(
            fs.read_file(&mut w, &old),
            Err(FsError::NotFound(_))
        ));
        let rec = fs.read_file(&mut w, &new).unwrap();
        assert_eq!(&rec.payload[..], b"text");
        assert_eq!(rec.name, "final.txt");
        assert!(fs.ls(&mut w, &a).unwrap().is_empty());
        let lb = fs.ls(&mut w, &b).unwrap();
        assert_eq!(lb.len(), 1);
        assert_eq!(lb[0].name, "final.txt");
        // Collision and missing-source errors.
        assert!(matches!(
            fs.rename(&mut w, &old, &new),
            Err(FsError::NotFound(_))
        ));
        fs.create_file(&mut w, &old, b"again", servers[0]).unwrap();
        assert!(matches!(
            fs.rename(&mut w, &old, &new),
            Err(FsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn dir_accessors() {
        let (mut w, mut fs, servers) = setup(1);
        let d = FsPath::parse("/d").unwrap();
        fs.mkdir(&mut w, &d, servers[0]).unwrap();
        assert!(fs.dir(&d).is_some());
        assert!(fs.dir(&FsPath::parse("/nope").unwrap()).is_none());
        assert_eq!(fs.dir_paths().count(), 2); // root + /d
        let f = d.join("f");
        fs.create_file(&mut w, &f, b"", servers[0]).unwrap();
        assert!(fs.file(&f).is_some());
    }
}
