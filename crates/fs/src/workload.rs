//! Synthetic directory-tree workloads for experiments.

use crate::fs::{FileSystem, FsError};
use crate::path::FsPath;
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_store::placement::Placement;
use weakset_store::prelude::StoreWorld;

/// Shape of a synthetic tree.
#[derive(Clone, Debug, PartialEq)]
pub struct TreeSpec {
    /// Directory tree depth below the root (0 = files directly in `/`).
    pub depth: usize,
    /// Subdirectories per directory.
    pub fanout: usize,
    /// Files per directory (including the root).
    pub files_per_dir: usize,
    /// Payload bytes per file.
    pub file_size: usize,
}

impl Default for TreeSpec {
    fn default() -> Self {
        TreeSpec {
            depth: 1,
            fanout: 2,
            files_per_dir: 8,
            file_size: 64,
        }
    }
}

/// What a build produced.
#[derive(Clone, Debug, Default)]
pub struct TreeStats {
    /// Every directory created (excluding the pre-existing root).
    pub dirs: Vec<FsPath>,
    /// Every file created.
    pub files: Vec<FsPath>,
}

impl TreeSpec {
    /// Total files the spec will create.
    pub fn expected_files(&self) -> usize {
        // Directories at each level: fanout^level, for level 0..=depth.
        let mut dirs_total = 0usize;
        let mut level = 1usize;
        for _ in 0..=self.depth {
            dirs_total += level;
            level *= self.fanout.max(1);
        }
        dirs_total * self.files_per_dir
    }

    /// Builds the tree into `fs`, placing each file and directory home via
    /// `placement` over `volumes`.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FsError`] (workload setup assumes a healthy
    /// network).
    pub fn build(
        &self,
        world: &mut StoreWorld,
        fs: &mut FileSystem,
        volumes: &[NodeId],
        placement: &mut Placement,
        rng: &mut SimRng,
    ) -> Result<TreeStats, FsError> {
        let mut stats = TreeStats::default();
        let payload = vec![b'x'; self.file_size];
        let mut frontier = vec![FsPath::root()];
        for level in 0..=self.depth {
            let mut next = Vec::new();
            for dir in &frontier {
                for f in 0..self.files_per_dir {
                    let p = dir.join(format!("file-{level}-{f}"));
                    let home = placement.choose(volumes, rng);
                    fs.create_file(world, &p, &payload, home)?;
                    stats.files.push(p);
                }
                if level < self.depth {
                    for d in 0..self.fanout {
                        let p = dir.join(format!("dir-{level}-{d}"));
                        let home = placement.choose(volumes, rng);
                        fs.mkdir(world, &p, home)?;
                        stats.dirs.push(p.clone());
                        next.push(p);
                    }
                }
            }
            frontier = next;
        }
        Ok(stats)
    }
}

/// Builds a single flat directory of `n` files spread over `volumes`
/// round-robin — the workhorse workload for the latency experiments.
///
/// # Errors
///
/// Propagates the first [`FsError`].
pub fn flat_dir(
    world: &mut StoreWorld,
    fs: &mut FileSystem,
    dir: &FsPath,
    n: usize,
    file_size: usize,
    volumes: &[NodeId],
) -> Result<Vec<FsPath>, FsError> {
    let payload = vec![b'x'; file_size];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let p = dir.join(format!("f{i:04}"));
        fs.create_file(world, &p, &payload, volumes[i % volumes.len()])?;
        out.push(p);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::prelude::StoreServer;

    fn setup(n: usize) -> (StoreWorld, FileSystem, Vec<NodeId>) {
        let mut t = Topology::new();
        let cn = t.add_node("client", 0);
        let vols: Vec<_> = t.add_servers("vol", n);
        let mut w = StoreWorld::new(
            WorldConfig::seeded(7),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        for &v in &vols {
            w.install_service(v, Box::new(StoreServer::new()));
        }
        let fs = FileSystem::format(&mut w, cn, vols[0], SimDuration::from_millis(100)).unwrap();
        (w, fs, vols)
    }

    #[test]
    fn builds_expected_shape() {
        let (mut w, mut fs, vols) = setup(3);
        let spec = TreeSpec {
            depth: 2,
            fanout: 2,
            files_per_dir: 3,
            file_size: 10,
        };
        let mut placement = Placement::round_robin();
        let mut rng = SimRng::new(1);
        let stats = spec
            .build(&mut w, &mut fs, &vols, &mut placement, &mut rng)
            .unwrap();
        // Dirs: level0 creates 2, level1 creates 4 → 6.
        assert_eq!(stats.dirs.len(), 6);
        // Files: (1 + 2 + 4) dirs × 3 files.
        assert_eq!(stats.files.len(), 21);
        assert_eq!(spec.expected_files(), 21);
        // Spot-check a listing.
        let root_ls = fs.ls(&mut w, &FsPath::root()).unwrap();
        assert_eq!(root_ls.len(), 3 + 2); // 3 files + 2 subdirs
    }

    #[test]
    fn flat_dir_spreads_files() {
        let (mut w, mut fs, vols) = setup(4);
        let files = flat_dir(&mut w, &mut fs, &FsPath::root(), 12, 16, &vols).unwrap();
        assert_eq!(files.len(), 12);
        let ls = fs.ls(&mut w, &FsPath::root()).unwrap();
        assert_eq!(ls.len(), 12);
        assert!(ls.iter().all(|e| e.size == 16));
        // Round-robin placement: each volume holds 3 files.
        for &v in &vols {
            let srv = w.service::<StoreServer>(v).unwrap();
            assert_eq!(srv.object_count(), 3);
        }
    }

    #[test]
    fn default_spec_is_buildable() {
        let (mut w, mut fs, vols) = setup(2);
        let stats = TreeSpec::default()
            .build(
                &mut w,
                &mut fs,
                &vols,
                &mut Placement::round_robin(),
                &mut SimRng::new(2),
            )
            .unwrap();
        assert_eq!(stats.files.len(), TreeSpec::default().expected_files());
    }
}
