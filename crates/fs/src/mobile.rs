//! Mobile clients: voluntary disconnection and reconnection.
//!
//! The paper's target environment is "a network of (possibly mobile)
//! workstations" where "disconnecting a mobile client from the network
//! while traveling is an induced failure". A [`MobileClient`] wraps a node
//! and toggles it in and out of an isolated partition group.

use weakset_sim::node::NodeId;
use weakset_sim::topology::PartitionGroup;
use weakset_store::prelude::StoreWorld;

/// The partition group used to isolate disconnected mobile nodes. One
/// shared group is fine: disconnected laptops cannot talk to each other
/// either... unless they could, so each client gets `BASE + node id`.
const BASE: u32 = 1_000_000;

/// A mobile workstation that can deliberately leave and rejoin the
/// network.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MobileClient {
    node: NodeId,
    connected: bool,
}

impl MobileClient {
    /// Wraps a node, initially connected.
    pub fn new(node: NodeId) -> Self {
        MobileClient {
            node,
            connected: true,
        }
    }

    /// The underlying node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Whether the client is currently connected.
    pub fn is_connected(&self) -> bool {
        self.connected
    }

    /// Disconnects from the network (no-op if already disconnected).
    pub fn disconnect(&mut self, world: &mut StoreWorld) {
        if self.connected {
            world
                .topology_mut()
                .set_group(self.node, Some(PartitionGroup(BASE + self.node.0)));
            self.connected = false;
        }
    }

    /// Reconnects to the network (no-op if already connected).
    ///
    /// Note: reconnection clears only this node's group; a network-wide
    /// partition imposed while away still applies to everyone else.
    pub fn reconnect(&mut self, world: &mut StoreWorld) {
        if !self.connected {
            world.topology_mut().set_group(self.node, None);
            self.connected = true;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_sim::latency::LatencyModel;
    use weakset_sim::time::SimDuration;
    use weakset_sim::topology::Topology;
    use weakset_sim::world::WorldConfig;
    use weakset_store::msg::StoreMsg;
    use weakset_store::object::ObjectId;
    use weakset_store::prelude::{StoreClient, StoreServer};

    #[test]
    fn disconnect_isolates_and_reconnect_restores() {
        let mut t = Topology::new();
        let laptop = t.add_node("laptop", 0);
        let server = t.add_node("server", 1);
        let mut w: StoreWorld = StoreWorld::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(server, Box::new(StoreServer::new()));
        let client = StoreClient::new(laptop, SimDuration::from_millis(20));
        let mut mc = MobileClient::new(laptop);
        assert!(mc.is_connected());
        assert!(client
            .fetch_object(&mut w, server, ObjectId(1))
            .is_err_and(|e| !matches!(e, weakset_store::prelude::StoreError::Net(_))));
        mc.disconnect(&mut w);
        assert!(!mc.is_connected());
        assert!(matches!(
            client.fetch_object(&mut w, server, ObjectId(1)),
            Err(weakset_store::prelude::StoreError::Net(_))
        ));
        mc.disconnect(&mut w); // idempotent
        mc.reconnect(&mut w);
        assert!(mc.is_connected());
        // Reachable again (NotFound is a server answer, not a net error).
        let r = w.rpc_default(laptop, server, StoreMsg::GetObject(ObjectId(1)));
        assert!(matches!(r, Ok(StoreMsg::NotFound(_))));
    }

    #[test]
    fn two_disconnected_laptops_cannot_talk() {
        let mut t = Topology::new();
        let a = t.add_node("a", 0);
        let b = t.add_node("b", 1);
        let mut w: StoreWorld = StoreWorld::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        let mut ma = MobileClient::new(a);
        let mut mb = MobileClient::new(b);
        ma.disconnect(&mut w);
        mb.disconnect(&mut w);
        assert!(!w.topology().reachable(a, b));
        ma.reconnect(&mut w);
        mb.reconnect(&mut w);
        assert!(w.topology().reachable(a, b));
    }
}
