//! Property tests for file system paths.

use proptest::prelude::*;
use weakset_fs::path::FsPath;

fn component() -> impl Strategy<Value = String> {
    "[a-z0-9._-]{1,12}".prop_filter("non-empty", |s| !s.is_empty())
}

fn path() -> impl Strategy<Value = FsPath> {
    proptest::collection::vec(component(), 0..6).prop_map(|cs| {
        let mut p = FsPath::root();
        for c in cs {
            p = p.join(c);
        }
        p
    })
}

proptest! {
    #[test]
    fn display_parse_round_trip(p in path()) {
        let s = p.to_string();
        prop_assert_eq!(FsPath::parse(&s).unwrap(), p);
    }

    #[test]
    fn parent_join_round_trip(p in path()) {
        if let (Some(parent), Some(name)) = (p.parent(), p.name()) {
            prop_assert_eq!(parent.join(name), p.clone());
            prop_assert_eq!(parent.depth() + 1, p.depth());
        } else {
            prop_assert!(p.is_root());
        }
    }

    #[test]
    fn depth_counts_components(p in path()) {
        prop_assert_eq!(p.depth(), p.components().count());
    }

    #[test]
    fn ancestors_terminate_at_root(p in path()) {
        let mut cur = p.clone();
        let mut hops = 0;
        while let Some(parent) = cur.parent() {
            cur = parent;
            hops += 1;
            prop_assert!(hops <= p.depth());
        }
        prop_assert!(cur.is_root());
        prop_assert_eq!(hops, p.depth());
    }

    #[test]
    fn join_is_prefix_ordered(p in path(), c in component()) {
        let child = p.join(c);
        prop_assert!(p < child, "{} vs {}", p, child);
    }
}
