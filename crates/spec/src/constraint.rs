//! History constraints (`constraint` clauses).
//!
//! A Larch `constraint` clause is a predicate over *pairs* of states that
//! must hold for every `i < j` in a computation. The paper uses three:
//! immutability (`s_i = s_j`, Figures 1 and 3), growth-only (`s_i ⊆ s_j`,
//! Figure 5), and `true` (Figures 4 and 6). Section 3.1 and 3.3 also sketch
//! relaxed variants that only constrain states *within* an iterator run;
//! those are here too.

use crate::state::Computation;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Which constraint clause a type specification carries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConstraintKind {
    /// `∀ i<j: s_i = s_j` — the set never changes (Figures 1, 3).
    Immutable,
    /// `∀ i<j: s_i ⊆ s_j` — the set only grows (Figure 5).
    GrowOnly,
    /// `true` — arbitrary mutation (Figures 4, 6).
    None,
    /// Relaxed §3.1: the set is immutable *between the first-state and
    /// last-state of each iterator run*, but may change between runs.
    ImmutableDuringRuns,
    /// Relaxed §3.3: the set may only grow during each iterator run, with
    /// arbitrary mutation between runs.
    GrowOnlyDuringRuns,
}

impl fmt::Display for ConstraintKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintKind::Immutable => "immutable",
            ConstraintKind::GrowOnly => "grow-only",
            ConstraintKind::None => "true (unconstrained)",
            ConstraintKind::ImmutableDuringRuns => "immutable during runs",
            ConstraintKind::GrowOnlyDuringRuns => "grow-only during runs",
        };
        f.write_str(s)
    }
}

/// A constraint violation: the pair of state indices for which the pairwise
/// predicate failed.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConstraintViolation {
    /// The earlier state index.
    pub i: usize,
    /// The later state index.
    pub j: usize,
    /// Which constraint failed.
    pub kind: ConstraintKind,
}

impl fmt::Display for ConstraintViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "constraint '{}' violated between states {} and {}",
            self.kind, self.i, self.j
        )
    }
}

impl ConstraintKind {
    /// Checks the constraint over a whole computation.
    ///
    /// Pairwise predicates over `i < j` are checked via adjacent pairs:
    /// equality and `⊆` are transitive, so `∀ adjacent` implies `∀ i<j`.
    pub fn check(self, comp: &Computation) -> Result<(), ConstraintViolation> {
        match self {
            ConstraintKind::None => Ok(()),
            ConstraintKind::Immutable => {
                Self::check_window(comp, 0, comp.states.len().saturating_sub(1), true)
            }
            ConstraintKind::GrowOnly => {
                Self::check_window(comp, 0, comp.states.len().saturating_sub(1), false)
            }
            ConstraintKind::ImmutableDuringRuns => Self::check_during_runs(comp, true),
            ConstraintKind::GrowOnlyDuringRuns => Self::check_during_runs(comp, false),
        }
    }

    fn check_window(
        comp: &Computation,
        first: usize,
        last: usize,
        equality: bool,
    ) -> Result<(), ConstraintViolation> {
        for i in first..last {
            let a = &comp.states[i].members;
            let b = &comp.states[i + 1].members;
            let ok = if equality { a == b } else { a.is_subset(b) };
            if !ok {
                return Err(ConstraintViolation {
                    i,
                    j: i + 1,
                    kind: if equality {
                        ConstraintKind::Immutable
                    } else {
                        ConstraintKind::GrowOnly
                    },
                });
            }
        }
        Ok(())
    }

    fn check_during_runs(comp: &Computation, equality: bool) -> Result<(), ConstraintViolation> {
        for run in &comp.runs {
            Self::check_window(comp, run.first, run.last(), equality).map_err(|mut v| {
                v.kind = if equality {
                    ConstraintKind::ImmutableDuringRuns
                } else {
                    ConstraintKind::GrowOnlyDuringRuns
                };
                v
            })?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Invocation, IterRun, Outcome, State};
    use crate::value::SetValue;

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(crate::value::ElemId).collect()
    }

    fn comp_of(values: &[&[u64]]) -> Computation {
        let mut c = Computation::default();
        for v in values {
            c.push_state(State::fully_accessible(sv(v)));
        }
        c
    }

    #[test]
    fn immutable_accepts_constant_history() {
        let c = comp_of(&[&[1, 2], &[1, 2], &[1, 2]]);
        assert!(ConstraintKind::Immutable.check(&c).is_ok());
    }

    #[test]
    fn immutable_rejects_any_change() {
        let c = comp_of(&[&[1, 2], &[1, 2, 3]]);
        let v = ConstraintKind::Immutable.check(&c).unwrap_err();
        assert_eq!((v.i, v.j), (0, 1));
        assert_eq!(v.kind, ConstraintKind::Immutable);
        assert!(v.to_string().contains("immutable"));
    }

    #[test]
    fn grow_only_accepts_growth() {
        let c = comp_of(&[&[1], &[1, 2], &[1, 2], &[1, 2, 3]]);
        assert!(ConstraintKind::GrowOnly.check(&c).is_ok());
    }

    #[test]
    fn grow_only_rejects_shrinkage() {
        let c = comp_of(&[&[1, 2], &[1]]);
        let v = ConstraintKind::GrowOnly.check(&c).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::GrowOnly);
    }

    #[test]
    fn none_accepts_anything() {
        let c = comp_of(&[&[1, 2], &[3], &[], &[9]]);
        assert!(ConstraintKind::None.check(&c).is_ok());
    }

    #[test]
    fn empty_computation_is_fine() {
        let c = Computation::default();
        assert!(ConstraintKind::Immutable.check(&c).is_ok());
        assert!(ConstraintKind::GrowOnly.check(&c).is_ok());
    }

    fn with_run(mut c: Computation, first: usize, last: usize) -> Computation {
        // A run spanning [first, last] via a single invocation.
        c.runs.push(IterRun {
            first,
            invocations: vec![Invocation {
                pre: first,
                post: last,
                outcome: Outcome::Returned,
            }],
        });
        c
    }

    #[test]
    fn immutable_during_runs_allows_mutation_between_runs() {
        // States: 0:{1} 1:{1} (run over 0..=1), 2:{5} (mutation after run).
        let c = with_run(comp_of(&[&[1], &[1], &[5]]), 0, 1);
        assert!(ConstraintKind::ImmutableDuringRuns.check(&c).is_ok());
        // But the full constraint would reject it.
        assert!(ConstraintKind::Immutable.check(&c).is_err());
    }

    #[test]
    fn immutable_during_runs_rejects_mutation_inside_run() {
        let c = with_run(comp_of(&[&[1], &[1, 2]]), 0, 1);
        let v = ConstraintKind::ImmutableDuringRuns.check(&c).unwrap_err();
        assert_eq!(v.kind, ConstraintKind::ImmutableDuringRuns);
    }

    #[test]
    fn grow_only_during_runs_mirrors() {
        let grow_in_run = with_run(comp_of(&[&[1], &[1, 2], &[]]), 0, 1);
        assert!(ConstraintKind::GrowOnlyDuringRuns
            .check(&grow_in_run)
            .is_ok());
        let shrink_in_run = with_run(comp_of(&[&[1, 2], &[1]]), 0, 1);
        assert!(ConstraintKind::GrowOnlyDuringRuns
            .check(&shrink_in_run)
            .is_err());
    }

    #[test]
    fn display_names() {
        assert_eq!(ConstraintKind::Immutable.to_string(), "immutable");
        assert_eq!(ConstraintKind::None.to_string(), "true (unconstrained)");
    }
}
