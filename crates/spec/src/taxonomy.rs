//! Garcia-Molina & Wiederhold's read-only-query taxonomy, as used in the
//! paper's Section 4 to situate the four design points.
//!
//! Two dimensions classify a query:
//!
//! * **Consistency** — the degree to which the result respects application
//!   constraints: *strong* (serializable), *weak* (a consistent subset),
//!   or *none*.
//! * **Currency** ("vintage") — which version of the data the result
//!   reflects: *first-vintage* (data as of the query's start) or
//!   *first-bound* (data from the start onwards).
//!
//! The paper's mapping (Section 4):
//!
//! | Figure | Consistency | Currency |
//! |--------|-------------|----------|
//! | Fig 3  | strong      | first-vintage |
//! | Fig 4  | weak        | first-vintage |
//! | Fig 5  | none        | first-bound   |
//! | Fig 6  | none        | first-bound   |
//!
//! Besides the static mapping, [`classify_run`] derives a classification
//! from an actual recorded run, so experiments can confirm the mapping
//! empirically (experiment E8).

use crate::checker::Figure;
use crate::state::{Computation, IterRun};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Consistency degree of a query result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consistency {
    /// Serializable: the result is exactly one state's value.
    Strong,
    /// Weakly consistent: the result is a subset of one state's value.
    Weak,
    /// No consistency guarantee relative to any single state.
    None,
}

/// Currency ("vintage") of a query result.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Currency {
    /// All data is as of the query's first state.
    FirstVintage,
    /// Data reflects states from the first state onwards.
    FirstBound,
}

/// A point in the taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct QueryClass {
    /// Consistency degree.
    pub consistency: Consistency,
    /// Currency degree.
    pub currency: Currency,
}

impl fmt::Display for QueryClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let c = match self.consistency {
            Consistency::Strong => "strong consistency",
            Consistency::Weak => "weak consistency",
            Consistency::None => "no consistency",
        };
        let v = match self.currency {
            Currency::FirstVintage => "first-vintage",
            Currency::FirstBound => "first-bound",
        };
        write!(f, "{c}, {v}")
    }
}

/// The paper's Section 4 mapping from figure to taxonomy point.
pub fn paper_class(figure: Figure) -> QueryClass {
    match figure {
        // Figure 1 ignores failures; completed runs return exactly
        // s_first, i.e. serializable first-vintage.
        Figure::Fig1 | Figure::Fig3 => QueryClass {
            consistency: Consistency::Strong,
            currency: Currency::FirstVintage,
        },
        Figure::Fig4 => QueryClass {
            consistency: Consistency::Weak,
            currency: Currency::FirstVintage,
        },
        Figure::Fig5 | Figure::Fig6 => QueryClass {
            consistency: Consistency::None,
            currency: Currency::FirstBound,
        },
    }
}

/// Classifies one recorded run empirically.
///
/// * Currency: *first-vintage* when every yielded element was a member of
///   the first state; otherwise *first-bound*.
/// * Consistency: *strong* when the yielded set equals some single state's
///   membership in the run's window; *weak* when it is a subset of some
///   single state's membership; otherwise *none*.
pub fn classify_run(comp: &Computation, run: &IterRun) -> QueryClass {
    let yielded = run.yielded_set();
    let s_first = &comp.state(run.first).members;
    let currency = if run.yields().iter().all(|&e| s_first.contains(e)) {
        Currency::FirstVintage
    } else {
        Currency::FirstBound
    };
    let window = comp.members_between(run.first, run.last());
    let mut consistency = Consistency::None;
    for members in window {
        if yielded == *members {
            consistency = Consistency::Strong;
            break;
        }
        if yielded.is_subset(members) {
            consistency = Consistency::Weak;
        }
    }
    QueryClass {
        consistency,
        currency,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Invocation, Outcome, State};
    use crate::value::{ElemId, SetValue};

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    fn run_yielding(first: usize, yields: &[u64], n_states: usize) -> IterRun {
        let mut invocations: Vec<Invocation> = yields
            .iter()
            .enumerate()
            .map(|(i, &e)| Invocation {
                pre: (first + i).min(n_states - 1),
                post: (first + i + 1).min(n_states - 1),
                outcome: Outcome::Yielded(ElemId(e)),
            })
            .collect();
        let last = invocations.last().map_or(first, |i| i.post);
        invocations.push(Invocation {
            pre: last,
            post: last,
            outcome: Outcome::Returned,
        });
        IterRun { first, invocations }
    }

    #[test]
    fn paper_mapping_matches_section_4() {
        assert_eq!(
            paper_class(Figure::Fig3),
            QueryClass {
                consistency: Consistency::Strong,
                currency: Currency::FirstVintage
            }
        );
        assert_eq!(paper_class(Figure::Fig4).consistency, Consistency::Weak);
        assert_eq!(paper_class(Figure::Fig5).currency, Currency::FirstBound);
        assert_eq!(paper_class(Figure::Fig6).consistency, Consistency::None);
    }

    #[test]
    fn full_drain_classifies_strong_first_vintage() {
        let mut comp = Computation::default();
        for _ in 0..4 {
            comp.push_state(State::fully_accessible(sv(&[1, 2])));
        }
        let run = run_yielding(0, &[1, 2], 4);
        let c = classify_run(&comp, &run);
        assert_eq!(c.consistency, Consistency::Strong);
        assert_eq!(c.currency, Currency::FirstVintage);
        assert_eq!(c.to_string(), "strong consistency, first-vintage");
    }

    #[test]
    fn partial_drain_classifies_weak() {
        let mut comp = Computation::default();
        for _ in 0..3 {
            comp.push_state(State::fully_accessible(sv(&[1, 2, 3])));
        }
        let run = run_yielding(0, &[1], 3);
        let c = classify_run(&comp, &run);
        assert_eq!(c.consistency, Consistency::Weak);
        assert_eq!(c.currency, Currency::FirstVintage);
    }

    #[test]
    fn mixed_vintage_yields_classify_first_bound_none() {
        // States: {1}, then {2} (1 removed, 2 added). Yielding both 1 and 2
        // matches no single state, and 2 ∉ s_first.
        let mut comp = Computation::default();
        comp.push_state(State::fully_accessible(sv(&[1])));
        comp.push_state(State::fully_accessible(sv(&[2])));
        comp.push_state(State::fully_accessible(sv(&[2])));
        let run = run_yielding(0, &[1, 2], 3);
        let c = classify_run(&comp, &run);
        assert_eq!(c.consistency, Consistency::None);
        assert_eq!(c.currency, Currency::FirstBound);
    }

    #[test]
    fn growth_pickup_is_first_bound_but_can_be_strong() {
        // {1} grows to {1,2}; yielding 1 then 2 equals the final state.
        let mut comp = Computation::default();
        comp.push_state(State::fully_accessible(sv(&[1])));
        comp.push_state(State::fully_accessible(sv(&[1, 2])));
        comp.push_state(State::fully_accessible(sv(&[1, 2])));
        let run = run_yielding(0, &[1, 2], 3);
        let c = classify_run(&comp, &run);
        assert_eq!(c.currency, Currency::FirstBound);
        assert_eq!(c.consistency, Consistency::Strong);
    }
}
