//! # weakset-spec
//!
//! Executable versions of the formal specifications in Wing & Steere,
//! *Specifying Weak Sets* (ICDCS 1995).
//!
//! The paper writes Larch-style specifications for a weak set's `elements`
//! iterator at four points in a design space (its Figures 1, 3, 4, 5, 6)
//! and introduces a `reachable` construct to distinguish an element's
//! *existence* from its *accessibility* under node and network failures.
//! This crate turns those specifications into machine-checkable artifacts:
//!
//! * [`value`] — the LSL-ish value space: [`value::SetValue`] with
//!   `∪`, `−`, `∈`, `⊆`.
//! * [`state`] — the model of computation: states carrying membership and
//!   accessibility, invocations, iterator runs, whole computations, and a
//!   [`state::Recorder`] for capturing them as a system executes.
//! * [`constraint`] — `constraint` clauses checked over all state pairs,
//!   including the paper's relaxed per-run variants.
//! * [`specs`] — one module per figure with its `ensures` clause.
//! * [`checker`] — [`checker::Checker`] replays a computation against a
//!   figure, maintaining the `yielded` history object, and reports every
//!   violation.
//! * [`taxonomy`] — the Garcia-Molina & Wiederhold classification used in
//!   the paper's Section 4, both as the paper's static mapping and as an
//!   empirical classifier over recorded runs.
//!
//! ## Example: checking a hand-recorded run
//!
//! ```
//! use weakset_spec::prelude::*;
//!
//! let st = || State::fully_accessible([1, 2].into());
//! let mut rec = Recorder::new(st());
//! rec.begin_run();
//! rec.record_invocation(st(), Outcome::Yielded(ElemId(1)));
//! rec.record_invocation(st(), Outcome::Yielded(ElemId(2)));
//! rec.record_invocation(st(), Outcome::Returned);
//! rec.end_run();
//! let comp = rec.finish();
//! assert!(check_computation(Figure::Fig1, &comp).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod checker;
pub mod constraint;
pub mod explore;
pub mod model;
pub mod render;
pub mod specs;
pub mod state;
pub mod taxonomy;
pub mod value;
pub mod visibility;

/// One-stop imports for specification users.
pub mod prelude {
    pub use crate::checker::{
        check_computation, check_computation_with, Checker, Conformance, Figure, Violation,
    };
    pub use crate::constraint::{ConstraintKind, ConstraintViolation};
    pub use crate::explore::{
        enumerate, is_block_free, is_failure_free, is_fully_accessible, is_immutable, Bounds,
    };
    pub use crate::model::{ModelElements, ModelSet};
    pub use crate::render::{render, render_verdict};
    pub use crate::specs::set_ops::{
        check_add, check_create, check_remove, check_size, classify_transition, validate_history,
        ProcError, Transition,
    };
    pub use crate::specs::{EnsuresCtx, EnsuresError, Strictness};
    pub use crate::state::{Computation, Invocation, IterRun, Outcome, Recorder, State};
    pub use crate::taxonomy::{classify_run, paper_class, Consistency, Currency, QueryClass};
    pub use crate::value::{ElemId, SetValue};
    pub use crate::visibility::{check_execution, AxiomSet, FailureMode, Vintage};
}
