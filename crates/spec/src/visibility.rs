//! A visibility/arbitration view of the paper's specifications.
//!
//! Following Krishna/Emmi/Enea/Jovanović ("Verifying Visibility-Based Weak
//! Consistency"), an execution is judged as a triple: the *operations*
//! (the invocations of a recorded [`Computation`]), a *visibility relation*
//! (which membership state, filtered by accessibility, an invocation is
//! allowed to act on), and an *arbitration relation* (the total order of
//! membership states the recorder logged, constrained by the figure's
//! `constraint` clause). Each of the paper's figures is then one
//! [`AxiomSet`] — a choice of
//!
//! * **vintage** — which state's membership is visible: the run's
//!   first-state ([`Vintage::First`], Figures 1/3/4) or the invocation's
//!   pre-state ([`Vintage::Pre`], Figures 5/6);
//! * **failure axioms** — how inaccessibility restricts visibility and
//!   which escape hatch the iterator gets: [`FailureMode::Total`]
//!   (Figure 1: accessibility is ignored, neither failing nor blocking is
//!   in the signature), [`FailureMode::Pessimistic`] (Figures 3/4/5: only
//!   reachable members are visible, exhausting them *fails*),
//!   [`FailureMode::Optimistic`] (Figure 6: only reachable members are
//!   visible, exhausting them *blocks*);
//! * **arbitration** — the [`ConstraintKind`] every pair of arbitrated
//!   states must satisfy;
//! * an optional **session floor** — elements whose visibility a causal
//!   session demands (session-order ⊆ visibility): a run may not claim the
//!   set is drained while a session dependency was never yielded.
//!
//! Two axioms apply to every figure:
//!
//! * *visibility soundness* (§3.4): every yielded element was a member of
//!   the set in some arbitrated state between the run's first-state and
//!   last-state. For Figures 1/3/4/5 this is a theorem of the `ensures`
//!   clauses; stating it once here is what lets Figure 6's hand-written
//!   `yields_were_members` check retire.
//! * *structure*: state indices are monotone and in bounds, and no
//!   invocation follows a terminal outcome.
//!
//! [`check_execution`] folds all of this over a computation and returns
//! the same [`Conformance`] the classic per-figure checker produces; the
//! liberal reading of the branch conditions (see [`crate::specs`]) is
//! used throughout. `weakset-dst`'s oracle instantiates every figure
//! through this module.

use crate::checker::{Conformance, Figure, Violation};
use crate::constraint::ConstraintKind;
use crate::specs::{expect_yield, EnsuresError};
use crate::state::{Computation, IterRun, Outcome};
use crate::value::SetValue;
use serde::{Deserialize, Serialize};

/// Which state's membership an invocation is allowed to see.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Vintage {
    /// The run's first-state (`s_first`): snapshot vintages, Figures 1/3/4.
    First,
    /// The invocation's pre-state (`s_pre`): current vintages, Figures 5/6.
    Pre,
}

/// How inaccessibility restricts visibility, and the escape hatch.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FailureMode {
    /// Accessibility is ignored entirely — every member of the vintage is
    /// visible, and neither `fails` nor blocking is in the signature
    /// (Figure 1 predates the failure model).
    Total,
    /// Only reachable members are visible; when they are exhausted but
    /// unyielded members remain, the iterator must signal failure
    /// (Figures 3/4/5).
    Pessimistic,
    /// Only reachable members are visible; while unyielded members remain
    /// the iterator may block instead of yielding, and it never fails
    /// (Figure 6).
    Optimistic,
}

/// One figure expressed as visibility/arbitration axioms.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AxiomSet {
    /// The figure this axiom set instantiates (for reporting).
    pub figure: Figure,
    /// Visibility vintage.
    pub vintage: Vintage,
    /// Failure axioms.
    pub failure: FailureMode,
    /// Arbitration constraint over the logged state order.
    pub arbitration: ConstraintKind,
    /// Causal-session floor: elements whose visibility the session
    /// requires. Empty when no session guarantee is being checked.
    pub session_floor: SetValue,
}

impl AxiomSet {
    /// The axiom set of a figure with its canonical constraint.
    pub fn for_figure(figure: Figure) -> Self {
        let (vintage, failure) = match figure {
            Figure::Fig1 => (Vintage::First, FailureMode::Total),
            Figure::Fig3 | Figure::Fig4 => (Vintage::First, FailureMode::Pessimistic),
            Figure::Fig5 => (Vintage::Pre, FailureMode::Pessimistic),
            Figure::Fig6 => (Vintage::Pre, FailureMode::Optimistic),
        };
        AxiomSet {
            figure,
            vintage,
            failure,
            arbitration: figure.constraint(),
            session_floor: SetValue::empty(),
        }
    }

    /// Overrides the arbitration constraint (the relaxed §3.1/§3.3 per-run
    /// readings).
    #[must_use]
    pub fn with_arbitration(mut self, c: ConstraintKind) -> Self {
        self.arbitration = c;
        self
    }

    /// Adds a causal-session floor: a terminated run must have made every
    /// element of `floor` visible (yielded it) unless arbitration removed
    /// it first.
    #[must_use]
    pub fn with_session_floor(mut self, floor: SetValue) -> Self {
        self.session_floor = floor;
        self
    }
}

/// Checks one recorded computation against an axiom set.
pub fn check_execution(axioms: &AxiomSet, comp: &Computation) -> Conformance {
    let mut out = Conformance::default();
    // Arbitration: the logged state order must satisfy the constraint.
    if let Err(v) = axioms.arbitration.check(comp) {
        out.violations.push(Violation::Constraint(v));
    }
    for (ri, run) in comp.runs.iter().enumerate() {
        check_run(axioms, comp, ri, run, &mut out);
    }
    out
}

fn check_run(
    axioms: &AxiomSet,
    comp: &Computation,
    ri: usize,
    run: &IterRun,
    out: &mut Conformance,
) {
    let n_states = comp.states.len();
    if run.first >= n_states {
        out.violations.push(Violation::Malformed {
            run: ri,
            detail: format!("first-state index {} out of bounds", run.first),
        });
        return;
    }
    let s_first = comp.states[run.first].members.clone();
    let mut yielded = SetValue::empty();
    let mut terminated = false;
    let mut returned = false;
    let mut prev_post = run.first;
    for (ii, inv) in run.invocations.iter().enumerate() {
        if inv.pre >= n_states || inv.post >= n_states || inv.pre > inv.post {
            out.violations.push(Violation::Malformed {
                run: ri,
                detail: format!(
                    "invocation {ii} has bad state indices pre={} post={}",
                    inv.pre, inv.post
                ),
            });
            return;
        }
        if inv.pre < prev_post {
            out.violations.push(Violation::Malformed {
                run: ri,
                detail: format!("invocation {ii} pre-state precedes previous post-state"),
            });
            return;
        }
        if terminated {
            out.violations.push(Violation::AfterTermination {
                run: ri,
                invocation: ii,
            });
            continue;
        }
        let pre = &comp.states[inv.pre];
        // The visibility relation: which members this invocation may see.
        let base = match axioms.vintage {
            Vintage::First => s_first.clone(),
            Vintage::Pre => pre.members.clone(),
        };
        let visible = match axioms.failure {
            FailureMode::Total => base.clone(),
            FailureMode::Pessimistic | FailureMode::Optimistic => pre.reachable_of(&base),
        };
        let eligible = visible.difference(&yielded);
        let unyielded = base.difference(&yielded);
        let verdict = check_invocation(
            axioms.failure,
            &base,
            &visible,
            &eligible,
            &unyielded,
            &yielded,
            inv.outcome,
        );
        if let Err(error) = verdict {
            out.violations.push(Violation::Ensures {
                run: ri,
                invocation: ii,
                error,
            });
        }
        match inv.outcome {
            Outcome::Yielded(e) => {
                yielded.insert(e);
            }
            Outcome::Returned => {
                terminated = true;
                returned = true;
            }
            Outcome::Failed => terminated = true,
            Outcome::Blocked => {}
        }
        prev_post = inv.post;
    }
    // Visibility soundness (§3.4): every yield was an arbitrated member
    // at some state within the run's span.
    for e in run.yields() {
        if !comp.was_member_between(e, run.first, run.last()) {
            out.violations
                .push(Violation::PhantomYield { run: ri, elem: e });
        }
    }
    // Session axiom (session-order ⊆ visibility): a run that claims the
    // set is drained must have yielded every session dependency.
    if returned && !axioms.session_floor.is_empty() {
        let missing = axioms.session_floor.difference(&yielded);
        if !missing.is_empty() {
            out.violations
                .push(Violation::SessionHidden { run: ri, missing });
        }
    }
}

/// The generic `ensures` clause, parameterized by the failure axioms
/// (liberal reading — see [`crate::specs`] module docs).
fn check_invocation(
    failure: FailureMode,
    base: &SetValue,
    visible: &SetValue,
    eligible: &SetValue,
    unyielded: &SetValue,
    yielded: &SetValue,
    outcome: Outcome,
) -> Result<(), EnsuresError> {
    match failure {
        FailureMode::Total => {
            if outcome == Outcome::Failed {
                return Err(EnsuresError::FailureNotAllowed);
            }
            if outcome == Outcome::Blocked {
                return Err(EnsuresError::BlockNotAllowed);
            }
            if !unyielded.is_empty() {
                expect_yield(visible, yielded, base, outcome)
            } else {
                expect_return(outcome)
            }
        }
        FailureMode::Pessimistic => {
            if outcome == Outcome::Blocked {
                return Err(EnsuresError::BlockNotAllowed);
            }
            if !eligible.is_empty() {
                expect_yield(visible, yielded, base, outcome)
            } else if !unyielded.is_empty() {
                match outcome {
                    Outcome::Failed => Ok(()),
                    got => Err(EnsuresError::ExpectedFail { got }),
                }
            } else {
                expect_return(outcome)
            }
        }
        FailureMode::Optimistic => {
            if outcome == Outcome::Failed {
                return Err(EnsuresError::FailureNotAllowed);
            }
            if !unyielded.is_empty() {
                if outcome == Outcome::Blocked {
                    return Ok(());
                }
                expect_yield(visible, yielded, base, outcome)
            } else {
                expect_return(outcome)
            }
        }
    }
}

fn expect_return(outcome: Outcome) -> Result<(), EnsuresError> {
    match outcome {
        Outcome::Returned => Ok(()),
        got => Err(EnsuresError::ExpectedReturn { got }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_computation_with;
    use crate::explore::{enumerate, Bounds};
    use crate::state::{Invocation, Recorder, State};
    use crate::value::ElemId;

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    /// Every figure × constraint: the axiom instantiation agrees with the
    /// per-figure checker on every enumerated small computation.
    #[test]
    fn differential_against_per_figure_checkers() {
        let comps = enumerate(Bounds::default());
        let constraints = [
            None,
            Some(ConstraintKind::None),
            Some(ConstraintKind::Immutable),
            Some(ConstraintKind::GrowOnly),
            Some(ConstraintKind::ImmutableDuringRuns),
            Some(ConstraintKind::GrowOnlyDuringRuns),
        ];
        let mut checked = 0usize;
        for comp in &comps {
            for fig in Figure::ALL {
                for c in constraints {
                    let constraint = c.unwrap_or_else(|| fig.constraint());
                    let classic = check_computation_with(fig, constraint, comp);
                    let axioms = AxiomSet::for_figure(fig).with_arbitration(constraint);
                    let vis = check_execution(&axioms, comp);
                    // The new checker may add PhantomYield violations the
                    // classic one cannot express; apart from those the
                    // verdicts must agree exactly.
                    let vis_classic: Vec<_> = vis
                        .violations
                        .iter()
                        .filter(|v| !matches!(v, Violation::PhantomYield { .. }))
                        .cloned()
                        .collect();
                    assert_eq!(
                        classic.violations, vis_classic,
                        "{fig} {constraint:?} on {comp:?}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 1000, "only {checked} comparisons ran");
    }

    #[test]
    fn fig1_axioms_ignore_reachability() {
        // Nothing accessible, yet Figure 1 still demands the yield.
        let st = || State {
            members: sv(&[1]),
            accessible: sv(&[]),
        };
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        check_execution(&AxiomSet::for_figure(Figure::Fig1), &comp).assert_ok();
        // Figure 3's axioms (visibility filtered by accessibility) reject
        // the same run.
        assert!(!check_execution(&AxiomSet::for_figure(Figure::Fig3), &comp).is_ok());
    }

    #[test]
    fn phantom_yield_is_reported_for_every_figure() {
        // e99 was never a member in any state: the §3.4 soundness axiom
        // fires regardless of figure.
        let mut comp = Computation::starting_at(State::fully_accessible(sv(&[1])));
        comp.push_state(State::fully_accessible(sv(&[1])));
        comp.runs.push(IterRun {
            first: 0,
            invocations: vec![Invocation {
                pre: 0,
                post: 1,
                outcome: Outcome::Yielded(ElemId(99)),
            }],
        });
        for fig in Figure::ALL {
            let conf = check_execution(&AxiomSet::for_figure(fig), &comp);
            assert!(
                conf.violations.iter().any(
                    |v| matches!(v, Violation::PhantomYield { elem, .. } if *elem == ElemId(99))
                ),
                "{fig}: {conf:?}"
            );
        }
    }

    #[test]
    fn session_floor_flags_a_drained_run_that_hid_a_dependency() {
        // The session observed e2, but the run returned having yielded
        // only e1 — a read-your-writes violation.
        let st = || State::fully_accessible(sv(&[1]));
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        let ax = AxiomSet::for_figure(Figure::Fig6).with_session_floor(sv(&[1, 2]));
        let conf = check_execution(&ax, &comp);
        assert!(
            conf.violations.iter().any(|v| matches!(
                v,
                Violation::SessionHidden { missing, .. } if missing.contains(ElemId(2))
            )),
            "{conf:?}"
        );
        // Satisfied floor: no violation.
        let ax = AxiomSet::for_figure(Figure::Fig6).with_session_floor(sv(&[1]));
        check_execution(&ax, &comp).assert_ok();
    }

    #[test]
    fn session_floor_is_vacuous_for_unfinished_runs() {
        // A run that blocked (or failed) never claimed the set was
        // drained, so the floor does not apply.
        let st = || State {
            members: sv(&[1, 2]),
            accessible: sv(&[1]),
        };
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Blocked);
        r.end_run();
        let comp = r.finish();
        let ax = AxiomSet::for_figure(Figure::Fig6).with_session_floor(sv(&[1, 2]));
        check_execution(&ax, &comp).assert_ok();
    }

    #[test]
    fn axiom_table_matches_the_paper() {
        let a = AxiomSet::for_figure(Figure::Fig1);
        assert_eq!((a.vintage, a.failure), (Vintage::First, FailureMode::Total));
        assert_eq!(a.arbitration, ConstraintKind::Immutable);
        let a = AxiomSet::for_figure(Figure::Fig3);
        assert_eq!(
            (a.vintage, a.failure),
            (Vintage::First, FailureMode::Pessimistic)
        );
        let a = AxiomSet::for_figure(Figure::Fig4);
        assert_eq!(
            (a.vintage, a.failure),
            (Vintage::First, FailureMode::Pessimistic)
        );
        assert_eq!(a.arbitration, ConstraintKind::None);
        let a = AxiomSet::for_figure(Figure::Fig5);
        assert_eq!(
            (a.vintage, a.failure),
            (Vintage::Pre, FailureMode::Pessimistic)
        );
        assert_eq!(a.arbitration, ConstraintKind::GrowOnly);
        let a = AxiomSet::for_figure(Figure::Fig6);
        assert_eq!(
            (a.vintage, a.failure),
            (Vintage::Pre, FailureMode::Optimistic)
        );
        assert_eq!(a.arbitration, ConstraintKind::None);
    }
}
