//! Human-readable rendering of recorded computations.
//!
//! When a conformance check fails, the violation names a run and an
//! invocation; [`render`] turns the whole computation into a readable
//! trace so the failure can be followed state by state:
//!
//! ```text
//! computation: 6 states, 1 run
//! σ0  members={e1, e2}  accessible={e1, e2}
//! run 0 (first=σ0)
//!   inv 0: σ0 -> σ1  Yielded(e1)
//! σ1  members={e1, e2}  accessible={e1, e2}
//! ...
//! ```

use crate::checker::{Conformance, Figure};
use crate::state::{Computation, Outcome};
use std::fmt::Write as _;

/// Renders a computation as an indented, state-by-state trace.
pub fn render(comp: &Computation) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "computation: {} states, {} run(s)",
        comp.states.len(),
        comp.runs.len()
    );
    // Map each state index to the invocations that use it as a pre-state.
    for (si, st) in comp.states.iter().enumerate() {
        let _ = writeln!(
            out,
            "σ{si:<3} members={} accessible={}",
            st.members, st.accessible
        );
        for (ri, run) in comp.runs.iter().enumerate() {
            if run.first == si && run.invocations.first().map(|i| i.pre) != Some(si) {
                let _ = writeln!(out, "  run {ri} first-state");
            }
            for (ii, inv) in run.invocations.iter().enumerate() {
                if inv.pre == si {
                    let o = match inv.outcome {
                        Outcome::Yielded(e) => format!("yield {e}"),
                        Outcome::Returned => "returns".to_string(),
                        Outcome::Failed => "FAILS".to_string(),
                        Outcome::Blocked => "blocks".to_string(),
                    };
                    let _ = writeln!(
                        out,
                        "  run {ri} inv {ii}: σ{} -> σ{}  {o}",
                        inv.pre, inv.post
                    );
                }
            }
        }
    }
    for (ri, run) in comp.runs.iter().enumerate() {
        let _ = writeln!(
            out,
            "run {ri}: first=σ{} last=σ{} yielded={}",
            run.first,
            run.last(),
            run.yielded_set()
        );
    }
    out
}

/// Renders a conformance verdict with the trace attached when it failed —
/// the one-call debugging entry point.
pub fn render_verdict(figure: Figure, comp: &Computation, conf: &Conformance) -> String {
    let mut out = String::new();
    if conf.is_ok() {
        let _ = writeln!(out, "{figure}: CONFORMS");
        return out;
    }
    let _ = writeln!(out, "{figure}: {} violation(s)", conf.violations.len());
    for v in &conf.violations {
        let _ = writeln!(out, "  - {v}");
    }
    out.push_str(&render(comp));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::check_computation;
    use crate::state::{Outcome, Recorder, State};
    use crate::value::{ElemId, SetValue};

    fn sample() -> Computation {
        let sv: SetValue = [1u64, 2].into();
        let st = || State::fully_accessible(sv.clone());
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Yielded(ElemId(2)));
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        r.finish()
    }

    #[test]
    fn render_lists_states_and_invocations() {
        let comp = sample();
        let s = render(&comp);
        assert!(s.contains("computation:"), "{s}");
        assert!(s.contains("yield e1"), "{s}");
        assert!(s.contains("returns"), "{s}");
        assert!(s.contains("yielded={e1, e2}"), "{s}");
        // Every state appears.
        for i in 0..comp.states.len() {
            assert!(s.contains(&format!("σ{i}")), "missing σ{i} in:\n{s}");
        }
    }

    #[test]
    fn verdict_is_short_on_success_and_full_on_failure() {
        let comp = sample();
        let ok = check_computation(Figure::Fig1, &comp);
        let s = render_verdict(Figure::Fig1, &comp, &ok);
        assert!(s.contains("CONFORMS"));
        assert!(!s.contains("computation:"));

        // Corrupt the run to force a violation.
        let mut bad = comp.clone();
        bad.runs[0].invocations[2].outcome = Outcome::Failed;
        let conf = check_computation(Figure::Fig1, &bad);
        let s = render_verdict(Figure::Fig1, &bad, &conf);
        assert!(s.contains("violation"));
        assert!(s.contains("FAILS"));
        assert!(s.contains("computation:"));
    }

    #[test]
    fn render_handles_empty_computation() {
        let comp = Computation::default();
        let s = render(&comp);
        assert!(s.contains("0 states, 0 run(s)"));
    }

    #[test]
    fn render_marks_blocked_invocations() {
        let sv: SetValue = [1u64].into();
        let mut r = Recorder::new(State {
            members: sv.clone(),
            accessible: SetValue::empty(),
        });
        r.begin_run();
        r.record_invocation(
            State {
                members: sv,
                accessible: SetValue::empty(),
            },
            Outcome::Blocked,
        );
        let comp = r.finish();
        assert!(render(&comp).contains("blocks"));
    }
}
