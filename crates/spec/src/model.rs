//! A pure, in-memory *reference model* of the paper's Section 2 set type.
//!
//! Figure 1 specifies an **immutable** set: `create`, `add`, `remove`, and
//! `size` are value-level operations returning new sets, and `elements` is
//! an iterator over a set value. [`ModelSet`] implements that type exactly
//! — no distribution, no failures — so it serves two purposes:
//!
//! 1. the *reference implementation* the executable specs are sanity-
//!    checked against (a model run must conform to Figure 1 by
//!    construction);
//! 2. the oracle for *differential testing*: in a fault-free quiescent
//!    world, every distributed iterator must yield exactly the model's
//!    element set.

use crate::state::{Outcome, Recorder, State};
use crate::value::{ElemId, SetValue};

/// The immutable set type of Figure 1.
///
/// ```
/// use weakset_spec::model::ModelSet;
/// use weakset_spec::value::ElemId;
/// let s = ModelSet::create().add(ElemId(1)).add(ElemId(2)).add(ElemId(1));
/// assert_eq!(s.size(), 2);
/// let t = s.remove(ElemId(1));
/// assert_eq!(t.size(), 1);
/// assert_eq!(s.size(), 2); // immutable: `s` is unchanged
/// let yielded: Vec<ElemId> = s.elements().collect();
/// assert_eq!(yielded, vec![ElemId(1), ElemId(2)]);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ModelSet {
    value: SetValue,
}

impl ModelSet {
    /// `create`: ensures `t_post = {}` ∧ `new(t)`.
    pub fn create() -> Self {
        ModelSet {
            value: SetValue::empty(),
        }
    }

    /// A model set holding a given value.
    pub fn from_value(value: SetValue) -> Self {
        ModelSet { value }
    }

    /// `add`: ensures `t_post = s_pre ∪ {e}` ∧ `new(t)`.
    #[must_use]
    pub fn add(&self, e: ElemId) -> Self {
        let mut value = self.value.clone();
        value.insert(e);
        ModelSet { value }
    }

    /// `remove`: ensures `t_post = s_pre − {e}` ∧ `new(t)`.
    #[must_use]
    pub fn remove(&self, e: ElemId) -> Self {
        let mut value = self.value.clone();
        value.remove(e);
        ModelSet { value }
    }

    /// `size`: ensures `i = |s_pre|`.
    pub fn size(&self) -> usize {
        self.value.len()
    }

    /// The set's value.
    pub fn value(&self) -> &SetValue {
        &self.value
    }

    /// `elements`: the Figure 1 iterator. Yields each member exactly once
    /// (ascending id — the spec leaves the order free), then terminates.
    pub fn elements(&self) -> ModelElements {
        ModelElements {
            s_first: self.value.clone(),
            yielded: SetValue::empty(),
            done: false,
        }
    }

    /// Runs `elements` to completion while recording the computation, for
    /// conformance checking against Figure 1.
    pub fn elements_recorded(&self) -> (Vec<ElemId>, crate::state::Computation) {
        let st = || State::fully_accessible(self.value.clone());
        let mut rec = Recorder::new(st());
        rec.begin_run();
        let mut out = Vec::new();
        let mut it = self.elements();
        loop {
            match it.next_invocation() {
                Outcome::Yielded(e) => {
                    out.push(e);
                    rec.record_invocation(st(), Outcome::Yielded(e));
                }
                Outcome::Returned => {
                    rec.record_invocation(st(), Outcome::Returned);
                    break;
                }
                _ => unreachable!("the model never fails or blocks"),
            }
        }
        rec.end_run();
        (out, rec.finish())
    }
}

impl FromIterator<ElemId> for ModelSet {
    fn from_iter<I: IntoIterator<Item = ElemId>>(iter: I) -> Self {
        ModelSet {
            value: iter.into_iter().collect(),
        }
    }
}

/// The model `elements` iterator: suspends (yields) per invocation, then
/// returns — Figure 1 made code.
#[derive(Clone, Debug)]
pub struct ModelElements {
    s_first: SetValue,
    yielded: SetValue,
    done: bool,
}

impl ModelElements {
    /// One invocation, in the paper's terms: yields an unyielded element
    /// of `s_first` (suspends) or terminates.
    pub fn next_invocation(&mut self) -> Outcome {
        if self.done {
            return Outcome::Returned;
        }
        match self.s_first.difference(&self.yielded).first() {
            Some(e) => {
                self.yielded.insert(e);
                Outcome::Yielded(e)
            }
            None => {
                self.done = true;
                Outcome::Returned
            }
        }
    }

    /// The `yielded` history object's current value.
    pub fn yielded(&self) -> &SetValue {
        &self.yielded
    }
}

impl Iterator for ModelElements {
    type Item = ElemId;

    fn next(&mut self) -> Option<ElemId> {
        match self.next_invocation() {
            Outcome::Yielded(e) => Some(e),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_computation, Figure};
    use crate::specs::set_ops::{check_add, check_create, check_remove, check_size};

    #[test]
    fn operations_satisfy_their_procedure_specs() {
        let s0 = ModelSet::create();
        check_create(s0.value()).unwrap();
        let s1 = s0.add(ElemId(1));
        check_add(s0.value(), ElemId(1), s1.value()).unwrap();
        let s2 = s1.add(ElemId(2));
        check_add(s1.value(), ElemId(2), s2.value()).unwrap();
        let s3 = s2.remove(ElemId(1));
        check_remove(s2.value(), ElemId(1), s3.value()).unwrap();
        check_size(s2.value(), s2.size()).unwrap();
        check_size(s3.value(), s3.size()).unwrap();
        // Immutability: the originals are untouched.
        assert_eq!(s2.size(), 2);
    }

    #[test]
    fn recorded_model_run_conforms_to_fig1_by_construction() {
        for n in 0..6u64 {
            let s: ModelSet = (1..=n).map(ElemId).collect();
            let (yields, comp) = s.elements_recorded();
            assert_eq!(yields.len(), n as usize);
            check_computation(Figure::Fig1, &comp).assert_ok();
            // The most-constrained behaviour satisfies every figure.
            for fig in Figure::ALL {
                assert!(check_computation(fig, &comp).is_ok(), "{fig}");
            }
        }
    }

    #[test]
    fn iterator_yields_each_element_exactly_once() {
        let s: ModelSet = [3u64, 1, 2].into_iter().map(ElemId).collect();
        let ys: Vec<ElemId> = s.elements().collect();
        assert_eq!(ys, vec![ElemId(1), ElemId(2), ElemId(3)]);
        // Fused after termination.
        let mut it = s.elements();
        for _ in 0..3 {
            it.next();
        }
        assert_eq!(it.next(), None);
        assert_eq!(it.next_invocation(), Outcome::Returned);
        assert_eq!(it.yielded().len(), 3);
    }

    #[test]
    fn empty_set_returns_immediately() {
        let s = ModelSet::create();
        let mut it = s.elements();
        assert_eq!(it.next_invocation(), Outcome::Returned);
        let (yields, comp) = s.elements_recorded();
        assert!(yields.is_empty());
        check_computation(Figure::Fig1, &comp).assert_ok();
    }
}
