//! The model of computation: states, invocations, runs, computations.
//!
//! A computation is a sequence of alternating states and atomic transitions
//! `σ0 S1 σ1 … Sn σn`. For checking weak-set specifications we only need the
//! projection of each state onto (a) the set object's *value* (its members)
//! and (b) which elements are *accessible* to the observing client in that
//! state — the ingredient of the paper's `reachable` construct.

use crate::value::{ElemId, SetValue};
use serde::{Deserialize, Serialize};

/// One observed state σ, projected for a particular client.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct State {
    /// The value of the set object `s` in this state (true membership).
    pub members: SetValue,
    /// The elements accessible from the observing client in this state
    /// (regardless of membership). `reachable(sσ')` for any vintage σ' is
    /// computed as `members(σ') ∩ accessible(σ)`.
    pub accessible: SetValue,
}

impl State {
    /// A state where the set has the given members and all of them (and
    /// nothing else) are accessible.
    pub fn fully_accessible(members: SetValue) -> Self {
        State {
            accessible: members.clone(),
            members,
        }
    }

    /// The paper's `reachable` function applied to a (possibly older)
    /// membership value: the members of `of` that are accessible in `self`.
    pub fn reachable_of(&self, of: &SetValue) -> SetValue {
        of.intersection(&self.accessible)
    }

    /// `reachable(s)` where `s` is this state's own value.
    pub fn reachable_now(&self) -> SetValue {
        self.reachable_of(&self.members)
    }
}

/// How an iterator invocation ended, from the caller's point of view.
///
/// The paper's `terminates` object ranges over these: yielding an element
/// corresponds to `suspends`, `Returned` to normal termination, `Failed` to
/// the failure exception. `Blocked` records that the invocation did *not*
/// complete within the observation window — the optimistic semantics
/// (Figure 6) blocks rather than fail when everything unyielded is
/// unreachable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Outcome {
    /// The iterator yielded an element and suspended.
    Yielded(ElemId),
    /// The iterator terminated normally.
    Returned,
    /// The iterator terminated with the failure exception.
    Failed,
    /// The invocation did not complete (optimistic blocking).
    Blocked,
}

impl Outcome {
    /// True for the two terminating outcomes.
    pub fn is_terminal(self) -> bool {
        matches!(self, Outcome::Returned | Outcome::Failed)
    }
}

/// One invocation (initial call or resumption) of the `elements` iterator.
///
/// `pre` and `post` index into the owning [`Computation`]'s state vector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Invocation {
    /// Index of the pre-state.
    pub pre: usize,
    /// Index of the post-state.
    pub post: usize,
    /// What happened.
    pub outcome: Outcome,
}

/// One complete use of the iterator: the first call through termination (or
/// through the end of observation, if it blocked or was abandoned).
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct IterRun {
    /// Index of the first-state (the state in which the iterator is first
    /// called). Equals the first invocation's pre-state index.
    pub first: usize,
    /// The invocations of this run, in order.
    pub invocations: Vec<Invocation>,
}

impl IterRun {
    /// Index of the last-state: the final invocation's post-state, or the
    /// first-state if the iterator was never invoked.
    pub fn last(&self) -> usize {
        self.invocations.last().map_or(self.first, |i| i.post)
    }

    /// The elements yielded by this run, in order.
    pub fn yields(&self) -> Vec<ElemId> {
        self.invocations
            .iter()
            .filter_map(|i| match i.outcome {
                Outcome::Yielded(e) => Some(e),
                _ => None,
            })
            .collect()
    }

    /// The final value of the `yielded` history object.
    pub fn yielded_set(&self) -> SetValue {
        self.yields().into_iter().collect()
    }

    /// The outcome of the final invocation, if any.
    pub fn final_outcome(&self) -> Option<Outcome> {
        self.invocations.last().map(|i| i.outcome)
    }

    /// True when the run ended with normal termination.
    pub fn returned(&self) -> bool {
        self.final_outcome() == Some(Outcome::Returned)
    }

    /// True when the run ended with the failure exception.
    pub fn failed(&self) -> bool {
        self.final_outcome() == Some(Outcome::Failed)
    }
}

/// A recorded computation: the full state history of the set object as
/// observed by an omniscient monitor, plus the iterator runs indexed into
/// that history.
///
/// States appear in chronological order. Runs may interleave with mutations:
/// mutation transitions introduce new states between invocation boundaries.
#[derive(Clone, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Computation {
    /// σ0, σ1, …, σn in order.
    pub states: Vec<State>,
    /// Iterator runs over those states.
    pub runs: Vec<IterRun>,
}

impl Computation {
    /// A computation with one initial state and no runs.
    pub fn starting_at(initial: State) -> Self {
        Computation {
            states: vec![initial],
            runs: Vec::new(),
        }
    }

    /// Appends a state, returning its index.
    pub fn push_state(&mut self, s: State) -> usize {
        self.states.push(s);
        self.states.len() - 1
    }

    /// The most recent state.
    ///
    /// # Panics
    ///
    /// Panics if the computation has no states.
    pub fn current(&self) -> &State {
        self.states.last().expect("computation has no states")
    }

    /// Index of the most recent state.
    ///
    /// # Panics
    ///
    /// Panics if the computation has no states.
    pub fn current_index(&self) -> usize {
        assert!(!self.states.is_empty(), "computation has no states");
        self.states.len() - 1
    }

    /// Looks up a state by index.
    pub fn state(&self, idx: usize) -> &State {
        &self.states[idx]
    }

    /// The membership values of all states in a closed index range,
    /// used for Figure 6's "member in *some* state between first and last".
    pub fn members_between(&self, first: usize, last: usize) -> impl Iterator<Item = &SetValue> {
        self.states[first..=last].iter().map(|s| &s.members)
    }

    /// True when `e` was a member in some state with index in
    /// `[first, last]`.
    pub fn was_member_between(&self, e: ElemId, first: usize, last: usize) -> bool {
        self.members_between(first, last).any(|m| m.contains(e))
    }
}

/// Convenience builder that records a computation as a system runs: push
/// mutation states and invocation records in chronological order.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    computation: Computation,
    open_run: Option<IterRun>,
}

impl Recorder {
    /// Starts recording from an initial state.
    pub fn new(initial: State) -> Self {
        Recorder {
            computation: Computation::starting_at(initial),
            open_run: None,
        }
    }

    /// Records a state change (mutation, reachability change).
    pub fn observe_state(&mut self, s: State) -> usize {
        self.computation.push_state(s)
    }

    /// Starts an iterator run whose first-state is the current state.
    ///
    /// # Panics
    ///
    /// Panics if a run is already open.
    pub fn begin_run(&mut self) {
        assert!(self.open_run.is_none(), "a run is already open");
        self.open_run = Some(IterRun {
            first: self.computation.current_index(),
            invocations: Vec::new(),
        });
    }

    /// Records one invocation: the pre-state is the current state; `post`
    /// is pushed as a new state.
    ///
    /// # Panics
    ///
    /// Panics if no run is open.
    pub fn record_invocation(&mut self, post: State, outcome: Outcome) {
        let run = self.open_run.as_mut().expect("no open run");
        let pre = self.computation.current_index();
        let post_idx = self.computation.push_state(post);
        run.invocations.push(Invocation {
            pre,
            post: post_idx,
            outcome,
        });
    }

    /// Ends the open run.
    ///
    /// # Panics
    ///
    /// Panics if no run is open.
    pub fn end_run(&mut self) {
        let run = self.open_run.take().expect("no open run");
        self.computation.runs.push(run);
    }

    /// Whether a run is currently open.
    pub fn run_open(&self) -> bool {
        self.open_run.is_some()
    }

    /// Finishes recording (closing any open run) and returns the
    /// computation.
    pub fn finish(mut self) -> Computation {
        if self.open_run.is_some() {
            self.end_run();
        }
        self.computation
    }

    /// The computation recorded so far (open run not included).
    pub fn computation(&self) -> &Computation {
        &self.computation
    }

    /// The current state as recorded.
    pub fn current(&self) -> &State {
        self.computation.current()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    #[test]
    fn reachable_of_intersects_accessibility() {
        let st = State {
            members: sv(&[1, 2, 3]),
            accessible: sv(&[2, 3, 4]),
        };
        assert_eq!(st.reachable_now(), sv(&[2, 3]));
        assert_eq!(st.reachable_of(&sv(&[1, 4])), sv(&[4]));
    }

    #[test]
    fn fully_accessible_state() {
        let st = State::fully_accessible(sv(&[5, 6]));
        assert_eq!(st.reachable_now(), sv(&[5, 6]));
    }

    #[test]
    fn run_yields_and_history_object() {
        let run = IterRun {
            first: 0,
            invocations: vec![
                Invocation {
                    pre: 0,
                    post: 1,
                    outcome: Outcome::Yielded(ElemId(3)),
                },
                Invocation {
                    pre: 1,
                    post: 2,
                    outcome: Outcome::Yielded(ElemId(1)),
                },
                Invocation {
                    pre: 2,
                    post: 3,
                    outcome: Outcome::Returned,
                },
            ],
        };
        assert_eq!(run.yields(), vec![ElemId(3), ElemId(1)]);
        assert_eq!(run.yielded_set(), sv(&[1, 3]));
        assert_eq!(run.last(), 3);
        assert!(run.returned());
        assert!(!run.failed());
    }

    #[test]
    fn empty_run_last_is_first() {
        let run = IterRun {
            first: 4,
            invocations: vec![],
        };
        assert_eq!(run.last(), 4);
        assert_eq!(run.final_outcome(), None);
    }

    #[test]
    fn outcome_terminality() {
        assert!(Outcome::Returned.is_terminal());
        assert!(Outcome::Failed.is_terminal());
        assert!(!Outcome::Yielded(ElemId(0)).is_terminal());
        assert!(!Outcome::Blocked.is_terminal());
    }

    #[test]
    fn was_member_between_scans_window() {
        let mut c = Computation::starting_at(State::fully_accessible(sv(&[1])));
        c.push_state(State::fully_accessible(sv(&[1, 2])));
        c.push_state(State::fully_accessible(sv(&[1])));
        assert!(c.was_member_between(ElemId(2), 0, 2));
        assert!(!c.was_member_between(ElemId(2), 2, 2));
        assert!(!c.was_member_between(ElemId(9), 0, 2));
    }

    #[test]
    fn recorder_builds_runs() {
        let mut r = Recorder::new(State::fully_accessible(sv(&[1, 2])));
        r.begin_run();
        assert!(r.run_open());
        r.record_invocation(
            State::fully_accessible(sv(&[1, 2])),
            Outcome::Yielded(ElemId(1)),
        );
        // A mutation between invocations.
        r.observe_state(State::fully_accessible(sv(&[1, 2, 3])));
        r.record_invocation(
            State::fully_accessible(sv(&[1, 2, 3])),
            Outcome::Yielded(ElemId(2)),
        );
        r.end_run();
        let c = r.finish();
        assert_eq!(c.runs.len(), 1);
        let run = &c.runs[0];
        assert_eq!(run.first, 0);
        assert_eq!(run.invocations[0].pre, 0);
        assert_eq!(run.invocations[0].post, 1);
        // The mutation state sits between post of inv0 and pre of inv1.
        assert_eq!(run.invocations[1].pre, 2);
        assert_eq!(run.invocations[1].post, 3);
        assert_eq!(c.states.len(), 4);
    }

    #[test]
    #[should_panic(expected = "a run is already open")]
    fn recorder_rejects_nested_runs() {
        let mut r = Recorder::new(State::default());
        r.begin_run();
        r.begin_run();
    }

    #[test]
    fn finish_closes_open_run() {
        let mut r = Recorder::new(State::default());
        r.begin_run();
        let c = r.finish();
        assert_eq!(c.runs.len(), 1);
        assert!(c.runs[0].invocations.is_empty());
    }
}
