//! Bounded exhaustive exploration of the design space.
//!
//! The paper presents its four specifications as points in a design space
//! and argues informally about their relative strength. This module makes
//! those relationships *checkable*: it enumerates every computation up to
//! small bounds (element universe, invocation count, mutation and
//! accessibility patterns) and lets tests verify inclusion theorems such
//! as
//!
//! * Figure 3 conformance implies Figure 4 conformance (same ensures,
//!   weaker constraint);
//! * under an immutable history, Figures 3 and 5 coincide;
//! * a failure-free Figure 5 computation conforms to Figure 6.
//!
//! The bounds are deliberately tiny — the point is exhaustiveness, not
//! scale: with two elements and three invocations the enumeration already
//! covers every branch of every ensures clause.

use crate::state::{Computation, Invocation, IterRun, Outcome, State};
use crate::value::{ElemId, SetValue};

/// Enumeration bounds.
#[derive(Clone, Copy, Debug)]
pub struct Bounds {
    /// Elements are `1..=universe`.
    pub universe: u64,
    /// Exact number of invocations per computation.
    pub invocations: usize,
    /// Allow membership mutations between invocations.
    pub allow_mutations: bool,
    /// Allow per-state accessibility to vary (otherwise everything is
    /// always accessible).
    pub vary_accessibility: bool,
}

impl Default for Bounds {
    fn default() -> Self {
        Bounds {
            universe: 2,
            invocations: 2,
            allow_mutations: true,
            vary_accessibility: true,
        }
    }
}

fn subsets(universe: u64) -> Vec<SetValue> {
    let n = universe as u32;
    (0..(1u64 << n))
        .map(|mask| {
            (0..n)
                .filter(|b| mask >> b & 1 == 1)
                .map(|b| ElemId(b as u64 + 1))
                .collect()
        })
        .collect()
}

fn outcomes(universe: u64) -> Vec<Outcome> {
    let mut o: Vec<Outcome> = (1..=universe)
        .map(|e| Outcome::Yielded(ElemId(e)))
        .collect();
    o.push(Outcome::Returned);
    o.push(Outcome::Failed);
    o.push(Outcome::Blocked);
    o
}

/// Enumerates every computation within the bounds. Each computation has
/// one run; states alternate membership/accessibility choices with
/// invocation outcomes.
///
/// The count grows as
/// `2^u × (M × 2^u × |outcomes|)^k` where `M` is the number of mutation
/// choices — keep the bounds small.
pub fn enumerate(bounds: Bounds) -> Vec<Computation> {
    let membership_choices = subsets(bounds.universe);
    let access_choices: Vec<Option<SetValue>> = if bounds.vary_accessibility {
        subsets(bounds.universe).into_iter().map(Some).collect()
    } else {
        vec![None] // None = "everything accessible"
    };
    let outcome_choices = outcomes(bounds.universe);
    let full: SetValue = (1..=bounds.universe).map(ElemId).collect();

    let mut out = Vec::new();
    for initial in &membership_choices {
        // Each step: (next membership, accessibility, outcome).
        let mutation_choices: Vec<Option<&SetValue>> = if bounds.allow_mutations {
            membership_choices.iter().map(Some).collect()
        } else {
            vec![None] // keep current membership
        };
        // Iterative cartesian product over `invocations` steps.
        let mut partials: Vec<(Computation, SetValue, bool)> = vec![{
            let st = State {
                members: initial.clone(),
                accessible: full.clone(),
            };
            (Computation::starting_at(st), initial.clone(), false)
        }];
        for _step in 0..bounds.invocations {
            let mut next = Vec::new();
            for (comp, members, terminated) in &partials {
                if *terminated {
                    // Terminated runs stay as they are (shorter runs are
                    // produced by lower invocation counts; skip).
                    next.push((comp.clone(), members.clone(), true));
                    continue;
                }
                for mutation in &mutation_choices {
                    let new_members = mutation.map_or_else(|| members.clone(), |m| (*m).clone());
                    for access in &access_choices {
                        let accessible = access.clone().unwrap_or_else(|| full.clone());
                        for outcome in &outcome_choices {
                            let mut c = comp.clone();
                            let pre_idx = c.push_state(State {
                                members: new_members.clone(),
                                accessible: accessible.clone(),
                            });
                            let post_idx = c.push_state(State {
                                members: new_members.clone(),
                                accessible: accessible.clone(),
                            });
                            if c.runs.is_empty() {
                                c.runs.push(IterRun {
                                    first: pre_idx,
                                    invocations: Vec::new(),
                                });
                            }
                            c.runs[0].invocations.push(Invocation {
                                pre: pre_idx,
                                post: post_idx,
                                outcome: *outcome,
                            });
                            let term = outcome.is_terminal();
                            next.push((c, new_members.clone(), term));
                        }
                    }
                }
            }
            partials = next;
        }
        out.extend(partials.into_iter().map(|(c, _, _)| c));
    }
    // Fix run.first: the run starts at its first invocation's pre-state.
    for c in &mut out {
        if let Some(first_inv) = c.runs.first().and_then(|r| r.invocations.first()) {
            let first = first_inv.pre;
            c.runs[0].first = first;
        }
    }
    out
}

/// True when the computation's membership never changes.
pub fn is_immutable(comp: &Computation) -> bool {
    comp.states.windows(2).all(|w| w[0].members == w[1].members)
}

/// True when every member is accessible in every state.
pub fn is_fully_accessible(comp: &Computation) -> bool {
    comp.states
        .iter()
        .all(|s| s.members.is_subset(&s.accessible))
}

/// True when no invocation failed.
pub fn is_failure_free(comp: &Computation) -> bool {
    comp.runs
        .iter()
        .flat_map(|r| r.invocations.iter())
        .all(|i| i.outcome != Outcome::Failed)
}

/// True when no invocation blocked.
pub fn is_block_free(comp: &Computation) -> bool {
    comp.runs
        .iter()
        .flat_map(|r| r.invocations.iter())
        .all(|i| i.outcome != Outcome::Blocked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::checker::{check_computation, Figure};

    fn space() -> Vec<Computation> {
        enumerate(Bounds::default())
    }

    #[test]
    fn enumeration_is_substantial_and_diverse() {
        let all = space();
        assert!(all.len() > 10_000, "{}", all.len());
        let conforming = |f: Figure| {
            all.iter()
                .filter(|c| check_computation(f, c).is_ok())
                .count()
        };
        for fig in Figure::ALL {
            let n = conforming(fig);
            assert!(n > 0, "{fig} has conforming computations");
            assert!(n < all.len(), "{fig} rejects something");
        }
    }

    /// Fig 3 ⇒ Fig 4: identical ensures, strictly weaker constraint.
    #[test]
    fn fig3_conformance_implies_fig4() {
        for c in &space() {
            if check_computation(Figure::Fig3, c).is_ok() {
                assert!(
                    check_computation(Figure::Fig4, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// Fig 4 ∧ immutable history ⇒ Fig 3 (the constraint was the only
    /// difference).
    #[test]
    fn fig4_plus_immutability_implies_fig3() {
        for c in &space() {
            if is_immutable(c) && check_computation(Figure::Fig4, c).is_ok() {
                assert!(
                    check_computation(Figure::Fig3, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// Under immutability Figures 3 and 5 coincide: `s_pre = s_first`
    /// makes their ensures clauses identical.
    #[test]
    fn fig3_and_fig5_coincide_on_immutable_histories() {
        for c in &space() {
            if is_immutable(c) {
                assert_eq!(
                    check_computation(Figure::Fig3, c).is_ok(),
                    check_computation(Figure::Fig5, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// Fig 1 ∧ full accessibility ⇒ Fig 3: with nothing unreachable the
    /// failure machinery never engages.
    #[test]
    fn fig1_plus_full_accessibility_implies_fig3() {
        for c in &space() {
            if is_fully_accessible(c) && check_computation(Figure::Fig1, c).is_ok() {
                assert!(
                    check_computation(Figure::Fig3, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// And back: a failure-free, fully-accessible Fig 3 computation is a
    /// Fig 1 computation.
    #[test]
    fn failure_free_fig3_with_full_access_implies_fig1() {
        for c in &space() {
            if is_fully_accessible(c)
                && is_failure_free(c)
                && is_block_free(c)
                && check_computation(Figure::Fig3, c).is_ok()
            {
                assert!(
                    check_computation(Figure::Fig1, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// A failure-free Fig 5 computation conforms to Fig 6: growth is a
    /// special case of arbitrary mutation and the yield/return branches
    /// agree; only the failure branch separates them.
    #[test]
    fn failure_free_fig5_implies_fig6() {
        for c in &space() {
            if is_failure_free(c) && check_computation(Figure::Fig5, c).is_ok() {
                assert!(
                    check_computation(Figure::Fig6, c).is_ok(),
                    "counterexample:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// The converse implications FAIL — the design points are genuinely
    /// distinct. Exhibit witnesses for each strict inclusion.
    #[test]
    fn the_design_points_are_strictly_ordered() {
        let all = space();
        // Fig 4 conforming but not Fig 3 (mutation happened).
        assert!(all
            .iter()
            .any(|c| check_computation(Figure::Fig4, c).is_ok()
                && !check_computation(Figure::Fig3, c).is_ok()));
        // Fig 6 conforming but not Fig 5 (shrinkage or blocking).
        assert!(all
            .iter()
            .any(|c| check_computation(Figure::Fig6, c).is_ok()
                && !check_computation(Figure::Fig5, c).is_ok()));
        // Fig 3 conforming but not Fig 1 (a legitimate failure).
        assert!(all
            .iter()
            .any(|c| check_computation(Figure::Fig3, c).is_ok()
                && !check_computation(Figure::Fig1, c).is_ok()));
        // Fig 5 conforming but not Fig 4 (picked up a concurrent add).
        assert!(all
            .iter()
            .any(|c| check_computation(Figure::Fig5, c).is_ok()
                && !check_computation(Figure::Fig4, c).is_ok()));
    }

    /// The documented Strictness divergence is confined to its corner:
    /// when accessibility never varies (so `yielded` can never escape the
    /// branch's bounding set), the Liberal and Literal readings agree on
    /// every figure for every computation.
    #[test]
    fn liberal_and_literal_agree_when_accessibility_is_stable() {
        let space = enumerate(Bounds {
            vary_accessibility: false,
            ..Bounds::default()
        });
        for c in &space {
            for fig in Figure::ALL {
                let liberal = crate::checker::Checker::new(fig).check(c).is_ok();
                let literal = crate::checker::Checker::new(fig).literal().check(c).is_ok();
                assert_eq!(
                    liberal,
                    literal,
                    "{fig} diverges without accessibility variation:\n{}",
                    crate::render::render(c)
                );
            }
        }
    }

    /// ...and with varying accessibility the readings genuinely diverge
    /// somewhere (the corner exists).
    #[test]
    fn the_strictness_corner_is_inhabited() {
        let space = enumerate(Bounds::default());
        let mut diverged = false;
        for c in &space {
            for fig in [Figure::Fig3, Figure::Fig4, Figure::Fig5] {
                let liberal = crate::checker::Checker::new(fig).check(c).is_ok();
                let literal = crate::checker::Checker::new(fig).literal().check(c).is_ok();
                if liberal != literal {
                    diverged = true;
                }
            }
            if diverged {
                break;
            }
        }
        assert!(diverged, "Literal and Liberal must differ somewhere");
    }

    #[test]
    fn predicates_classify_the_space() {
        let all = space();
        assert!(all.iter().any(is_immutable));
        assert!(all.iter().any(|c| !is_immutable(c)));
        assert!(all.iter().any(is_fully_accessible));
        assert!(all.iter().any(|c| !is_fully_accessible(c)));
        assert!(all.iter().any(is_failure_free));
        assert!(all.iter().any(|c| !is_failure_free(c)));
    }
}
