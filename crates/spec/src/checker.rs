//! The conformance checker: replay a recorded computation against one of
//! the paper's figures and report every violation.

use crate::constraint::{ConstraintKind, ConstraintViolation};
use crate::specs::{self, EnsuresCtx, EnsuresError, Strictness};
use crate::state::{Computation, IterRun, Outcome};
use crate::value::{ElemId, SetValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The design points of the paper, by figure number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Figure {
    /// Immutable set, failures ignored.
    Fig1,
    /// Immutable set with failures (pessimistic).
    Fig3,
    /// Mutable set with loss of mutations (snapshot).
    Fig4,
    /// Growing-only set, pessimistic failure handling.
    Fig5,
    /// Growing and shrinking set, optimistic failure handling.
    Fig6,
}

impl Figure {
    /// All figures, in paper order.
    pub const ALL: [Figure; 5] = [
        Figure::Fig1,
        Figure::Fig3,
        Figure::Fig4,
        Figure::Fig5,
        Figure::Fig6,
    ];

    /// Stable lowercase key (`"fig1"`..`"fig6"`), used as the
    /// metric-name segment for per-figure observability.
    pub fn key(self) -> &'static str {
        match self {
            Figure::Fig1 => "fig1",
            Figure::Fig3 => "fig3",
            Figure::Fig4 => "fig4",
            Figure::Fig5 => "fig5",
            Figure::Fig6 => "fig6",
        }
    }

    /// The `constraint` clause this figure's type specification carries.
    pub fn constraint(self) -> ConstraintKind {
        match self {
            Figure::Fig1 | Figure::Fig3 => ConstraintKind::Immutable,
            Figure::Fig4 | Figure::Fig6 => ConstraintKind::None,
            Figure::Fig5 => ConstraintKind::GrowOnly,
        }
    }

    /// Whether this figure's iterator signature includes
    /// `signals (failure)`.
    pub fn signals_failure(self) -> bool {
        !matches!(self, Figure::Fig1 | Figure::Fig6)
    }

    /// Checks one invocation's `ensures` clause.
    ///
    /// # Errors
    ///
    /// Returns the violation, if any.
    pub fn check_invocation(
        self,
        ctx: &EnsuresCtx<'_>,
        outcome: Outcome,
    ) -> Result<(), EnsuresError> {
        match self {
            Figure::Fig1 => specs::fig1::check_invocation(ctx, outcome),
            Figure::Fig3 => specs::fig3::check_invocation(ctx, outcome),
            Figure::Fig4 => specs::fig4::check_invocation(ctx, outcome),
            Figure::Fig5 => specs::fig5::check_invocation(ctx, outcome),
            Figure::Fig6 => specs::fig6::check_invocation(ctx, outcome),
        }
    }
}

impl fmt::Display for Figure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Figure::Fig1 => "Figure 1 (immutable, no failures)",
            Figure::Fig3 => "Figure 3 (immutable with failures)",
            Figure::Fig4 => "Figure 4 (snapshot, lost mutations)",
            Figure::Fig5 => "Figure 5 (grow-only, pessimistic)",
            Figure::Fig6 => "Figure 6 (grow+shrink, optimistic)",
        };
        f.write_str(s)
    }
}

/// One conformance violation found in a computation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Violation {
    /// The type's `constraint` clause failed.
    Constraint(ConstraintViolation),
    /// An invocation's `ensures` clause failed.
    Ensures {
        /// Index of the run within the computation.
        run: usize,
        /// Index of the invocation within the run.
        invocation: usize,
        /// The specific clause violation.
        error: EnsuresError,
    },
    /// An invocation was recorded after the run already terminated.
    AfterTermination {
        /// Index of the run within the computation.
        run: usize,
        /// Index of the offending invocation.
        invocation: usize,
    },
    /// Run structure is malformed (state indices out of order or out of
    /// bounds) — a recorder bug rather than a semantics bug.
    Malformed {
        /// Index of the run within the computation.
        run: usize,
        /// What is wrong.
        detail: String,
    },
    /// §3.4 visibility soundness: an element was yielded that was never a
    /// member of the set in any state within the run's span (reported by
    /// [`crate::visibility::check_execution`]).
    PhantomYield {
        /// Index of the run within the computation.
        run: usize,
        /// The phantom element.
        elem: ElemId,
    },
    /// A causal-session axiom failed: the run terminated normally while
    /// session dependencies were never made visible (reported by
    /// [`crate::visibility::check_execution`]).
    SessionHidden {
        /// Index of the run within the computation.
        run: usize,
        /// Session-floor elements the run never yielded.
        missing: SetValue,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Constraint(c) => write!(f, "{c}"),
            Violation::Ensures {
                run,
                invocation,
                error,
            } => write!(f, "run {run}, invocation {invocation}: {error}"),
            Violation::AfterTermination { run, invocation } => {
                write!(f, "run {run}: invocation {invocation} after termination")
            }
            Violation::Malformed { run, detail } => {
                write!(f, "run {run} malformed: {detail}")
            }
            Violation::PhantomYield { run, elem } => {
                write!(
                    f,
                    "run {run}: yielded {elem}, which was never a member during the run"
                )
            }
            Violation::SessionHidden { run, missing } => {
                write!(
                    f,
                    "run {run}: terminated without yielding session dependencies {missing}"
                )
            }
        }
    }
}

/// The result of checking a computation against a figure.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct Conformance {
    /// Every violation found, in discovery order.
    pub violations: Vec<Violation>,
}

impl Conformance {
    /// True when the computation conforms.
    pub fn is_ok(&self) -> bool {
        self.violations.is_empty()
    }

    /// A one-line human-readable report: `"ok"`, or the violation count
    /// followed by each violation. Used by harnesses (e.g. `weakset-dst`)
    /// that fold conformance results into run reports and repro artifacts.
    pub fn summary(&self) -> String {
        if self.is_ok() {
            "ok".to_string()
        } else {
            let items: Vec<String> = self.violations.iter().map(|v| v.to_string()).collect();
            format!("{} violation(s): {}", items.len(), items.join("; "))
        }
    }

    /// Panics with a readable report if the computation does not conform.
    ///
    /// # Panics
    ///
    /// Panics when violations were found (intended for tests).
    pub fn assert_ok(&self) {
        assert!(
            self.is_ok(),
            "spec violations:\n{}",
            self.violations
                .iter()
                .map(|v| format!("  - {v}"))
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}

/// Checks a whole computation — constraint plus every run's invocations —
/// against a figure, using the default liberal reading.
pub fn check_computation(figure: Figure, comp: &Computation) -> Conformance {
    Checker::new(figure).check(comp)
}

/// Checks a computation against a figure under an overridden constraint —
/// the entry point for the relaxed per-run readings (§3.1's
/// [`ConstraintKind::ImmutableDuringRuns`] for the locked baseline, §3.3's
/// [`ConstraintKind::GrowOnlyDuringRuns`] for guarded grow-only runs),
/// where the environment only promises the constraint while an iterator
/// run is open.
pub fn check_computation_with(
    figure: Figure,
    constraint: ConstraintKind,
    comp: &Computation,
) -> Conformance {
    Checker::new(figure).with_constraint(constraint).check(comp)
}

/// A configurable conformance checker.
#[derive(Clone, Copy, Debug)]
pub struct Checker {
    figure: Figure,
    strictness: Strictness,
    constraint: ConstraintKind,
}

impl Checker {
    /// A checker for a figure with its canonical constraint and the liberal
    /// condition reading.
    pub fn new(figure: Figure) -> Self {
        Checker {
            figure,
            strictness: Strictness::Liberal,
            constraint: figure.constraint(),
        }
    }

    /// Switches to the literal reading of the branch conditions.
    pub fn literal(mut self) -> Self {
        self.strictness = Strictness::Literal;
        self
    }

    /// Overrides the constraint clause (e.g. the relaxed §3.1/§3.3
    /// variants).
    pub fn with_constraint(mut self, c: ConstraintKind) -> Self {
        self.constraint = c;
        self
    }

    /// The figure being checked.
    pub fn figure(&self) -> Figure {
        self.figure
    }

    /// Checks a computation, returning every violation found.
    pub fn check(&self, comp: &Computation) -> Conformance {
        let mut out = Conformance::default();
        if let Err(v) = self.constraint.check(comp) {
            out.violations.push(Violation::Constraint(v));
        }
        for (ri, run) in comp.runs.iter().enumerate() {
            self.check_run(comp, ri, run, &mut out);
        }
        out
    }

    fn check_run(&self, comp: &Computation, ri: usize, run: &IterRun, out: &mut Conformance) {
        let n_states = comp.states.len();
        if run.first >= n_states {
            out.violations.push(Violation::Malformed {
                run: ri,
                detail: format!("first-state index {} out of bounds", run.first),
            });
            return;
        }
        let s_first = comp.states[run.first].members.clone();
        let mut yielded = SetValue::empty();
        let mut terminated = false;
        let mut prev_post = run.first;
        for (ii, inv) in run.invocations.iter().enumerate() {
            if inv.pre >= n_states || inv.post >= n_states || inv.pre > inv.post {
                out.violations.push(Violation::Malformed {
                    run: ri,
                    detail: format!(
                        "invocation {ii} has bad state indices pre={} post={}",
                        inv.pre, inv.post
                    ),
                });
                return;
            }
            if inv.pre < prev_post {
                out.violations.push(Violation::Malformed {
                    run: ri,
                    detail: format!("invocation {ii} pre-state precedes previous post-state"),
                });
                return;
            }
            if terminated {
                out.violations.push(Violation::AfterTermination {
                    run: ri,
                    invocation: ii,
                });
                continue;
            }
            let ctx = EnsuresCtx {
                s_first: &s_first,
                pre: &comp.states[inv.pre],
                yielded_pre: &yielded,
                strictness: self.strictness,
            };
            if let Err(error) = self.figure.check_invocation(&ctx, inv.outcome) {
                out.violations.push(Violation::Ensures {
                    run: ri,
                    invocation: ii,
                    error,
                });
            }
            match inv.outcome {
                Outcome::Yielded(e) => {
                    yielded.insert(e);
                }
                Outcome::Returned | Outcome::Failed => terminated = true,
                Outcome::Blocked => {}
            }
            prev_post = inv.post;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Outcome, Recorder, State};
    use crate::value::{ElemId, SetValue};

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    /// Records a clean Figure-1 run that drains {1,2} and returns.
    fn clean_immutable_run() -> Computation {
        let st = || State::fully_accessible(sv(&[1, 2]));
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Yielded(ElemId(2)));
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        r.finish()
    }

    #[test]
    fn clean_run_conforms_to_fig1() {
        let comp = clean_immutable_run();
        check_computation(Figure::Fig1, &comp).assert_ok();
        // It also conforms to every other figure: it is the most
        // constrained behaviour.
        for fig in Figure::ALL {
            assert!(check_computation(fig, &comp).is_ok(), "{fig}");
        }
    }

    #[test]
    fn duplicate_yield_is_caught() {
        let st = || State::fully_accessible(sv(&[1, 2]));
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.end_run();
        let comp = r.finish();
        let c = check_computation(Figure::Fig1, &comp);
        assert_eq!(c.violations.len(), 1);
        assert!(matches!(
            &c.violations[0],
            Violation::Ensures {
                error: EnsuresError::YieldNotAllowed { .. },
                ..
            }
        ));
    }

    #[test]
    fn mutation_breaks_fig1_constraint_but_not_fig6() {
        let mut r = Recorder::new(State::fully_accessible(sv(&[1])));
        r.begin_run();
        r.record_invocation(
            State::fully_accessible(sv(&[1])),
            Outcome::Yielded(ElemId(1)),
        );
        // Mutation: 2 added mid-run.
        r.observe_state(State::fully_accessible(sv(&[1, 2])));
        r.record_invocation(
            State::fully_accessible(sv(&[1, 2])),
            Outcome::Yielded(ElemId(2)),
        );
        r.record_invocation(State::fully_accessible(sv(&[1, 2])), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        let fig1 = check_computation(Figure::Fig1, &comp);
        assert!(fig1
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Constraint(_))));
        // Fig 5 (grow-only) and Fig 6 accept it.
        check_computation(Figure::Fig5, &comp).assert_ok();
        check_computation(Figure::Fig6, &comp).assert_ok();
    }

    #[test]
    fn invocation_after_termination_is_flagged() {
        let st = || State::fully_accessible(sv(&[]));
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Returned);
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        let c = check_computation(Figure::Fig1, &comp);
        assert!(c
            .violations
            .iter()
            .any(|v| matches!(v, Violation::AfterTermination { invocation: 1, .. })));
    }

    #[test]
    fn fig3_accepts_failure_under_partition() {
        // {1,2} with 2 inaccessible throughout: yield 1, then fail.
        let st = || State {
            members: sv(&[1, 2]),
            accessible: sv(&[1]),
        };
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Failed);
        r.end_run();
        let comp = r.finish();
        check_computation(Figure::Fig3, &comp).assert_ok();
        // Figure 1 rejects the failure.
        assert!(!check_computation(Figure::Fig1, &comp).is_ok());
        // Figure 6 rejects it too (no failure signal).
        assert!(!check_computation(Figure::Fig6, &comp).is_ok());
    }

    #[test]
    fn fig6_accepts_blocking_fig5_rejects() {
        let st = || State {
            members: sv(&[1]),
            accessible: sv(&[]),
        };
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Blocked);
        r.end_run();
        let comp = r.finish();
        check_computation(Figure::Fig6, &comp).assert_ok();
        let c5 = check_computation(Figure::Fig5, &comp);
        assert!(!c5.is_ok());
    }

    #[test]
    fn malformed_indices_reported() {
        let mut comp = clean_immutable_run();
        comp.runs[0].invocations[1].pre = 0; // goes backwards
        let c = check_computation(Figure::Fig1, &comp);
        assert!(c
            .violations
            .iter()
            .any(|v| matches!(v, Violation::Malformed { .. })));

        let mut comp2 = clean_immutable_run();
        comp2.runs[0].first = 99;
        let c2 = check_computation(Figure::Fig1, &comp2);
        assert!(matches!(&c2.violations[0], Violation::Malformed { .. }));
    }

    #[test]
    fn constraint_override_applies() {
        // Mutation between two runs: full immutability rejects, per-run
        // immutability accepts.
        let s1 = || State::fully_accessible(sv(&[1]));
        let s2 = || State::fully_accessible(sv(&[2]));
        let mut r = Recorder::new(s1());
        r.begin_run();
        r.record_invocation(s1(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(s1(), Outcome::Returned);
        r.end_run();
        r.observe_state(s2());
        r.begin_run();
        r.record_invocation(s2(), Outcome::Yielded(ElemId(2)));
        r.record_invocation(s2(), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        assert!(!Checker::new(Figure::Fig3).check(&comp).is_ok());
        Checker::new(Figure::Fig3)
            .with_constraint(ConstraintKind::ImmutableDuringRuns)
            .check(&comp)
            .assert_ok();
    }

    #[test]
    fn figure_metadata() {
        assert_eq!(Figure::Fig1.constraint(), ConstraintKind::Immutable);
        assert_eq!(Figure::Fig4.constraint(), ConstraintKind::None);
        assert_eq!(Figure::Fig5.constraint(), ConstraintKind::GrowOnly);
        assert!(Figure::Fig3.signals_failure());
        assert!(!Figure::Fig6.signals_failure());
        assert!(Figure::Fig5.to_string().contains("Figure 5"));
        assert_eq!(Checker::new(Figure::Fig5).figure(), Figure::Fig5);
    }

    #[test]
    fn violation_display_is_readable() {
        let st = || State::fully_accessible(sv(&[1]));
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Failed);
        r.end_run();
        let comp = r.finish();
        let c = check_computation(Figure::Fig1, &comp);
        let msg = c.violations[0].to_string();
        assert!(msg.contains("run 0"), "{msg}");
    }
}
