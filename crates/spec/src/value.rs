//! The LSL-style value space for sets.
//!
//! The paper's assertion language manipulates mathematical set values with
//! `∪`, `−` (difference), `∈`, `⊆`, and `|s|`. [`SetValue`] is that value
//! space over opaque element identities ([`ElemId`]).

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// An opaque element identity.
///
/// The specs only ever compare elements for equality and collect them into
/// sets, so an integer id suffices; richer payloads live in the store layer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ElemId(pub u64);

impl fmt::Debug for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for ElemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl From<u64> for ElemId {
    fn from(v: u64) -> Self {
        ElemId(v)
    }
}

/// A finite mathematical set of elements: the value of a set object in some
/// state.
///
/// ```
/// use weakset_spec::value::{ElemId, SetValue};
/// let a: SetValue = [1, 2, 3].into_iter().map(ElemId).collect();
/// let b: SetValue = [2, 3, 4].into_iter().map(ElemId).collect();
/// assert_eq!(a.union(&b).len(), 4);
/// assert_eq!(a.difference(&b).len(), 1);
/// assert!(a.intersection(&b).is_subset(&a));
/// ```
#[derive(Clone, PartialEq, Eq, Default, Hash, Serialize, Deserialize)]
pub struct SetValue {
    elems: BTreeSet<ElemId>,
}

impl SetValue {
    /// The empty set `{}`.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A singleton set `{e}`.
    pub fn singleton(e: ElemId) -> Self {
        let mut s = Self::empty();
        s.insert(e);
        s
    }

    /// `|s|`.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// True when this is the empty set.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// `e ∈ s`.
    pub fn contains(&self, e: ElemId) -> bool {
        self.elems.contains(&e)
    }

    /// Adds an element; returns true if it was new.
    pub fn insert(&mut self, e: ElemId) -> bool {
        self.elems.insert(e)
    }

    /// Removes an element; returns true if it was present.
    pub fn remove(&mut self, e: ElemId) -> bool {
        self.elems.remove(&e)
    }

    /// `self ∪ other`.
    pub fn union(&self, other: &SetValue) -> SetValue {
        SetValue {
            elems: self.elems.union(&other.elems).copied().collect(),
        }
    }

    /// `self − other` (set difference).
    pub fn difference(&self, other: &SetValue) -> SetValue {
        SetValue {
            elems: self.elems.difference(&other.elems).copied().collect(),
        }
    }

    /// `self ∩ other`.
    pub fn intersection(&self, other: &SetValue) -> SetValue {
        SetValue {
            elems: self.elems.intersection(&other.elems).copied().collect(),
        }
    }

    /// `self ⊆ other`.
    pub fn is_subset(&self, other: &SetValue) -> bool {
        self.elems.is_subset(&other.elems)
    }

    /// `self ⊊ other` (strict subset).
    pub fn is_strict_subset(&self, other: &SetValue) -> bool {
        self.len() < other.len() && self.is_subset(other)
    }

    /// Iterates elements in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = ElemId> + '_ {
        self.elems.iter().copied()
    }

    /// An arbitrary element, if any (the least id, deterministically).
    pub fn first(&self) -> Option<ElemId> {
        self.elems.first().copied()
    }
}

impl FromIterator<ElemId> for SetValue {
    fn from_iter<I: IntoIterator<Item = ElemId>>(iter: I) -> Self {
        SetValue {
            elems: iter.into_iter().collect(),
        }
    }
}

impl Extend<ElemId> for SetValue {
    fn extend<I: IntoIterator<Item = ElemId>>(&mut self, iter: I) {
        self.elems.extend(iter);
    }
}

impl<const N: usize> From<[u64; N]> for SetValue {
    fn from(ids: [u64; N]) -> Self {
        ids.into_iter().map(ElemId).collect()
    }
}

impl fmt::Debug for SetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, e) in self.elems.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, "}}")
    }
}

impl fmt::Display for SetValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    #[test]
    fn empty_set_properties() {
        let e = SetValue::empty();
        assert!(e.is_empty());
        assert_eq!(e.len(), 0);
        assert!(e.is_subset(&s(&[1])));
        assert!(!e.is_strict_subset(&e));
        assert_eq!(e.first(), None);
    }

    #[test]
    fn insert_and_remove() {
        let mut v = SetValue::empty();
        assert!(v.insert(ElemId(1)));
        assert!(!v.insert(ElemId(1))); // no duplicates
        assert!(v.contains(ElemId(1)));
        assert!(v.remove(ElemId(1)));
        assert!(!v.remove(ElemId(1)));
        assert!(v.is_empty());
    }

    #[test]
    fn union_difference_intersection() {
        let a = s(&[1, 2, 3]);
        let b = s(&[3, 4]);
        assert_eq!(a.union(&b), s(&[1, 2, 3, 4]));
        assert_eq!(a.difference(&b), s(&[1, 2]));
        assert_eq!(a.intersection(&b), s(&[3]));
    }

    #[test]
    fn subset_relations() {
        let a = s(&[1, 2]);
        let b = s(&[1, 2, 3]);
        assert!(a.is_subset(&b));
        assert!(a.is_strict_subset(&b));
        assert!(b.is_subset(&b));
        assert!(!b.is_strict_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn singleton_and_first() {
        let v = SetValue::singleton(ElemId(9));
        assert_eq!(v.len(), 1);
        assert_eq!(v.first(), Some(ElemId(9)));
    }

    #[test]
    fn iter_is_sorted_and_deterministic() {
        let v = s(&[5, 1, 3]);
        let order: Vec<u64> = v.iter().map(|e| e.0).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn display_formats() {
        assert_eq!(s(&[2, 1]).to_string(), "{e1, e2}");
        assert_eq!(SetValue::empty().to_string(), "{}");
        assert_eq!(ElemId(4).to_string(), "e4");
    }

    #[test]
    fn from_array_literal() {
        let v: SetValue = [1u64, 2].into();
        assert_eq!(v, s(&[1, 2]));
    }

    #[test]
    fn extend_adds_all() {
        let mut v = s(&[1]);
        v.extend([ElemId(2), ElemId(3)]);
        assert_eq!(v, s(&[1, 2, 3]));
    }
}
