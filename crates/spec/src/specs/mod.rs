//! Executable `ensures` clauses, one module per figure of the paper.
//!
//! Each module exports `check_invocation`, the per-invocation post-condition
//! of that figure's `elements` iterator. The checker in [`crate::checker`]
//! folds these over a recorded [`crate::state::Computation`], maintaining
//! the `yielded` history object exactly as the `remembers` clause
//! prescribes.
//!
//! # Strictness
//!
//! The figures express "still more to yield" as a *strict-subset* test,
//! e.g. `yielded_pre ⊊ reachable(s_first)`. When accessibility can shrink
//! mid-run, `yielded` may cease to be a subset of the reachable set even
//! though unyielded reachable elements remain; the strict-subset test is
//! then false and the figure (read literally) forces a failure. The paper's
//! prose ("if there are still elements to yield ... we choose a reachable
//! one") makes the intent clear, so the default [`Strictness::Liberal`]
//! mode tests for the *existence of an unyielded allowed element* instead.
//! The two readings coincide whenever `yielded_pre` is a subset of the
//! branch's bounding set — which holds in every run the constraint and a
//! non-shrinking accessibility admit. [`Strictness::Literal`] checks the
//! figures exactly as written, for studying that corner.

pub mod fig1;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod set_ops;

use crate::state::{Outcome, State};
use crate::value::{ElemId, SetValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How to read the figures' branch conditions (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Strictness {
    /// Branch on "an unyielded allowed element exists" (the paper's intent).
    #[default]
    Liberal,
    /// Branch on the strict-subset/equality tests exactly as written.
    Literal,
}

/// Inputs to a per-invocation `ensures` check.
#[derive(Clone, Debug)]
pub struct EnsuresCtx<'a> {
    /// `s_first`: the set's value in the state where the iterator was first
    /// called.
    pub s_first: &'a SetValue,
    /// The invocation's pre-state (value and accessibility).
    pub pre: &'a State,
    /// The `yielded` history object's value entering this invocation.
    pub yielded_pre: &'a SetValue,
    /// Condition-reading mode.
    pub strictness: Strictness,
}

/// Why an invocation violates an `ensures` clause.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum EnsuresError {
    /// The spec requires yielding, but the outcome was something else.
    ExpectedYield {
        /// The set of elements the spec would have allowed.
        allowed: SetValue,
        /// What happened instead.
        got: Outcome,
    },
    /// An element was yielded that the spec does not allow here.
    YieldNotAllowed {
        /// The yielded element.
        elem: ElemId,
        /// The set of elements that would have been allowed.
        allowed: SetValue,
    },
    /// The spec requires normal termination, but the outcome differs.
    ExpectedReturn {
        /// What happened instead.
        got: Outcome,
    },
    /// The spec requires the failure exception, but the outcome differs.
    ExpectedFail {
        /// What happened instead.
        got: Outcome,
    },
    /// `yielded_post ⊆ bound` was violated by this yield.
    PostNotSubset {
        /// The yielded element.
        elem: ElemId,
        /// The bounding set (`s_first` or `s_pre`).
        bound: SetValue,
    },
    /// This figure's iterator never signals failure, but it failed.
    FailureNotAllowed,
    /// Blocking is not permitted by this figure (pessimistic semantics).
    BlockNotAllowed,
}

impl fmt::Display for EnsuresError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EnsuresError::ExpectedYield { allowed, got } => {
                write!(f, "expected a yield from {allowed}, got {got:?}")
            }
            EnsuresError::YieldNotAllowed { elem, allowed } => {
                write!(f, "yielded {elem} but only {allowed} is allowed")
            }
            EnsuresError::ExpectedReturn { got } => {
                write!(f, "expected normal termination, got {got:?}")
            }
            EnsuresError::ExpectedFail { got } => {
                write!(f, "expected the failure exception, got {got:?}")
            }
            EnsuresError::PostNotSubset { elem, bound } => {
                write!(f, "yielding {elem} breaks yielded ⊆ {bound}")
            }
            EnsuresError::FailureNotAllowed => {
                write!(f, "this semantics never signals failure")
            }
            EnsuresError::BlockNotAllowed => {
                write!(f, "this semantics never blocks")
            }
        }
    }
}

impl std::error::Error for EnsuresError {}

/// Shared "yield branch" logic: the outcome must be `Yielded(e)` with
/// `e ∈ allowed ∖ yielded_pre`, and the yield must keep `yielded ⊆ bound`.
pub(crate) fn expect_yield(
    allowed: &SetValue,
    yielded_pre: &SetValue,
    bound: &SetValue,
    outcome: Outcome,
) -> Result<(), EnsuresError> {
    let eligible = allowed.difference(yielded_pre);
    match outcome {
        Outcome::Yielded(e) => {
            if !eligible.contains(e) {
                return Err(EnsuresError::YieldNotAllowed {
                    elem: e,
                    allowed: eligible,
                });
            }
            if !bound.contains(e) {
                return Err(EnsuresError::PostNotSubset {
                    elem: e,
                    bound: bound.clone(),
                });
            }
            Ok(())
        }
        got => Err(EnsuresError::ExpectedYield {
            allowed: eligible,
            got,
        }),
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use super::*;

    pub fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    pub fn state(members: &[u64], accessible: &[u64]) -> State {
        State {
            members: sv(members),
            accessible: sv(accessible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::sv;
    use super::*;

    #[test]
    fn expect_yield_accepts_eligible_element() {
        let r = expect_yield(
            &sv(&[1, 2]),
            &sv(&[1]),
            &sv(&[1, 2, 3]),
            Outcome::Yielded(ElemId(2)),
        );
        assert!(r.is_ok());
    }

    #[test]
    fn expect_yield_rejects_already_yielded() {
        let r = expect_yield(
            &sv(&[1, 2]),
            &sv(&[1]),
            &sv(&[1, 2]),
            Outcome::Yielded(ElemId(1)),
        );
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { elem, .. }) if elem == ElemId(1)));
    }

    #[test]
    fn expect_yield_rejects_foreign_element() {
        let r = expect_yield(&sv(&[1]), &sv(&[]), &sv(&[1]), Outcome::Yielded(ElemId(7)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn expect_yield_rejects_non_yield() {
        let r = expect_yield(&sv(&[1]), &sv(&[]), &sv(&[1]), Outcome::Returned);
        assert!(matches!(r, Err(EnsuresError::ExpectedYield { .. })));
    }

    #[test]
    fn errors_display() {
        let e = EnsuresError::FailureNotAllowed;
        assert!(e.to_string().contains("never signals failure"));
        let e = EnsuresError::YieldNotAllowed {
            elem: ElemId(3),
            allowed: sv(&[1]),
        };
        assert!(e.to_string().contains("e3"));
    }
}
