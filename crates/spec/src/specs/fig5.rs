//! Figure 5: growing-only set, **pessimistic** failure handling.
//!
//! ```text
//! constraint s_i ⊆ s_j
//! elements = iter (s: set) yields (e: elem) signals (failure)
//!   remembers yielded: set initially {}
//!   ensures if yielded_pre ⊊ reachable(s_pre)
//!           then yielded_post − yielded_pre = {e}
//!                ∧ yielded_post ⊆ s_pre
//!                ∧ e ∈ reachable(s_pre)
//!                ∧ suspends
//!           else if yielded_pre = s_pre
//!           then returns
//!           else fails
//! ```
//!
//! Unlike Figures 3 and 4, each invocation consults the **current** state
//! of the set (`s_pre`), so additions made while iterating are picked up.
//! If a known member cannot be reached, the iterator fails immediately
//! (pessimism). Because the set may grow faster than the iterator drains
//! it, a conforming iterator need never terminate — the specification
//! permits unbounded runs.

use super::{expect_yield, EnsuresCtx, EnsuresError, Strictness};
use crate::state::Outcome;

/// Checks one invocation against Figure 5's `ensures` clause.
///
/// # Errors
///
/// Returns the specific [`EnsuresError`] describing the deviation.
pub fn check_invocation(ctx: &EnsuresCtx<'_>, outcome: Outcome) -> Result<(), EnsuresError> {
    if outcome == Outcome::Blocked {
        return Err(EnsuresError::BlockNotAllowed);
    }
    let s_pre = &ctx.pre.members;
    let reach_pre = ctx.pre.reachable_now();
    let (yield_branch, return_branch) = match ctx.strictness {
        Strictness::Literal => (
            ctx.yielded_pre.is_strict_subset(&reach_pre),
            *ctx.yielded_pre == *s_pre,
        ),
        Strictness::Liberal => {
            let unyielded_reachable = !reach_pre.difference(ctx.yielded_pre).is_empty();
            let unyielded_members = !s_pre.difference(ctx.yielded_pre).is_empty();
            (unyielded_reachable, !unyielded_members)
        }
    };
    if yield_branch {
        expect_yield(&reach_pre, ctx.yielded_pre, s_pre, outcome)
    } else if return_branch {
        match outcome {
            Outcome::Returned => Ok(()),
            got => Err(EnsuresError::ExpectedReturn { got }),
        }
    } else {
        match outcome {
            Outcome::Failed => Ok(()),
            got => Err(EnsuresError::ExpectedFail { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{state, sv};
    use super::*;
    use crate::state::State;
    use crate::value::{ElemId, SetValue};

    fn ctx<'a>(s_first: &'a SetValue, pre: &'a State, yielded: &'a SetValue) -> EnsuresCtx<'a> {
        EnsuresCtx {
            s_first,
            pre,
            yielded_pre: yielded,
            strictness: Strictness::Liberal,
        }
    }

    #[test]
    fn picks_up_growth_after_first_state() {
        // s_first was {1}; the set has grown to {1, 2}. Unlike Figure 4,
        // yielding 2 is required here.
        let s_first = sv(&[1]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[1]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(2))).is_ok());
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Returned);
        assert!(matches!(r, Err(EnsuresError::ExpectedYield { .. })));
    }

    #[test]
    fn fails_pessimistically_on_unreachable_member() {
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1]); // 2 exists but unreachable
        let y = sv(&[1]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Failed).is_ok());
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Blocked);
        assert_eq!(r, Err(EnsuresError::BlockNotAllowed));
    }

    #[test]
    fn returns_only_when_current_members_exhausted() {
        let s_first = sv(&[1]);
        let pre = state(&[1, 2], &[1, 2]);
        let all = sv(&[1, 2]);
        assert!(check_invocation(&ctx(&s_first, &pre, &all), Outcome::Returned).is_ok());
    }

    #[test]
    fn yield_must_be_reachable_now() {
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1]);
        let y = sv(&[]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(1))).is_ok());
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(2)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn empty_current_set_returns() {
        let s_first = sv(&[]);
        let pre = state(&[], &[]);
        let y = sv(&[]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Returned).is_ok());
    }

    #[test]
    fn literal_matches_liberal_under_invariant() {
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2, 3], &[1, 2, 3]);
        for y_ids in [&[][..], &[1][..], &[1, 2, 3][..]] {
            let y = sv(y_ids);
            for outcome in [
                Outcome::Yielded(ElemId(3)),
                Outcome::Returned,
                Outcome::Failed,
            ] {
                let mut c = ctx(&s_first, &pre, &y);
                c.strictness = Strictness::Liberal;
                let a = check_invocation(&c, outcome).is_ok();
                c.strictness = Strictness::Literal;
                let b = check_invocation(&c, outcome).is_ok();
                assert_eq!(a, b, "y={y:?} outcome={outcome:?}");
            }
        }
    }
}
