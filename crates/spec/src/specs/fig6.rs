//! Figure 6: growing and shrinking set, **optimistic** failure handling —
//! the weakest point in the design space and the semantics of the dynamic
//! sets the authors implemented.
//!
//! ```text
//! constraint true
//! elements = iter (s: set) yields (e: elem)
//!   remembers yielded: set initially {}
//!   ensures if ∃ e ∈ s_pre : e ∉ yielded_pre
//!           then yielded_post − yielded_pre = {e}
//!                ∧ e ∈ reachable(s_pre)
//!                ∧ suspends
//!           else returns
//! ```
//!
//! There is no `signals (failure)` clause at all: the iterator is
//! optimistic, *blocking* when every unyielded member is unreachable, "with
//! the expectation that in a later invocation inaccessible objects will
//! become accessible again". A blocked invocation is recorded as
//! [`Outcome::Blocked`]; it is legal exactly while the then-branch holds
//! (returning would be wrong, failing is not in the signature).
//!
//! Every yielded element was a member of the set in the invocation's
//! pre-state, so a fortiori "in the set, for some state of the set between
//! the first-state and last-state" (§3.4). [`yields_were_members`] checks
//! that derived property over a whole computation.

use super::{expect_yield, EnsuresCtx, EnsuresError};
use crate::state::{Computation, IterRun, Outcome};

/// Checks one invocation against Figure 6's `ensures` clause.
///
/// Both strictness modes agree here: the figure's branch condition is
/// already existential (`∃ e ∈ s_pre : e ∉ yielded_pre`).
///
/// # Errors
///
/// Returns the specific [`EnsuresError`] describing the deviation.
pub fn check_invocation(ctx: &EnsuresCtx<'_>, outcome: Outcome) -> Result<(), EnsuresError> {
    if outcome == Outcome::Failed {
        return Err(EnsuresError::FailureNotAllowed);
    }
    let s_pre = &ctx.pre.members;
    let unyielded = s_pre.difference(ctx.yielded_pre);
    if !unyielded.is_empty() {
        if outcome == Outcome::Blocked {
            // Legal: the iterator may not complete while it cannot reach an
            // unyielded member. (Safety cannot force progress; liveness is
            // exercised by the availability experiments.)
            return Ok(());
        }
        let reach_pre = ctx.pre.reachable_now();
        expect_yield(&reach_pre, ctx.yielded_pre, s_pre, outcome)
    } else {
        match outcome {
            Outcome::Returned => Ok(()),
            got => Err(EnsuresError::ExpectedReturn { got }),
        }
    }
}

/// The §3.4 derived property: every element yielded by `run` was a member
/// of the set in some state between the run's first-state and last-state.
pub fn yields_were_members(comp: &Computation, run: &IterRun) -> bool {
    run.yields()
        .into_iter()
        .all(|e| comp.was_member_between(e, run.first, run.last()))
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{state, sv};
    use super::super::Strictness;
    use super::*;
    use crate::state::{Invocation, State};
    use crate::value::{ElemId, SetValue};

    fn ctx<'a>(s_first: &'a SetValue, pre: &'a State, yielded: &'a SetValue) -> EnsuresCtx<'a> {
        EnsuresCtx {
            s_first,
            pre,
            yielded_pre: yielded,
            strictness: Strictness::Liberal,
        }
    }

    #[test]
    fn yields_current_members_only() {
        let s_first = sv(&[1]);
        let pre = state(&[2, 3], &[2, 3]); // 1 was removed, 2 and 3 added
        let y = sv(&[1]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(2))).is_ok());
        // 1 is no longer a member: yielding it again is impossible anyway
        // (already yielded), but yielding some removed element 9 is illegal.
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(9)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn blocks_while_unyielded_members_unreachable() {
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1]); // 2 unreachable
        let y = sv(&[1]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Blocked).is_ok());
        // Returning would claim the set is drained — it is not.
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Returned);
        assert!(matches!(r, Err(EnsuresError::ExpectedYield { .. })));
    }

    #[test]
    fn never_fails() {
        let s_first = sv(&[1]);
        let pre = state(&[1], &[]);
        let y = sv(&[]);
        assert_eq!(
            check_invocation(&ctx(&s_first, &pre, &y), Outcome::Failed),
            Err(EnsuresError::FailureNotAllowed)
        );
    }

    #[test]
    fn returns_when_all_current_members_yielded() {
        // yielded can even exceed s_pre after deletions.
        let s_first = sv(&[1, 2, 3]);
        let pre = state(&[1], &[1]);
        let y = sv(&[1, 2, 3]);
        assert!(check_invocation(&ctx(&s_first, &pre, &y), Outcome::Returned).is_ok());
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Blocked);
        assert!(matches!(r, Err(EnsuresError::ExpectedReturn { .. })));
    }

    #[test]
    fn yield_must_be_reachable() {
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1]);
        let y = sv(&[]);
        let r = check_invocation(&ctx(&s_first, &pre, &y), Outcome::Yielded(ElemId(2)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn derived_membership_property_holds_and_detects_violations() {
        let mut comp = Computation::starting_at(State::fully_accessible(sv(&[1])));
        comp.push_state(State::fully_accessible(sv(&[1, 2])));
        comp.push_state(State::fully_accessible(sv(&[2])));
        let good = IterRun {
            first: 0,
            invocations: vec![
                Invocation {
                    pre: 0,
                    post: 1,
                    outcome: Outcome::Yielded(ElemId(1)),
                },
                Invocation {
                    pre: 1,
                    post: 2,
                    outcome: Outcome::Yielded(ElemId(2)),
                },
            ],
        };
        assert!(yields_were_members(&comp, &good));
        let bad = IterRun {
            first: 0,
            invocations: vec![Invocation {
                pre: 0,
                post: 1,
                outcome: Outcome::Yielded(ElemId(99)),
            }],
        };
        assert!(!yields_were_members(&comp, &bad));
    }
}
