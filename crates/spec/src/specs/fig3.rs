//! Figure 3: immutable set **with failures**.
//!
//! ```text
//! constraint s_i = s_j
//! elements = iter (s: set) yields (e: elem) signals (failure)
//!   remembers yielded: set initially {}
//!   ensures if yielded_pre ⊊ reachable(s_first)
//!           then yielded_post − yielded_pre = {e}
//!                ∧ yielded_post ⊆ s_first
//!                ∧ e ∈ reachable(s_first)
//!                ∧ suspends
//!           else if yielded_pre = reachable(s_first) ∧ yielded_pre ⊊ s_first
//!           then fails
//!           else returns                         % yielded_pre = s_first
//! ```
//!
//! `reachable(s_first)` is the set of elements of the *original* set value
//! that are accessible in the invocation's pre-state. The failure branch is
//! pessimistic: once everything reachable has been yielded but unyielded
//! members remain inaccessible, the iterator signals failure rather than
//! wait for repair.

use super::{expect_yield, EnsuresCtx, EnsuresError, Strictness};
use crate::state::Outcome;

/// Checks one invocation against Figure 3's `ensures` clause.
///
/// # Errors
///
/// Returns the specific [`EnsuresError`] describing the deviation.
pub fn check_invocation(ctx: &EnsuresCtx<'_>, outcome: Outcome) -> Result<(), EnsuresError> {
    if outcome == Outcome::Blocked {
        return Err(EnsuresError::BlockNotAllowed);
    }
    // reachable(s_first) evaluated in the pre-state.
    let reach_first = ctx.pre.reachable_of(ctx.s_first);
    let (yield_branch, fail_branch) = match ctx.strictness {
        Strictness::Literal => (
            ctx.yielded_pre.is_strict_subset(&reach_first),
            *ctx.yielded_pre == reach_first && ctx.yielded_pre.is_strict_subset(ctx.s_first),
        ),
        Strictness::Liberal => {
            let unyielded_reachable = !reach_first.difference(ctx.yielded_pre).is_empty();
            let unyielded_members = !ctx.s_first.difference(ctx.yielded_pre).is_empty();
            (
                unyielded_reachable,
                !unyielded_reachable && unyielded_members,
            )
        }
    };
    if yield_branch {
        expect_yield(&reach_first, ctx.yielded_pre, ctx.s_first, outcome)
    } else if fail_branch {
        match outcome {
            Outcome::Failed => Ok(()),
            got => Err(EnsuresError::ExpectedFail { got }),
        }
    } else {
        match outcome {
            Outcome::Returned => Ok(()),
            got => Err(EnsuresError::ExpectedReturn { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{state, sv};
    use super::*;
    use crate::state::State;
    use crate::value::{ElemId, SetValue};

    fn ctx<'a>(
        s_first: &'a SetValue,
        pre: &'a State,
        yielded: &'a SetValue,
        strictness: Strictness,
    ) -> EnsuresCtx<'a> {
        EnsuresCtx {
            s_first,
            pre,
            yielded_pre: yielded,
            strictness,
        }
    }

    #[test]
    fn yields_only_reachable_elements() {
        let s = sv(&[1, 2, 3]);
        let pre = state(&[1, 2, 3], &[1, 2]); // 3 unreachable
        let y = sv(&[]);
        assert!(check_invocation(
            &ctx(&s, &pre, &y, Strictness::Liberal),
            Outcome::Yielded(ElemId(1))
        )
        .is_ok());
        let r = check_invocation(
            &ctx(&s, &pre, &y, Strictness::Liberal),
            Outcome::Yielded(ElemId(3)),
        );
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn fails_when_reachable_exhausted_but_members_remain() {
        let s = sv(&[1, 2, 3]);
        let pre = state(&[1, 2, 3], &[1, 2]);
        let y = sv(&[1, 2]); // everything reachable already yielded
        assert!(check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Failed).is_ok());
        let r = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Returned);
        assert!(matches!(r, Err(EnsuresError::ExpectedFail { .. })));
    }

    #[test]
    fn returns_when_all_members_yielded() {
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[1, 2]);
        assert!(
            check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Returned).is_ok()
        );
        let r = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Failed);
        assert!(matches!(r, Err(EnsuresError::ExpectedReturn { .. })));
    }

    #[test]
    fn heal_reopens_yield_branch() {
        // Reachability returned mid-run: must resume yielding, not fail.
        let s = sv(&[1, 2, 3]);
        let pre = state(&[1, 2, 3], &[1, 2, 3]);
        let y = sv(&[1, 2]);
        let r = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Failed);
        assert!(matches!(r, Err(EnsuresError::ExpectedYield { .. })));
        assert!(check_invocation(
            &ctx(&s, &pre, &y, Strictness::Liberal),
            Outcome::Yielded(ElemId(3))
        )
        .is_ok());
    }

    #[test]
    fn blocking_never_allowed() {
        let s = sv(&[1]);
        let pre = state(&[1], &[]);
        let y = sv(&[]);
        assert_eq!(
            check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Blocked),
            Err(EnsuresError::BlockNotAllowed)
        );
    }

    #[test]
    fn liberal_and_literal_agree_on_normal_runs() {
        // yielded ⊆ reachable(s_first): the readings coincide.
        let s = sv(&[1, 2, 3]);
        let pre = state(&[1, 2, 3], &[1, 2, 3]);
        for y_ids in [&[][..], &[1][..], &[1, 2][..]] {
            let y = sv(y_ids);
            for outcome in [
                Outcome::Yielded(ElemId(3)),
                Outcome::Returned,
                Outcome::Failed,
            ] {
                let a = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), outcome).is_ok();
                let b = check_invocation(&ctx(&s, &pre, &y, Strictness::Literal), outcome).is_ok();
                assert_eq!(a, b, "y={y:?} outcome={outcome:?}");
            }
        }
    }

    #[test]
    fn literal_forces_fail_when_yielded_left_reachable_set() {
        // yielded={1}, reachable(s_first)={2}: yielded is NOT a subset of
        // reachable, so the literal reading falls through to the fail
        // branch test: yielded == reachable? no. yielded ⊊ s_first? — the
        // final else expects return. Liberal instead sees an unyielded
        // reachable element (2) and demands a yield.
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[2]);
        let y = sv(&[1]);
        let lit = check_invocation(&ctx(&s, &pre, &y, Strictness::Literal), Outcome::Returned);
        assert!(lit.is_ok());
        let lib = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Returned);
        assert!(matches!(lib, Err(EnsuresError::ExpectedYield { .. })));
    }

    #[test]
    fn failure_with_everything_reachable_is_rejected() {
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[]);
        let r = check_invocation(&ctx(&s, &pre, &y, Strictness::Liberal), Outcome::Failed);
        assert!(r.is_err());
    }
}
