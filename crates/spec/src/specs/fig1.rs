//! Figure 1: immutable set, failures ignored.
//!
//! ```text
//! constraint s_i = s_j                          % set is immutable
//! elements = iter (s: set) yields (e: elem)
//!   remembers yielded: set initially {}
//!   ensures if yielded_pre ⊊ s_first            % still more to yield
//!           then yielded_post − yielded_pre = {e}
//!                ∧ yielded_post ⊆ s_first
//!                ∧ e ∈ s_first − yielded_pre
//!                ∧ suspends
//!           else returns                        % yielded_pre = s_first
//! ```
//!
//! There is no failure case: every element of `s_first` is eventually
//! yielded exactly once, then the iterator terminates normally.

use super::{expect_yield, EnsuresCtx, EnsuresError, Strictness};
use crate::state::Outcome;

/// Checks one invocation against Figure 1's `ensures` clause.
///
/// # Errors
///
/// Returns the specific [`EnsuresError`] describing how the observed
/// `outcome` deviates from the clause.
pub fn check_invocation(ctx: &EnsuresCtx<'_>, outcome: Outcome) -> Result<(), EnsuresError> {
    if outcome == Outcome::Failed {
        return Err(EnsuresError::FailureNotAllowed);
    }
    if outcome == Outcome::Blocked {
        return Err(EnsuresError::BlockNotAllowed);
    }
    let more_to_yield = match ctx.strictness {
        Strictness::Literal => ctx.yielded_pre.is_strict_subset(ctx.s_first),
        Strictness::Liberal => !ctx.s_first.difference(ctx.yielded_pre).is_empty(),
    };
    if more_to_yield {
        expect_yield(ctx.s_first, ctx.yielded_pre, ctx.s_first, outcome)
    } else {
        match outcome {
            Outcome::Returned => Ok(()),
            got => Err(EnsuresError::ExpectedReturn { got }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{state, sv};
    use super::*;
    use crate::value::ElemId;

    fn ctx<'a>(
        s_first: &'a crate::value::SetValue,
        pre: &'a crate::state::State,
        yielded: &'a crate::value::SetValue,
    ) -> EnsuresCtx<'a> {
        EnsuresCtx {
            s_first,
            pre,
            yielded_pre: yielded,
            strictness: Strictness::Liberal,
        }
    }

    #[test]
    fn yields_unyielded_element() {
        let s = sv(&[1, 2, 3]);
        let pre = state(&[1, 2, 3], &[1, 2, 3]);
        let y = sv(&[1]);
        assert!(check_invocation(&ctx(&s, &pre, &y), Outcome::Yielded(ElemId(2))).is_ok());
    }

    #[test]
    fn rejects_duplicate_yield() {
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[1]);
        let r = check_invocation(&ctx(&s, &pre, &y), Outcome::Yielded(ElemId(1)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn rejects_early_return() {
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[1]);
        let r = check_invocation(&ctx(&s, &pre, &y), Outcome::Returned);
        assert!(matches!(r, Err(EnsuresError::ExpectedYield { .. })));
    }

    #[test]
    fn requires_return_when_exhausted() {
        let s = sv(&[1, 2]);
        let pre = state(&[1, 2], &[1, 2]);
        let y = sv(&[1, 2]);
        assert!(check_invocation(&ctx(&s, &pre, &y), Outcome::Returned).is_ok());
        let r = check_invocation(&ctx(&s, &pre, &y), Outcome::Yielded(ElemId(1)));
        assert!(matches!(r, Err(EnsuresError::ExpectedReturn { .. })));
    }

    #[test]
    fn failure_never_allowed() {
        let s = sv(&[1]);
        let pre = state(&[1], &[]);
        let y = sv(&[]);
        let r = check_invocation(&ctx(&s, &pre, &y), Outcome::Failed);
        assert_eq!(r, Err(EnsuresError::FailureNotAllowed));
    }

    #[test]
    fn blocking_never_allowed() {
        let s = sv(&[1]);
        let pre = state(&[1], &[1]);
        let y = sv(&[]);
        let r = check_invocation(&ctx(&s, &pre, &y), Outcome::Blocked);
        assert_eq!(r, Err(EnsuresError::BlockNotAllowed));
    }

    #[test]
    fn ignores_reachability_entirely() {
        // Figure 1 predates the failure model: even with nothing accessible
        // the spec still demands a yield from s_first.
        let s = sv(&[1]);
        let pre = state(&[1], &[]);
        let y = sv(&[]);
        assert!(check_invocation(&ctx(&s, &pre, &y), Outcome::Yielded(ElemId(1))).is_ok());
    }

    #[test]
    fn empty_set_returns_immediately() {
        let s = sv(&[]);
        let pre = state(&[], &[]);
        let y = sv(&[]);
        assert!(check_invocation(&ctx(&s, &pre, &y), Outcome::Returned).is_ok());
    }
}
