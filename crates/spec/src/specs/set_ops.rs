//! The procedure specifications of the set interface (Figure 1).
//!
//! Besides the `elements` iterator, Figure 1 specifies four procedures:
//!
//! ```text
//! create = proc () returns (t: set)
//!   ensures t_post = {} ∧ new(t)
//! add = proc (s: set, e: elem) returns (t: set)
//!   ensures t_post = s_pre ∪ {e} ∧ new(t)
//! remove = proc (e: elem, s: set) returns (t: set)
//!   ensures t_post = s_pre − {e} ∧ new(t)
//! size = proc (s: set) returns (i: int)
//!   ensures i = |s_pre|
//! ```
//!
//! The paper's type is immutable (operations return *new* sets); a
//! distributed implementation updates one logical object in place, so the
//! executable reading checks the *value transition*: the post-value must
//! be exactly the pre-value with the element added/removed. The
//! [`classify_transition`] helper inverts that: given two adjacent states
//! of a set object's history, it identifies which specified operation (if
//! any) explains the step — used to validate that a store's version log
//! contains only legal transitions.

use crate::value::{ElemId, SetValue};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A violation of one of the procedure `ensures` clauses.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProcError {
    /// Which procedure's clause failed.
    pub proc: &'static str,
    /// What went wrong.
    pub detail: String,
}

impl fmt::Display for ProcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ensures violated: {}", self.proc, self.detail)
    }
}

impl std::error::Error for ProcError {}

fn err(proc: &'static str, detail: impl Into<String>) -> ProcError {
    ProcError {
        proc,
        detail: detail.into(),
    }
}

/// `create`: the result must be the empty set.
///
/// # Errors
///
/// Returns [`ProcError`] when the post-value is non-empty.
pub fn check_create(t_post: &SetValue) -> Result<(), ProcError> {
    if t_post.is_empty() {
        Ok(())
    } else {
        Err(err("create", format!("result {t_post} is not {{}}")))
    }
}

/// `add`: `t_post = s_pre ∪ {e}`.
///
/// # Errors
///
/// Returns [`ProcError`] when the post-value differs from the specified
/// union.
pub fn check_add(s_pre: &SetValue, e: ElemId, t_post: &SetValue) -> Result<(), ProcError> {
    let expected = s_pre.union(&SetValue::singleton(e));
    if *t_post == expected {
        Ok(())
    } else {
        Err(err(
            "add",
            format!("expected {expected}, got {t_post} (s_pre={s_pre}, e={e})"),
        ))
    }
}

/// `remove`: `t_post = s_pre − {e}`.
///
/// # Errors
///
/// Returns [`ProcError`] when the post-value differs from the specified
/// difference.
pub fn check_remove(s_pre: &SetValue, e: ElemId, t_post: &SetValue) -> Result<(), ProcError> {
    let expected = s_pre.difference(&SetValue::singleton(e));
    if *t_post == expected {
        Ok(())
    } else {
        Err(err(
            "remove",
            format!("expected {expected}, got {t_post} (s_pre={s_pre}, e={e})"),
        ))
    }
}

/// `size`: `i = |s_pre|`.
///
/// # Errors
///
/// Returns [`ProcError`] when the returned count is wrong.
pub fn check_size(s_pre: &SetValue, i: usize) -> Result<(), ProcError> {
    if i == s_pre.len() {
        Ok(())
    } else {
        Err(err(
            "size",
            format!("returned {i}, |s_pre| = {}", s_pre.len()),
        ))
    }
}

/// Which specified operation explains a state transition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Transition {
    /// `post = pre ∪ {e}` with `e ∉ pre`.
    Add(ElemId),
    /// `post = pre − {e}` with `e ∈ pre`.
    Remove(ElemId),
    /// No change.
    Same,
    /// No single specified operation explains the step (e.g. a replica
    /// bulk-sync or a corrupted history).
    Other,
}

/// Classifies the transition between two adjacent set values.
pub fn classify_transition(pre: &SetValue, post: &SetValue) -> Transition {
    if pre == post {
        return Transition::Same;
    }
    let added = post.difference(pre);
    let removed = pre.difference(post);
    match (added.len(), removed.len()) {
        (1, 0) => Transition::Add(added.first().expect("len 1")),
        (0, 1) => Transition::Remove(removed.first().expect("len 1")),
        _ => Transition::Other,
    }
}

/// Validates that every adjacent pair in a value history is a legal
/// single-operation transition (`Add`, `Remove`, or `Same`). Returns the
/// index of the first illegal step, if any.
pub fn validate_history(history: &[SetValue]) -> Result<(), usize> {
    for (i, w) in history.windows(2).enumerate() {
        if classify_transition(&w[0], &w[1]) == Transition::Other {
            return Err(i);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sv(ids: &[u64]) -> SetValue {
        ids.iter().copied().map(ElemId).collect()
    }

    #[test]
    fn create_requires_empty() {
        assert!(check_create(&sv(&[])).is_ok());
        let e = check_create(&sv(&[1])).unwrap_err();
        assert_eq!(e.proc, "create");
        assert!(e.to_string().contains("create"));
    }

    #[test]
    fn add_requires_exact_union() {
        assert!(check_add(&sv(&[1]), ElemId(2), &sv(&[1, 2])).is_ok());
        // Adding an existing element is the identity (sets, no dups).
        assert!(check_add(&sv(&[1]), ElemId(1), &sv(&[1])).is_ok());
        assert!(check_add(&sv(&[1]), ElemId(2), &sv(&[1, 2, 3])).is_err());
        assert!(check_add(&sv(&[1]), ElemId(2), &sv(&[2])).is_err());
    }

    #[test]
    fn remove_requires_exact_difference() {
        assert!(check_remove(&sv(&[1, 2]), ElemId(2), &sv(&[1])).is_ok());
        // Removing a non-member is the identity.
        assert!(check_remove(&sv(&[1]), ElemId(9), &sv(&[1])).is_ok());
        assert!(check_remove(&sv(&[1, 2]), ElemId(2), &sv(&[])).is_err());
    }

    #[test]
    fn size_counts_pre_state() {
        assert!(check_size(&sv(&[1, 2, 3]), 3).is_ok());
        assert!(check_size(&sv(&[]), 0).is_ok());
        assert!(check_size(&sv(&[1]), 2).is_err());
    }

    #[test]
    fn transitions_classify() {
        assert_eq!(
            classify_transition(&sv(&[1]), &sv(&[1, 2])),
            Transition::Add(ElemId(2))
        );
        assert_eq!(
            classify_transition(&sv(&[1, 2]), &sv(&[1])),
            Transition::Remove(ElemId(2))
        );
        assert_eq!(classify_transition(&sv(&[1]), &sv(&[1])), Transition::Same);
        assert_eq!(
            classify_transition(&sv(&[1]), &sv(&[2, 3])),
            Transition::Other
        );
        assert_eq!(
            classify_transition(&sv(&[1, 2]), &sv(&[])),
            Transition::Other
        );
    }

    #[test]
    fn history_validation_finds_first_bad_step() {
        let good = [sv(&[]), sv(&[1]), sv(&[1, 2]), sv(&[2])];
        assert!(validate_history(&good).is_ok());
        let bad = [sv(&[]), sv(&[1]), sv(&[5, 6]), sv(&[6])];
        assert_eq!(validate_history(&bad), Err(1));
        assert!(validate_history(&[]).is_ok());
        assert!(validate_history(&[sv(&[1])]).is_ok());
    }
}
