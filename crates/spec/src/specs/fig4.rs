//! Figure 4: mutable set with **loss of mutations**.
//!
//! ```text
//! constraint true
//! elements = iter (s: set) yields (e: elem) signals (failure)
//!   remembers yielded: set initially {}
//!   ensures if yielded_pre ⊊ reachable(s_first)
//!           then yielded_post − yielded_pre = {e}
//!                ∧ yielded_post ⊆ s_first
//!                ∧ e ∈ reachable(s_first)
//!                ∧ suspends
//!           else if yielded_pre = reachable(s_first) ∧ yielded_pre ⊊ s_first
//!           then fails
//!           else returns                          % yielded_pre = s_first
//! ```
//!
//! The `ensures` clause is *textually identical* to Figure 3's; only the
//! `constraint` differs (`true` instead of immutability). The iterator
//! yields from a **snapshot**: the set's value the first time the iterator
//! is called. Elements added after the first invocation are missed and
//! removed elements may still be yielded — the "lost mutations".

use super::{EnsuresCtx, EnsuresError};
use crate::state::Outcome;

/// Checks one invocation against Figure 4's `ensures` clause.
///
/// Delegates to [`super::fig3::check_invocation`]: the clauses are
/// identical; the semantic difference lives entirely in the constraint
/// ([`crate::constraint::ConstraintKind::None`] here vs
/// [`crate::constraint::ConstraintKind::Immutable`] there), i.e. in which
/// computations are possible at all.
///
/// # Errors
///
/// Returns the specific [`EnsuresError`] describing the deviation.
pub fn check_invocation(ctx: &EnsuresCtx<'_>, outcome: Outcome) -> Result<(), EnsuresError> {
    super::fig3::check_invocation(ctx, outcome)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::{state, sv};
    use super::super::Strictness;
    use super::*;
    use crate::value::ElemId;

    #[test]
    fn snapshot_misses_later_additions() {
        // s_first = {1, 2}; the set has since grown to {1, 2, 9}, all
        // accessible. The spec still only allows yields from s_first.
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 2, 9], &[1, 2, 9]);
        let y = sv(&[1]);
        let ctx = EnsuresCtx {
            s_first: &s_first,
            pre: &pre,
            yielded_pre: &y,
            strictness: Strictness::Liberal,
        };
        assert!(check_invocation(&ctx, Outcome::Yielded(ElemId(2))).is_ok());
        let r = check_invocation(&ctx, Outcome::Yielded(ElemId(9)));
        assert!(matches!(r, Err(EnsuresError::YieldNotAllowed { .. })));
    }

    #[test]
    fn ghost_yields_of_deleted_members_are_allowed() {
        // 2 ∈ s_first was deleted (not in current members) but remains
        // accessible: yielding it is precisely the "lost deletion".
        let s_first = sv(&[1, 2]);
        let pre = state(&[1], &[1, 2]);
        let y = sv(&[1]);
        let ctx = EnsuresCtx {
            s_first: &s_first,
            pre: &pre,
            yielded_pre: &y,
            strictness: Strictness::Liberal,
        };
        assert!(check_invocation(&ctx, Outcome::Yielded(ElemId(2))).is_ok());
    }

    #[test]
    fn terminates_when_snapshot_exhausted_despite_growth() {
        let s_first = sv(&[1]);
        let pre = state(&[1, 2, 3], &[1, 2, 3]);
        let y = sv(&[1]);
        let ctx = EnsuresCtx {
            s_first: &s_first,
            pre: &pre,
            yielded_pre: &y,
            strictness: Strictness::Liberal,
        };
        assert!(check_invocation(&ctx, Outcome::Returned).is_ok());
    }

    #[test]
    fn failure_still_based_on_first_state_value() {
        // 2 ∈ s_first is unreachable: pessimistic failure required.
        let s_first = sv(&[1, 2]);
        let pre = state(&[1, 5], &[1, 5]);
        let y = sv(&[1]);
        let ctx = EnsuresCtx {
            s_first: &s_first,
            pre: &pre,
            yielded_pre: &y,
            strictness: Strictness::Liberal,
        };
        assert!(check_invocation(&ctx, Outcome::Failed).is_ok());
    }
}
