//! Metamorphic property tests for the conformance checker:
//!
//! * a *generated-conforming* computation always checks clean;
//! * specific corruptions of such a computation are always detected.
//!
//! Generating conforming runs is itself an executable reading of the
//! specs: at each step we pick any outcome the figure's ensures clause
//! allows, given the current state and `yielded`.

use proptest::prelude::*;
use weakset_spec::prelude::*;

/// A scripted environment: per-invocation mutations and accessibility.
#[derive(Clone, Debug)]
struct Script {
    initial: Vec<u64>,
    /// Per step: (mutation, accessible-mask seed)
    steps: Vec<(Mutation, u64)>,
}

#[derive(Clone, Copy, Debug)]
enum Mutation {
    None,
    Add(u64),
    Remove(u64),
}

fn script(figure: Figure) -> impl Strategy<Value = Script> {
    let mutation = match figure {
        // Respect each figure's constraint.
        Figure::Fig1 | Figure::Fig3 => {
            proptest::strategy::Union::new(vec![Just(Mutation::None).boxed()])
        }
        Figure::Fig5 => proptest::strategy::Union::new(vec![
            Just(Mutation::None).boxed(),
            (100u64..140).prop_map(Mutation::Add).boxed(),
        ]),
        Figure::Fig4 | Figure::Fig6 => proptest::strategy::Union::new(vec![
            Just(Mutation::None).boxed(),
            (100u64..140).prop_map(Mutation::Add).boxed(),
            (0u64..20).prop_map(Mutation::Remove).boxed(),
        ]),
    };
    (
        proptest::collection::vec(0u64..20, 1..8),
        proptest::collection::vec((mutation, any::<u64>()), 4..20),
    )
        .prop_map(|(initial, steps)| Script { initial, steps })
}

fn accessible_from(members: &SetValue, seed: u64, figure: Figure) -> SetValue {
    match figure {
        // Keep Figure 1 failure-free: everything accessible.
        Figure::Fig1 => members.clone(),
        _ => members
            .iter()
            .filter(|e| (seed >> (e.0 % 61)) & 1 == 0)
            .collect(),
    }
}

/// Plays a script, choosing at each step an outcome the figure allows.
/// Returns the recorded computation (always conforming by construction).
fn generate_conforming(figure: Figure, script: &Script) -> Computation {
    let mut members: SetValue = script.initial.iter().copied().map(ElemId).collect();
    let s_first = members.clone();
    let mut yielded = SetValue::empty();
    let first_state = State {
        accessible: accessible_from(&members, 0, figure),
        members: members.clone(),
    };
    let mut rec = Recorder::new(first_state);
    rec.begin_run();
    let mut terminated = false;
    for (mutation, acc_seed) in &script.steps {
        if terminated {
            break;
        }
        // Environment move.
        match *mutation {
            Mutation::None => {}
            Mutation::Add(e) => {
                members.insert(ElemId(e));
            }
            Mutation::Remove(e) => {
                members.remove(ElemId(e));
            }
        }
        let pre = State {
            accessible: accessible_from(&members, *acc_seed, figure),
            members: members.clone(),
        };
        rec.observe_state(pre.clone());
        // Pick an allowed outcome by consulting the spec itself.
        let ctx = EnsuresCtx {
            s_first: &s_first,
            pre: &pre,
            yielded_pre: &yielded,
            strictness: Strictness::Liberal,
        };
        let candidates: Vec<Outcome> = {
            let mut c = Vec::new();
            for e in pre.members.union(&s_first).iter() {
                c.push(Outcome::Yielded(e));
            }
            c.push(Outcome::Returned);
            c.push(Outcome::Failed);
            c.push(Outcome::Blocked);
            c
        };
        let chosen = candidates
            .into_iter()
            .find(|&o| figure.check_invocation(&ctx, o).is_ok())
            .expect("some outcome is always allowed");
        rec.record_invocation(pre, chosen);
        match chosen {
            Outcome::Yielded(e) => {
                yielded.insert(e);
            }
            Outcome::Returned | Outcome::Failed => terminated = true,
            Outcome::Blocked => {}
        }
    }
    rec.finish()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_runs_conform(
        fig_idx in 0usize..5,
        s in script(Figure::ALL[0]),
    ) {
        // Re-generate the script under the right figure's constraint.
        let figure = Figure::ALL[fig_idx];
        // Filter the mutations to respect the figure's constraint.
        let mut s = s;
        s.steps.retain(|(m, _)| match figure {
            Figure::Fig1 | Figure::Fig3 => matches!(m, Mutation::None),
            Figure::Fig5 => !matches!(m, Mutation::Remove(_)),
            _ => true,
        });
        if s.steps.is_empty() {
            s.steps.push((Mutation::None, 0));
        }
        let comp = generate_conforming(figure, &s);
        let conf = check_computation(figure, &comp);
        prop_assert!(conf.is_ok(), "{figure}: {:?}", conf.violations);
    }

    #[test]
    fn duplicated_yield_is_always_detected(s in script(Figure::Fig6)) {
        let comp = generate_conforming(Figure::Fig6, &s);
        let run = &comp.runs[0];
        let yields = run.yields();
        prop_assume!(!yields.is_empty());
        // Corrupt: change the LAST yield to repeat the first one.
        prop_assume!(yields.len() >= 2);
        let mut bad = comp.clone();
        let first_yield = yields[0];
        let last_yield_pos = bad.runs[0]
            .invocations
            .iter()
            .rposition(|i| matches!(i.outcome, Outcome::Yielded(_)))
            .expect("has a yield");
        prop_assume!(
            bad.runs[0].invocations[last_yield_pos].outcome != Outcome::Yielded(first_yield)
        );
        bad.runs[0].invocations[last_yield_pos].outcome = Outcome::Yielded(first_yield);
        let conf = check_computation(Figure::Fig6, &bad);
        prop_assert!(!conf.is_ok(), "duplicate yield must be flagged");
    }

    #[test]
    fn premature_return_is_always_detected(s in script(Figure::Fig6)) {
        let comp = generate_conforming(Figure::Fig6, &s);
        let run = &comp.runs[0];
        // Find an invocation whose pre-state still had unyielded members;
        // flipping it to Returned must violate.
        let mut yielded = SetValue::empty();
        for (idx, inv) in run.invocations.iter().enumerate() {
            let pre = comp.state(inv.pre);
            let unyielded = pre.members.difference(&yielded);
            if !unyielded.is_empty() && inv.outcome != Outcome::Returned {
                let mut bad = comp.clone();
                bad.runs[0].invocations[idx].outcome = Outcome::Returned;
                bad.runs[0].invocations.truncate(idx + 1);
                let conf = check_computation(Figure::Fig6, &bad);
                prop_assert!(!conf.is_ok(), "premature return at {idx} must be flagged");
                break;
            }
            if let Outcome::Yielded(e) = inv.outcome {
                yielded.insert(e);
            }
        }
    }

    #[test]
    fn failure_injection_into_fig6_is_always_detected(s in script(Figure::Fig6)) {
        let comp = generate_conforming(Figure::Fig6, &s);
        prop_assume!(!comp.runs[0].invocations.is_empty());
        let mut bad = comp.clone();
        let last = bad.runs[0].invocations.len() - 1;
        bad.runs[0].invocations[last].outcome = Outcome::Failed;
        let conf = check_computation(Figure::Fig6, &bad);
        prop_assert!(!conf.is_ok(), "Figure 6 never fails");
    }

    #[test]
    fn constraint_corruption_is_always_detected(s in script(Figure::Fig1)) {
        let mut s = s;
        s.steps.retain(|(m, _)| matches!(m, Mutation::None));
        if s.steps.is_empty() { s.steps.push((Mutation::None, 0)); }
        let comp = generate_conforming(Figure::Fig1, &s);
        prop_assume!(comp.states.len() >= 2);
        let mut bad = comp.clone();
        // Inject a membership change into the immutable history.
        let last = bad.states.len() - 1;
        bad.states[last].members.insert(ElemId(999));
        let conf = check_computation(Figure::Fig1, &bad);
        prop_assert!(
            conf.violations.iter().any(|v| matches!(v, Violation::Constraint(_))),
            "immutability corruption must be flagged"
        );
    }
}
