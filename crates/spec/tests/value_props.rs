//! Property tests for the LSL-style value algebra: the set laws the
//! specifications rely on must actually hold of `SetValue`.

use proptest::prelude::*;
use weakset_spec::value::{ElemId, SetValue};

fn set_value() -> impl Strategy<Value = SetValue> {
    proptest::collection::btree_set(0u64..64, 0..16)
        .prop_map(|s| s.into_iter().map(ElemId).collect())
}

proptest! {
    #[test]
    fn union_is_commutative(a in set_value(), b in set_value()) {
        prop_assert_eq!(a.union(&b), b.union(&a));
    }

    #[test]
    fn union_is_associative(a in set_value(), b in set_value(), c in set_value()) {
        prop_assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
    }

    #[test]
    fn union_is_idempotent(a in set_value()) {
        prop_assert_eq!(a.union(&a), a);
    }

    #[test]
    fn intersection_distributes_over_union(
        a in set_value(), b in set_value(), c in set_value()
    ) {
        prop_assert_eq!(
            a.intersection(&b.union(&c)),
            a.intersection(&b).union(&a.intersection(&c))
        );
    }

    #[test]
    fn difference_then_union_restores_superset(a in set_value(), b in set_value()) {
        // (a − b) ∪ (a ∩ b) = a
        prop_assert_eq!(a.difference(&b).union(&a.intersection(&b)), a);
    }

    #[test]
    fn difference_is_disjoint_from_subtrahend(a in set_value(), b in set_value()) {
        prop_assert!(a.difference(&b).intersection(&b).is_empty());
    }

    #[test]
    fn subset_is_reflexive_and_antisymmetric(a in set_value(), b in set_value()) {
        prop_assert!(a.is_subset(&a));
        if a.is_subset(&b) && b.is_subset(&a) {
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn strict_subset_iff_subset_and_smaller(a in set_value(), b in set_value()) {
        prop_assert_eq!(
            a.is_strict_subset(&b),
            a.is_subset(&b) && a.len() < b.len()
        );
    }

    #[test]
    fn insert_remove_roundtrip(a in set_value(), e in 0u64..64) {
        let e = ElemId(e);
        let mut v = a.clone();
        let was_present = v.contains(e);
        v.insert(e);
        prop_assert!(v.contains(e));
        if !was_present {
            v.remove(e);
            prop_assert_eq!(v, a);
        }
    }

    #[test]
    fn cardinality_inclusion_exclusion(a in set_value(), b in set_value()) {
        prop_assert_eq!(
            a.union(&b).len() + a.intersection(&b).len(),
            a.len() + b.len()
        );
    }

    #[test]
    fn iter_is_sorted_and_complete(a in set_value()) {
        let elems: Vec<ElemId> = a.iter().collect();
        prop_assert_eq!(elems.len(), a.len());
        prop_assert!(elems.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(elems.iter().all(|&e| a.contains(e)));
    }
}
