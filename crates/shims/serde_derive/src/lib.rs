//! Offline no-op stand-in for `serde_derive`.
//!
//! Nothing in this workspace actually serializes through serde (there is
//! no `serde_json`/`bincode` in the dependency tree); the derives are
//! forward-looking annotations. These macros therefore accept the
//! `#[derive(Serialize, Deserialize)]` syntax — including `#[serde(...)]`
//! helper attributes — and emit no code at all.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
