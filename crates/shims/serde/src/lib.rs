//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace annotates many types with `#[derive(Serialize,
//! Deserialize)]` but never routes them through a real serializer (no
//! `serde_json`/`bincode` in the tree). This shim re-exports no-op derive
//! macros from the sibling `serde_derive` shim and defines just enough of
//! the trait surface for the one hand-written `#[serde(with = ...)]`
//! helper module in `weakset-store` to compile.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

/// Serialization backend, mirroring `serde::Serializer` at the smallest
/// surface the workspace's hand-written impls need.
pub trait Serializer: Sized {
    /// Successful result type.
    type Ok;
    /// Error type.
    type Error;

    /// Serializes a byte slice.
    ///
    /// # Errors
    ///
    /// Backend-defined (no backend exists in this workspace).
    fn serialize_bytes(self, v: &[u8]) -> Result<Self::Ok, Self::Error>;
}

/// Deserialization backend, mirroring `serde::Deserializer` at the
/// smallest surface the workspace's hand-written impls need.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error;

    /// Deserializes an owned byte buffer.
    ///
    /// # Errors
    ///
    /// Backend-defined (no backend exists in this workspace).
    fn deserialize_byte_buf(self) -> Result<Vec<u8>, Self::Error>;
}

/// A serializable value, mirroring `serde::Serialize`. The derive macro
/// of the same name (from the shim `serde_derive`) lives in the macro
/// namespace; this trait lives in the type namespace, exactly as with
/// the real serde.
pub trait Serialize {
    /// Serializes `self`.
    ///
    /// # Errors
    ///
    /// Propagates the serializer's error.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A deserializable value, mirroring `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    ///
    /// # Errors
    ///
    /// Propagates the deserializer's error.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

impl Serialize for [u8] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl Serialize for Vec<u8> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_bytes(self)
    }
}

impl<'de> Deserialize<'de> for Vec<u8> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.deserialize_byte_buf()
    }
}
