//! Offline stand-in for the subset of `crossbeam-channel` this
//! workspace uses, backed by `std::sync::mpsc`.
//!
//! Surface: [`bounded`], [`unbounded`], [`Sender`] (clonable, `Debug`
//! without `T: Debug`), [`Receiver`], blocking `send`/`recv` with
//! [`SendError`]/[`RecvError`]. No `select!`, no timeouts — the runtime
//! crate does not use them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::mpsc;

macro_rules! fmt_no_t {
    ($name:literal) => {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(concat!($name, " { .. }"))
        }
    };
}

/// The channel is disconnected; the unsent value is returned.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

impl<T> std::error::Error for SendError<T> {}

/// The channel is empty and disconnected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

enum SenderInner<T> {
    Unbounded(mpsc::Sender<T>),
    Bounded(mpsc::SyncSender<T>),
}

/// The sending half of a channel. Clonable, like crossbeam's.
pub struct Sender<T> {
    inner: SenderInner<T>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        let inner = match &self.inner {
            SenderInner::Unbounded(tx) => SenderInner::Unbounded(tx.clone()),
            SenderInner::Bounded(tx) => SenderInner::Bounded(tx.clone()),
        };
        Sender { inner }
    }
}

impl<T> std::fmt::Debug for Sender<T> {
    fmt_no_t!("Sender");
}

impl<T> Sender<T> {
    /// Sends `msg`, blocking on a full bounded channel.
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding `msg` when all receivers are gone.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        match &self.inner {
            SenderInner::Unbounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
            SenderInner::Bounded(tx) => tx.send(msg).map_err(|mpsc::SendError(v)| SendError(v)),
        }
    }
}

/// The receiving half of a channel.
pub struct Receiver<T> {
    inner: mpsc::Receiver<T>,
}

impl<T> std::fmt::Debug for Receiver<T> {
    fmt_no_t!("Receiver");
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] when the channel is empty and all senders
    /// are gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        self.inner.recv().map_err(|mpsc::RecvError| RecvError)
    }

    /// Returns a message if one is ready, without blocking.
    pub fn try_recv(&self) -> Option<T> {
        self.inner.try_recv().ok()
    }
}

/// An unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::channel();
    (
        Sender {
            inner: SenderInner::Unbounded(tx),
        },
        Receiver { inner: rx },
    )
}

/// A bounded FIFO channel with capacity `cap`.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    let (tx, rx) = mpsc::sync_channel(cap);
    (
        Sender {
            inner: SenderInner::Bounded(tx),
        },
        Receiver { inner: rx },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_roundtrip_across_threads() {
        let (tx, rx) = unbounded::<u32>();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(7).unwrap();
            tx.send(8).unwrap();
        });
        assert_eq!(rx.recv(), Ok(7));
        assert_eq!(rx.recv(), Ok(8));
        h.join().unwrap();
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_one_acts_as_rendezvous_slot() {
        let (tx, rx) = bounded::<&'static str>(1);
        tx.send("reply").unwrap();
        assert_eq!(rx.recv(), Ok("reply"));
        drop(rx);
        assert!(tx.send("dead").is_err());
    }
}
