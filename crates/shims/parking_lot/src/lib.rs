//! Offline stand-in for the subset of `parking_lot` this workspace
//! uses, backed by `std::sync`.
//!
//! Matches parking_lot's calling convention: `lock()`/`read()`/`write()`
//! return guards directly (no `Result`). A poisoned std lock — only
//! possible after a panic while holding the guard — is recovered rather
//! than propagated, mirroring parking_lot's lack of poisoning.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync;

/// A mutual-exclusion lock whose `lock` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps `value` in a new mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    pub fn lock(&self) -> sync::MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Returns a mutable reference without locking (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|p| p.into_inner())
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps `value` in a new reader-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> sync::RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|p| p.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> sync::RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_guard_derefs_without_unwrap() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn mutex_is_usable_across_threads() {
        let m = Arc::new(Mutex::new(0u32));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..100 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 400);
    }

    #[test]
    fn rwlock_allows_parallel_reads() {
        let l = RwLock::new(5u8);
        let (a, b) = (l.read(), l.read());
        assert_eq!((*a, *b), (5, 5));
        drop((a, b));
        *l.write() = 6;
        assert_eq!(*l.read(), 6);
    }
}
