//! Offline stand-in for `rand_chacha`: a [`ChaCha12Rng`]-named generator
//! with the same construction API (`from_seed([u8; 32])`,
//! `seed_from_u64`).
//!
//! The workspace only needs a *deterministic, well-distributed* stream —
//! never cryptographic randomness — so the core is xoshiro256**, keyed
//! from the 32-byte seed through SplitMix64. Output does **not** match
//! real ChaCha12; every in-repo consumer only relies on
//! same-seed-same-stream determinism and statistical uniformity, both of
//! which hold.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::{RngCore, SeedableRng, SplitMix64};

/// Deterministic PRNG with the `rand_chacha::ChaCha12Rng` construction
/// API (xoshiro256** core; see crate docs).
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    s: [u64; 4],
}

impl ChaCha12Rng {
    fn mix(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut s = [0u64; 4];
        for (i, chunk) in seed.chunks(8).enumerate() {
            let mut w = [0u8; 8];
            w.copy_from_slice(chunk);
            s[i] = u64::from_le_bytes(w);
        }
        // Re-mix through SplitMix64 so low-entropy seeds (for example,
        // all-zero with one small counter) still start well-dispersed,
        // and so the all-zero seed does not produce the all-zero state
        // xoshiro cannot escape.
        let mut sm = SplitMix64::new(
            s[0] ^ s[1].rotate_left(16) ^ s[2].rotate_left(32) ^ s[3].rotate_left(48),
        );
        let mut rng = ChaCha12Rng {
            s: [
                s[0] ^ sm.next(),
                s[1] ^ sm.next(),
                s[2] ^ sm.next(),
                s[3] ^ sm.next(),
            ],
        };
        if rng.s == [0, 0, 0, 0] {
            rng.s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        // Warm up: decorrelates seeds that differ in few bits.
        for _ in 0..8 {
            rng.mix();
        }
        rng
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        (self.mix() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.mix()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha12Rng::seed_from_u64(7);
        let mut b = ChaCha12Rng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn seeds_diverge() {
        let mut a = ChaCha12Rng::seed_from_u64(1);
        let mut b = ChaCha12Rng::seed_from_u64(2);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn full_seed_construction_works() {
        let mut key = [0u8; 32];
        key[0] = 1;
        let mut a = ChaCha12Rng::from_seed(key);
        let mut b = ChaCha12Rng::from_seed(key);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = ChaCha12Rng::from_seed([0u8; 32]);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn roughly_uniform_bits() {
        let mut r = ChaCha12Rng::seed_from_u64(42);
        let ones: u32 = (0..1000).map(|_| r.next_u64().count_ones()).sum();
        // 64_000 bits, expect ~32_000 ones.
        assert!((30_000..34_000).contains(&ones), "{ones}");
    }
}
