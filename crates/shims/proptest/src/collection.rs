//! Collection strategies: `vec` and `btree_set`.

use crate::strategy::{Rejection, Strategy};
use crate::TestRng;
use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

/// An inclusive size interval for collection strategies.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        self.lo + rng.below((self.hi - self.lo + 1) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `Vec<S::Value>` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        let len = self.size.pick(rng);
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            out.push(self.element.generate(rng)?);
        }
        Ok(out)
    }
}

/// Strategy returned by [`btree_set`].
#[derive(Clone, Debug)]
pub struct BTreeSetStrategy<S> {
    element: S,
    size: SizeRange,
}

/// Generates `BTreeSet<S::Value>` with a cardinality drawn from `size`.
pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    BTreeSetStrategy {
        element,
        size: size.into(),
    }
}

impl<S> Strategy for BTreeSetStrategy<S>
where
    S: Strategy,
    S::Value: Ord,
{
    type Value = BTreeSet<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        let target = self.size.pick(rng);
        let mut out = BTreeSet::new();
        // Duplicates shrink the set, so allow extra draws before giving
        // up on reaching the target cardinality.
        let max_draws = target * 20 + 50;
        for _ in 0..max_draws {
            if out.len() == target {
                return Ok(out);
            }
            out.insert(self.element.generate(rng)?);
        }
        Err(Rejection(format!(
            "btree_set: could not reach {} distinct elements in {} draws",
            target, max_draws
        )))
    }
}
