//! Generation for the regex subset used as string strategies.
//!
//! Supported patterns: one character class followed by an optional
//! repetition — `[class]`, `[class]{n}`, `[class]{lo,hi}`, `[class]+`,
//! `[class]*`. Classes support literal characters, `a-z`-style ranges,
//! and backslash escapes. Anything else panics with a clear message:
//! extend this module rather than silently mis-generating.

use crate::TestRng;

struct ClassRepeat {
    chars: Vec<char>,
    lo: usize,
    hi: usize,
}

fn parse(pattern: &str) -> ClassRepeat {
    let mut it = pattern.chars().peekable();
    assert_eq!(
        it.next(),
        Some('['),
        "string strategy shim supports only `[class]{{lo,hi}}` regexes, got {pattern:?}"
    );
    let mut chars = Vec::new();
    loop {
        let c = it
            .next()
            .unwrap_or_else(|| panic!("unterminated character class in {pattern:?}"));
        match c {
            ']' => break,
            '\\' => {
                let escaped = it
                    .next()
                    .unwrap_or_else(|| panic!("dangling escape in {pattern:?}"));
                chars.push(escaped);
            }
            _ => {
                if it.peek() == Some(&'-') {
                    let mut lookahead = it.clone();
                    lookahead.next(); // consume '-'
                    match lookahead.peek() {
                        Some(&end) if end != ']' => {
                            it = lookahead;
                            it.next(); // consume range end
                            assert!(c <= end, "inverted range {c}-{end} in {pattern:?}");
                            chars.extend(c..=end);
                            continue;
                        }
                        _ => {} // trailing '-' is a literal
                    }
                }
                chars.push(c);
            }
        }
    }
    assert!(!chars.is_empty(), "empty character class in {pattern:?}");

    let rest: String = it.collect();
    let (lo, hi) = match rest.as_str() {
        "" => (1, 1),
        "+" => (1, 8),
        "*" => (0, 8),
        r if r.starts_with('{') && r.ends_with('}') => {
            let body = &r[1..r.len() - 1];
            if let Some((a, b)) = body.split_once(',') {
                let lo = a
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition bound in {pattern:?}"));
                let hi = b
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition bound in {pattern:?}"));
                assert!(lo <= hi, "inverted repetition in {pattern:?}");
                (lo, hi)
            } else {
                let n = body
                    .trim()
                    .parse()
                    .unwrap_or_else(|_| panic!("bad repetition count in {pattern:?}"));
                (n, n)
            }
        }
        other => panic!("unsupported regex suffix {other:?} in {pattern:?}"),
    };
    ClassRepeat { chars, lo, hi }
}

/// Generates one string matching `pattern` (within the supported
/// subset) from `rng`.
pub fn generate_matching(pattern: &str, rng: &mut TestRng) -> String {
    let spec = parse(pattern);
    let len = spec.lo + rng.below((spec.hi - spec.lo + 1) as u64) as usize;
    (0..len)
        .map(|_| spec.chars[rng.below(spec.chars.len() as u64) as usize])
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_class_with_ranges_and_literals() {
        let spec = parse("[a-z0-9._-]{1,12}");
        assert_eq!(spec.lo, 1);
        assert_eq!(spec.hi, 12);
        assert!(spec.chars.contains(&'a'));
        assert!(spec.chars.contains(&'z'));
        assert!(spec.chars.contains(&'7'));
        assert!(spec.chars.contains(&'.'));
        assert!(spec.chars.contains(&'_'));
        assert!(spec.chars.contains(&'-'));
        assert!(!spec.chars.contains(&'A'));
    }

    #[test]
    fn bare_class_means_one_char() {
        let spec = parse("[xy]");
        assert_eq!((spec.lo, spec.hi), (1, 1));
        assert_eq!(spec.chars, vec!['x', 'y']);
    }

    #[test]
    #[should_panic(expected = "supports only")]
    fn rejects_unsupported_patterns() {
        parse("(ab|cd)+");
    }
}
