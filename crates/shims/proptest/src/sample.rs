//! Sampling strategies over fixed collections.

use crate::strategy::{Rejection, Strategy};
use crate::TestRng;

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    items: Vec<T>,
}

/// Picks uniformly from `items`.
///
/// # Panics
///
/// Panics (at generation time) if `items` is empty.
pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
    Select { items }
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        assert!(!self.items.is_empty(), "select over empty collection");
        let idx = rng.below(self.items.len() as u64) as usize;
        Ok(self.items[idx].clone())
    }
}
