//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its deterministic case
//!   number; rerunning the test replays it exactly (generation is seeded
//!   from the test-function name and the case index, never from wall
//!   clock or OS entropy).
//! * **Strategies are plain generators** (`Strategy::generate`), not
//!   value trees.
//! * **Regex string strategies** support exactly the character-class +
//!   bounded-repetition form used in this workspace
//!   (`"[a-z0-9._-]{1,12}"`).
//!
//! Supported surface: `proptest!` (with `#![proptest_config]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`, `prop_assume!`,
//! `any::<T>()`, `Just`, ranges, tuples, `prop_map`, `prop_filter`,
//! `boxed`/`BoxedStrategy`, `strategy::Union`, `collection::{vec,
//! btree_set}`, `option::of`, `sample::select`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod strategy;

#[macro_use]
mod macros;

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod string;
pub mod test_runner;

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Deterministic per-test random source (SplitMix64 core).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for `(test name, case index)` — fully deterministic.
    pub fn for_case(name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in name.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty bound");
        // Widening-multiply mapping; bias is < 2^-32 for in-repo bounds.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0usize..=4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y <= 4);
        }

        #[test]
        fn maps_and_filters_compose(
            v in crate::collection::vec((0u32..10).prop_map(|x| x * 2), 1..6)
        ) {
            prop_assert!(!v.is_empty() && v.len() < 6);
            prop_assert!(v.iter().all(|x| x % 2 == 0 && *x < 20));
        }

        #[test]
        fn union_picks_from_all_arms(
            x in crate::strategy::Union::new(vec![
                Just(1u8).boxed(),
                Just(2u8).boxed(),
            ])
        ) {
            prop_assert!(x == 1 || x == 2);
        }

        #[test]
        fn regex_subset_generates_matching(s in "[a-z0-9._-]{1,12}") {
            prop_assert!(!s.is_empty() && s.len() <= 12);
            prop_assert!(s.chars().all(|c| c.is_ascii_lowercase()
                || c.is_ascii_digit()
                || c == '.' || c == '_' || c == '-'));
        }

        #[test]
        fn options_produce_both_variants(xs in crate::collection::vec(crate::option::of(0u8..5), 64..65)) {
            // With 64 draws at p(Some) = 3/4, both variants appear with
            // overwhelming probability under every deterministic seed.
            prop_assert!(xs.iter().any(Option::is_some));
            prop_assert!(xs.iter().any(Option::is_none));
        }
    }

    #[test]
    fn assume_rejects_without_failing() {
        crate::proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                crate::prop_assume!(x < 5);
                crate::prop_assert!(x < 5);
            }
        }
        inner();
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics() {
        crate::proptest! {
            #[allow(unused)]
            fn inner(x in 0u64..10) {
                crate::prop_assert!(x < 9, "x was {}", x);
            }
        }
        inner();
    }
}
