//! `any::<T>()` support for the primitive types the workspace uses.

use crate::strategy::{Rejection, Strategy};
use crate::TestRng;
use std::marker::PhantomData;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one value covering the type's whole domain.
    fn arbitrary_value(rng: &mut TestRng) -> Self;
}

/// Strategy returned by [`any`].
#[derive(Clone, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(T::arbitrary_value(rng))
    }
}

impl Arbitrary for bool {
    fn arbitrary_value(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arbitrary_ints {
    ($($t:ty),+ $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary_value(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )+};
}

arbitrary_ints!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
