//! `Option` strategies.

use crate::strategy::{Rejection, Strategy};
use crate::TestRng;

/// Strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

/// Generates `Some` from `inner` three quarters of the time and `None`
/// otherwise (real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
        if rng.below(4) < 3 {
            Ok(Some(self.inner.generate(rng)?))
        } else {
            Ok(None)
        }
    }
}
