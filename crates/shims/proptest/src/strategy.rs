//! Core [`Strategy`] trait and the combinators the workspace uses.

use crate::TestRng;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generated case was discarded (filter miss, assume failure, or an
/// exhausted collection strategy). The runner retries with a fresh seed.
#[derive(Clone, Debug)]
pub struct Rejection(pub String);

/// A generator of test values.
///
/// Unlike real proptest there is no value tree and no shrinking: a
/// strategy simply produces a value (or a [`Rejection`]) from a
/// deterministic [`TestRng`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Produces one value.
    ///
    /// # Errors
    ///
    /// Returns [`Rejection`] when the draw must be discarded (e.g. a
    /// `prop_filter` predicate kept failing); the runner retries the
    /// whole case with the next seed.
    fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

    /// Transforms generated values with `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true, retrying a bounded
    /// number of times before rejecting the case.
    fn prop_filter<R: Into<String>, F: Fn(&Self::Value) -> bool>(
        self,
        whence: R,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter {
            inner: self,
            whence: whence.into(),
            f,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased strategy, as returned by [`Strategy::boxed`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
        self.0.generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
        Ok(self.0.clone())
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
        self.inner.generate(rng).map(&self.f)
    }
}

/// Strategy returned by [`Strategy::prop_filter`].
#[derive(Clone, Debug)]
pub struct Filter<S, F> {
    inner: S,
    whence: String,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        for _ in 0..256 {
            let v = self.inner.generate(rng)?;
            if (self.f)(&v) {
                return Ok(v);
            }
        }
        Err(Rejection(format!("filter exhausted: {}", self.whence)))
    }
}

/// Picks uniformly among several strategies producing the same type.
#[derive(Clone, Debug)]
pub struct Union<S> {
    arms: Vec<S>,
}

impl<S: Strategy> Union<S> {
    /// Builds a union over `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    pub fn new(arms: Vec<S>) -> Self {
        assert!(!arms.is_empty(), "Union requires at least one arm");
        Union { arms }
    }
}

impl<S: Strategy> Strategy for Union<S> {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Regex-literal string strategies (subset: `[class]{lo,hi}` forms).
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> Result<String, Rejection> {
        Ok(crate::string::generate_matching(self, rng))
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),+ $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                debug_assert!(span <= u64::MAX as u128);
                let off = rng.below(span as u64) as i128;
                Ok((self.start as i128 + off) as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full 64-bit domain.
                    return Ok(rng.next_u64() as $t);
                }
                let off = rng.below(span as u64) as i128;
                Ok((start as i128 + off) as $t)
            }
        }
    )+};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategies {
    ($($S:ident : $idx:tt),+) => {
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                Ok(($(self.$idx.generate(rng)?,)+))
            }
        }
    };
}

tuple_strategies!(A: 0);
tuple_strategies!(A: 0, B: 1);
tuple_strategies!(A: 0, B: 1, C: 2);
tuple_strategies!(A: 0, B: 1, C: 2, D: 3);
tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4);
tuple_strategies!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
