//! The `proptest!` entry point and assertion macros.

/// Fails the current case (returns `Err(TestCaseError::Fail)`) when the
/// condition is false. Usable only inside `proptest!` bodies.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// `prop_assert!` for equality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}",
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `left == right`\n  left: {:?}\n right: {:?}\n{}",
            l,
            r,
            format!($($fmt)+)
        );
    }};
}

/// `prop_assert!` for inequality, printing both operands on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}",
            l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `left != right`\n  both: {:?}\n{}",
            l,
            format!($($fmt)+)
        );
    }};
}

/// Discards the current case (the runner retries with a fresh seed)
/// when the precondition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                format!($($fmt)+),
            ));
        }
    };
}

/// Uniform choice among several strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property-test functions.
///
/// Supports the real-proptest form used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `fn name(pat in
/// strategy, ...) { body }` items carrying arbitrary attributes
/// (typically `#[test]` and doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            $crate::test_runner::run(
                &__config,
                concat!(module_path!(), "::", stringify!($name)),
                |__rng| {
                    let ($($pat,)+) = ($(
                        match $crate::strategy::Strategy::generate(&($strategy), __rng) {
                            ::core::result::Result::Ok(v) => v,
                            ::core::result::Result::Err(r) => {
                                return ::core::result::Result::Err(
                                    $crate::test_runner::TestCaseError::Reject(r.0),
                                );
                            }
                        },
                    )+);
                    $body
                    ::core::result::Result::Ok(())
                },
            );
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
}
