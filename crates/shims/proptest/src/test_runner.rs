//! Case-loop runner and the config/error types surfaced to tests.

use crate::TestRng;

/// How a property test runs. Only the fields this workspace touches.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
    /// Total rejections (assume/filter misses) tolerated before the run
    /// aborts as inconclusive.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 8192,
        }
    }
}

impl ProptestConfig {
    /// A default config overriding just the case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// Why one generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// The property failed — the whole test fails.
    Fail(String),
    /// The case was discarded (`prop_assume!` miss); the runner retries
    /// with the next seed.
    Reject(String),
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection with the given reason.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError::Reject(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "case rejected: {m}"),
        }
    }
}

/// Result of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Drives `case_fn` until `config.cases` cases pass, panicking on the
/// first failure. Each attempt gets a [`TestRng`] seeded from `name` and
/// the attempt index, so reruns replay identical values.
///
/// # Panics
///
/// Panics when a case fails, or when rejections exceed
/// `config.max_global_rejects`.
pub fn run<F>(config: &ProptestConfig, name: &str, mut case_fn: F)
where
    F: FnMut(&mut TestRng) -> TestCaseResult,
{
    let mut passed: u32 = 0;
    let mut rejects: u32 = 0;
    let mut attempt: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::for_case(name, attempt);
        match case_fn(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "proptest '{name}': too many rejected cases \
                     ({rejects} rejects, {passed} passed)"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest case failed for '{name}' \
                     (attempt {attempt}, after {passed} passing): {msg}"
                );
            }
        }
        attempt += 1;
    }
}
