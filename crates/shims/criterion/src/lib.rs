//! Offline stand-in for the subset of the `criterion` API this
//! workspace uses.
//!
//! Real criterion performs warm-up, sampling, and statistical analysis.
//! This shim keeps the same API shape (`Criterion`, `BenchmarkGroup`,
//! `BenchmarkId`, `Bencher::iter`, `criterion_group!`,
//! `criterion_main!`) but runs each benchmark body a handful of times
//! and prints a single wall-clock line, so `cargo bench` completes in
//! seconds and the harness code keeps compiling unchanged.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Iterations per benchmark in this shim (real criterion decides
/// adaptively).
const ITERS: u32 = 3;

/// Top-level benchmark driver. Builder methods are accepted and
/// ignored; they exist so configuration code keeps compiling.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Accepted for API compatibility; the shim always runs [`ITERS`]
    /// iterations.
    #[must_use]
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim does not time-box runs.
    #[must_use]
    pub fn measurement_time(self, _d: Duration) -> Self {
        self
    }

    /// Accepted for API compatibility; the shim does no warm-up.
    #[must_use]
    pub fn warm_up_time(self, _d: Duration) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, &mut body);
        self
    }
}

/// A named collection of benchmarks, as returned by
/// [`Criterion::benchmark_group`].
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(&label, &mut |b| body(b, input));
        self
    }

    /// Runs one unparameterized benchmark within the group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, name);
        run_one(&label, &mut body);
        self
    }

    /// Ends the group (a no-op in this shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with both a function name and a parameter value.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{function_name}/{parameter}"),
        }
    }

    /// An id labeled by the parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Passed to benchmark bodies; [`Bencher::iter`] times the routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over [`ITERS`] iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..ITERS {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one(label: &str, body: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        elapsed: Duration::ZERO,
    };
    body(&mut bencher);
    let per_iter = bencher.elapsed / ITERS;
    println!("bench {label:<48} {per_iter:>12.2?}/iter ({ITERS} iters)");
}

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundles benchmark functions into a named group runner, mirroring
/// criterion's macro (both the block form and the simple form).
#[macro_export]
macro_rules! criterion_group {
    (
        name = $name:ident;
        config = $config:expr;
        targets = $($target:path),+ $(,)?
    ) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_with_input(BenchmarkId::new("named", 7), &7u64, |b, &n| {
            b.iter(|| n * 2)
        });
        g.finish();
        c.bench_function("standalone", |b| b.iter(|| black_box(1 + 1)));
    }

    criterion_group! {
        name = benches;
        config = Criterion::default()
            .sample_size(10)
            .measurement_time(Duration::from_secs(3))
            .warm_up_time(Duration::from_millis(500));
        targets = bench
    }

    #[test]
    fn group_runner_executes() {
        benches();
    }
}
