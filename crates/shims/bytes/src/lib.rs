//! Offline stand-in for the subset of the `bytes` crate this workspace
//! uses: an immutable, cheaply clonable byte buffer.
//!
//! Backed by `Arc<[u8]>`, so clones are reference-count bumps just like
//! the real `Bytes`. Zero-copy slicing views are not implemented — the
//! workspace never sub-slices a `Bytes`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::Arc;

/// A cheaply clonable immutable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a static/borrowed slice into a buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes { data: data.into() }
    }

    /// Wraps a static slice (copied in this shim; the real crate
    /// borrows it zero-copy).
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes::copy_from_slice(data)
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the contents into a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

impl From<String> for Bytes {
    fn from(s: String) -> Self {
        Bytes {
            data: s.into_bytes().into(),
        }
    }
}

impl From<&str> for Bytes {
    fn from(s: &str) -> Self {
        Bytes::copy_from_slice(s.as_bytes())
    }
}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_ref() == other
    }
}

impl PartialEq<Bytes> for [u8] {
    fn eq(&self, other: &Bytes) -> bool {
        self == other.as_ref()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_views_agree() {
        let from_vec = Bytes::from(vec![b'h', b'i']);
        let from_slice = Bytes::from(&b"hi"[..]);
        let from_str = Bytes::from("hi");
        assert_eq!(from_vec, from_slice);
        assert_eq!(from_slice, from_str);
        assert_eq!(&from_vec[..], b"hi");
        assert_eq!(from_vec.len(), 2);
        assert!(!from_vec.is_empty());
        assert_eq!(from_vec.to_vec(), b"hi".to_vec());
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![0u8; 1024]);
        let b = a.clone();
        assert!(std::ptr::eq(a.as_ref(), b.as_ref()));
    }

    #[test]
    fn debug_escapes_non_printable() {
        let b = Bytes::from(&b"a\x00"[..]);
        assert_eq!(format!("{b:?}"), "b\"a\\x00\"");
    }
}
