//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors minimal, API-compatible implementations of its external
//! dependencies under `crates/shims/`. This crate provides [`RngCore`],
//! [`SeedableRng`], and the [`Rng`] extension trait with exactly the
//! methods the repository calls (`gen::<f64>()`, `gen_bool`, `gen_range`
//! over integer ranges). Generators remain fully deterministic: same seed,
//! same stream.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error type for fallible RNG operations (never produced by this shim's
/// generators, which are infallible).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("rng error")
    }
}

impl std::error::Error for Error {}

/// A low-level generator of raw random words, mirroring `rand::RngCore`.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut i = 0;
        while i < dest.len() {
            let word = self.next_u64().to_le_bytes();
            let n = (dest.len() - i).min(8);
            dest[i..i + n].copy_from_slice(&word[..n]);
            i += n;
        }
    }
    /// Fallible fill; this shim never fails.
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a fixed-size seed, mirroring
/// `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The raw seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it over the full seed
    /// with SplitMix64 exactly once per 8-byte chunk.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64::new(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// SplitMix64: seed expansion and a tiny PRNG building block.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// A SplitMix64 stream starting from `state`.
    pub fn new(state: u64) -> Self {
        SplitMix64 { state }
    }

    /// Next 64-bit output.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly from raw random words (stand-in for the
/// `Standard` distribution).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range samplable by `Rng::gen_range`, mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw in `[0, bound)` without modulo bias (Lemire-style
/// rejection via widening multiply).
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound.wrapping_neg() % bound.max(1) {
            return (m >> 64) as u64;
        }
        // Rejected draw: retry (rare unless bound is near u64::MAX).
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + bounded_u64(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded_u64(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Convenience extension methods over any [`RngCore`], mirroring
/// `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of a samplable type (`rng.gen::<f64>()`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli draw with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of [0,1]");
        f64::sample(self) < p
    }

    /// Uniform draw from an integer range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }
        fn next_u64(&mut self) -> u64 {
            self.0 = SplitMix64::new(self.0).next();
            self.0
        }
    }

    #[test]
    fn unit_f64_in_range() {
        let mut r = Counter(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounded() {
        let mut r = Counter(2);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Counter(3);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = Counter(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(r.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn seed_from_u64_deterministic() {
        struct S([u8; 32]);
        impl SeedableRng for S {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                S(seed)
            }
        }
        assert_eq!(S::seed_from_u64(9).0, S::seed_from_u64(9).0);
        assert_ne!(S::seed_from_u64(9).0, S::seed_from_u64(10).0);
    }
}
