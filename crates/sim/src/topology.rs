//! The network graph: nodes, links, partitions, and reachability.
//!
//! The paper's `reachable` construct bottoms out here: an object is
//! accessible exactly when the node holding it is reachable from the client's
//! node *in the current state*. Reachability accounts for crashed nodes,
//! administratively-down links, and network partitions, and is transitive
//! (messages route through intermediate up nodes).

use crate::link::LinkState;
use crate::node::{Node, NodeId, NodeStatus};
use std::collections::{HashMap, VecDeque};

/// A partition group id. Nodes in different groups cannot exchange messages
/// while the partition is in force.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PartitionGroup(pub u32);

/// The simulated network graph.
///
/// By default the graph is a fully-connected clique of healthy links; tests
/// and fault plans then crash nodes, take links down, or impose partitions.
///
/// ```
/// use weakset_sim::prelude::*;
/// let mut topo = Topology::new();
/// let a = topo.add_node("a", 0);
/// let b = topo.add_node("b", 1);
/// let c = topo.add_node("c", 2);
/// assert!(topo.reachable(a, c));
/// topo.partition(&[c]);
/// assert!(!topo.reachable(a, c));
/// assert_eq!(topo.reachable_set(a), vec![a, b]);
/// topo.heal_partition();
/// assert!(topo.reachable(a, c));
/// ```
#[derive(Clone, Debug, Default)]
pub struct Topology {
    nodes: Vec<Node>,
    /// Sparse overrides; absent pairs are healthy links.
    links: HashMap<(NodeId, NodeId), LinkState>,
    /// Partition group per node; `None` means the default (connected) group.
    groups: Vec<Option<PartitionGroup>>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a node at the given site, returning its id.
    pub fn add_node(&mut self, name: impl Into<String>, site: u32) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node::new(id, name, site));
        self.groups.push(None);
        id
    }

    /// Adds `n` nodes named `prefix-i`, all at distinct sites `0..n`.
    pub fn add_nodes(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        (0..n)
            .map(|i| self.add_node(format!("{prefix}-{i}"), i as u32))
            .collect()
    }

    /// One site past the highest site currently in use (0 when empty).
    pub fn next_site(&self) -> u32 {
        self.nodes
            .iter()
            .map(|n| n.site().saturating_add(1))
            .max()
            .unwrap_or(0)
    }

    /// Adds `n` server nodes named `prefix{i}`, each at the next unused
    /// site, returning their ids. This is THE way to stand up a server
    /// fleet after the client node: ids and sites both come from the
    /// topology's own counters, so no caller hand-assigns either (the
    /// old `i as u32 + 1` convention collided once deployments grew
    /// several node sets).
    pub fn add_servers(&mut self, prefix: &str, n: usize) -> Vec<NodeId> {
        let base = self.next_site();
        (0..n)
            .map(|i| self.add_node(format!("{prefix}{i}"), base + i as u32))
            .collect()
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no nodes exist yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Looks up a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not created by this topology.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.nodes.len() as u32).map(NodeId)
    }

    /// Crashes a node: it stops sending, receiving, and serving.
    pub fn crash(&mut self, id: NodeId) {
        self.nodes[id.index()].set_status(NodeStatus::Crashed);
    }

    /// Restarts a crashed node.
    pub fn restart(&mut self, id: NodeId) {
        self.nodes[id.index()].set_status(NodeStatus::Up);
    }

    /// True when the node is up.
    pub fn is_up(&self, id: NodeId) -> bool {
        self.nodes[id.index()].is_up()
    }

    fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Current state of the link between `a` and `b` (healthy by default).
    pub fn link(&self, a: NodeId, b: NodeId) -> LinkState {
        self.links
            .get(&Self::key(a, b))
            .copied()
            .unwrap_or_default()
    }

    /// Overrides the link between `a` and `b`.
    pub fn set_link(&mut self, a: NodeId, b: NodeId, state: LinkState) {
        self.links.insert(Self::key(a, b), state);
    }

    /// Places a node into a partition group. Nodes in different groups are
    /// mutually unreachable; nodes in the same group (or both ungrouped)
    /// communicate normally.
    pub fn set_group(&mut self, id: NodeId, group: Option<PartitionGroup>) {
        self.groups[id.index()] = group;
    }

    /// Imposes a two-sided partition: every node in `side` goes to group 1,
    /// everyone else to group 0.
    pub fn partition(&mut self, side: &[NodeId]) {
        for id in self.node_ids().collect::<Vec<_>>() {
            let g = if side.contains(&id) {
                PartitionGroup(1)
            } else {
                PartitionGroup(0)
            };
            self.groups[id.index()] = Some(g);
        }
    }

    /// Removes all partition groups, reconnecting the network (links and
    /// node statuses are unaffected).
    pub fn heal_partition(&mut self) {
        for g in &mut self.groups {
            *g = None;
        }
    }

    /// The partition group of a node, if any.
    pub fn group(&self, id: NodeId) -> Option<PartitionGroup> {
        self.groups[id.index()]
    }

    fn same_group(&self, a: NodeId, b: NodeId) -> bool {
        self.groups[a.index()] == self.groups[b.index()]
    }

    /// True when a *single hop* from `a` to `b` is currently possible:
    /// both nodes up, link up, same partition group.
    pub fn edge_open(&self, a: NodeId, b: NodeId) -> bool {
        a != b && self.is_up(a) && self.is_up(b) && self.link(a, b).up && self.same_group(a, b)
    }

    /// True when messages can currently get from `a` to `b`, routing through
    /// intermediate up nodes if necessary. Reflexive for up nodes.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if !self.is_up(a) || !self.is_up(b) {
            return false;
        }
        if a == b {
            return true;
        }
        // BFS over open edges.
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut q = VecDeque::new();
        seen[a.index()] = true;
        q.push_back(a);
        while let Some(cur) = q.pop_front() {
            for id in self.node_ids() {
                if !seen[id.index()] && self.edge_open(cur, id) {
                    if id == b {
                        return true;
                    }
                    seen[id.index()] = true;
                    q.push_back(id);
                }
            }
        }
        false
    }

    /// The set of nodes currently reachable from `from` (including itself,
    /// if up). This is the state-σ footprint that the paper's
    /// `reachable(x)` function projects collections through.
    pub fn reachable_set(&self, from: NodeId) -> Vec<NodeId> {
        if !self.is_up(from) {
            return Vec::new();
        }
        let n = self.nodes.len();
        let mut seen = vec![false; n];
        let mut order = Vec::new();
        let mut q = VecDeque::new();
        seen[from.index()] = true;
        order.push(from);
        q.push_back(from);
        while let Some(cur) = q.pop_front() {
            for id in self.node_ids() {
                if !seen[id.index()] && self.edge_open(cur, id) {
                    seen[id.index()] = true;
                    order.push(id);
                    q.push_back(id);
                }
            }
        }
        order.sort_unstable();
        order
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three() -> (Topology, NodeId, NodeId, NodeId) {
        let mut t = Topology::new();
        let a = t.add_node("a", 0);
        let b = t.add_node("b", 1);
        let c = t.add_node("c", 2);
        (t, a, b, c)
    }

    #[test]
    fn clique_by_default() {
        let (t, a, b, c) = three();
        assert!(t.reachable(a, b));
        assert!(t.reachable(b, c));
        assert!(t.reachable(a, c));
        assert!(t.reachable(a, a));
    }

    #[test]
    fn crashed_node_is_unreachable() {
        let (mut t, a, b, _c) = three();
        t.crash(b);
        assert!(!t.reachable(a, b));
        assert!(!t.reachable(b, a));
        assert!(!t.reachable(b, b));
        t.restart(b);
        assert!(t.reachable(a, b));
    }

    #[test]
    fn down_link_routes_around() {
        let (mut t, a, b, c) = three();
        t.set_link(a, b, LinkState::down());
        // Direct edge is closed but the path a-c-b remains.
        assert!(!t.edge_open(a, b));
        assert!(t.reachable(a, b));
        // Cutting both legs isolates b.
        t.set_link(c, b, LinkState::down());
        assert!(!t.reachable(a, b));
    }

    #[test]
    fn partition_blocks_across_groups() {
        let (mut t, a, b, c) = three();
        t.partition(&[c]);
        assert!(t.reachable(a, b));
        assert!(!t.reachable(a, c));
        assert!(!t.reachable(b, c));
        t.heal_partition();
        assert!(t.reachable(a, c));
    }

    #[test]
    fn reachable_set_lists_component() {
        let (mut t, a, b, c) = three();
        t.partition(&[c]);
        assert_eq!(t.reachable_set(a), vec![a, b]);
        assert_eq!(t.reachable_set(c), vec![c]);
        t.crash(a);
        assert!(t.reachable_set(a).is_empty());
    }

    #[test]
    fn set_group_is_per_node() {
        let (mut t, a, b, c) = three();
        t.set_group(a, Some(PartitionGroup(5)));
        assert!(!t.reachable(a, b));
        assert!(t.reachable(b, c));
        assert_eq!(t.group(a), Some(PartitionGroup(5)));
        assert_eq!(t.group(b), None);
    }

    #[test]
    fn add_nodes_assigns_distinct_sites() {
        let mut t = Topology::new();
        let ids = t.add_nodes("srv", 4);
        assert_eq!(ids.len(), 4);
        assert_eq!(t.node(ids[2]).name(), "srv-2");
        assert_eq!(t.node(ids[2]).site(), 2);
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
    }

    #[test]
    fn add_servers_continues_site_numbering() {
        let mut t = Topology::new();
        assert_eq!(t.next_site(), 0);
        let client = t.add_node("client", 0);
        let servers = t.add_servers("s", 3);
        assert_eq!(t.node(servers[0]).site(), 1);
        assert_eq!(t.node(servers[2]).site(), 3);
        assert_eq!(t.node(servers[2]).name(), "s2");
        // A second fleet lands on fresh sites and fresh ids.
        let more = t.add_servers("shard", 2);
        assert_eq!(t.node(more[0]).site(), 4);
        let mut all = vec![client];
        all.extend(&servers);
        all.extend(&more);
        let mut dedup = all.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "no NodeId collisions");
    }

    #[test]
    fn link_state_is_symmetric() {
        let (mut t, a, b, _c) = three();
        t.set_link(b, a, LinkState::lossy(0.5));
        assert_eq!(t.link(a, b).drop_prob, 0.5);
        assert_eq!(t.link(b, a).drop_prob, 0.5);
    }
}
