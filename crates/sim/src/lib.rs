//! # weakset-sim
//!
//! A deterministic discrete-event simulator for wide-area distributed
//! systems, built as the substrate for the *weak sets* reproduction
//! (Wing & Steere, *Specifying Weak Sets*, ICDCS 1995).
//!
//! The paper's model of computation assumes a set of connected nodes where
//! "nodes may crash and communication links may fail", failures are
//! detectable, and clients talk to servers via RPC. This crate provides
//! exactly that world, deterministically:
//!
//! * [`topology::Topology`] — nodes, links, partitions, and the transitive
//!   reachability relation that grounds the paper's `reachable` construct.
//! * [`world::World`] — the event loop: synchronous client RPC that pumps
//!   scheduled background work (mutators, fault actions) in timestamp order.
//! * [`fault::FaultPlan`] — scripted crashes, outages, partitions, heals,
//!   and flapping links.
//! * [`latency::LatencyModel`] — constant/uniform/exponential/site-distance
//!   latency, the last enabling "fetch closer files first".
//! * [`rng::SimRng`] — labelled deterministic random streams; a run is a
//!   pure function of `(seed, workload, fault plan)`.
//!
//! ## Example
//!
//! ```
//! use weakset_sim::prelude::*;
//!
//! struct Echo;
//! impl Service<String> for Echo {
//!     fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: String) -> String {
//!         msg
//!     }
//! }
//!
//! let mut topo = Topology::new();
//! let client = topo.add_node("client", 0);
//! let server = topo.add_node("server", 1);
//! let mut world = World::new(WorldConfig::seeded(7), topo, LatencyModel::default());
//! world.install_service(server, Box::new(Echo));
//! let reply = world.rpc_default(client, server, "hi".to_string())?;
//! assert_eq!(reply, "hi");
//! # Ok::<(), weakset_sim::net::NetError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod event;
pub mod fault;
pub mod latency;
pub mod link;
pub mod metrics;
pub mod net;
pub mod node;
pub mod rng;
pub mod time;
pub mod topology;
pub mod trace;
pub mod world;

/// One-stop imports for simulator users.
pub mod prelude {
    pub use crate::fault::{FaultAction, FaultPlan};
    pub use crate::latency::LatencyModel;
    pub use crate::link::LinkState;
    pub use crate::metrics::{EventSink, LatencyRecorder, LatencySummary, Metrics, ObsSnapshot};
    pub use crate::net::{BatchBuffer, BatchEnvelope, NetError};
    pub use crate::node::{Node, NodeId, NodeStatus};
    pub use crate::rng::SimRng;
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::topology::{PartitionGroup, Topology};
    pub use crate::trace::{Trace, TraceEvent};
    pub use crate::world::{ReplyToken, Service, ServiceCtx, Task, World, WorldConfig};
}
