//! Structured run traces.
//!
//! The trace is the simulator-side "computation history": every RPC, fault
//! action, and task firing is recorded with its simulated time. The spec
//! crate consumes higher-level traces; this one exists for debugging and for
//! experiment post-processing.

use crate::net::NetError;
use crate::node::NodeId;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};

/// One recorded occurrence.
///
/// `from`/`to` fields name the client and server nodes of the RPC or
/// message concerned.
#[allow(missing_docs)]
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// A client issued an RPC.
    RpcSend { from: NodeId, to: NodeId },
    /// The request reached the server and was handled.
    RpcHandled { from: NodeId, to: NodeId },
    /// The reply reached the client.
    RpcOk { from: NodeId, to: NodeId },
    /// The RPC failed.
    RpcFailed {
        from: NodeId,
        to: NodeId,
        error: NetError,
    },
    /// A message was lost in flight (state changed mid-flight or link loss).
    MessageLost { from: NodeId, to: NodeId },
    /// A node crashed.
    NodeCrashed(NodeId),
    /// A node restarted.
    NodeRestarted(NodeId),
    /// A partition was imposed isolating these nodes.
    PartitionImposed(Vec<NodeId>),
    /// All partitions healed.
    PartitionHealed,
    /// A link's state changed.
    LinkChanged(NodeId, NodeId),
    /// A node's partition group changed.
    GroupChanged(NodeId),
    /// A scheduled task ran.
    TaskRan {
        /// The task's label.
        label: String,
    },
    /// Free-form annotation from user code.
    Note(String),
}

/// A time-stamped record of everything that happened in a run.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct Trace {
    enabled: bool,
    events: Vec<(SimTime, TraceEvent)>,
}

impl Trace {
    /// An enabled, empty trace.
    pub fn new() -> Self {
        Trace {
            enabled: true,
            events: Vec::new(),
        }
    }

    /// A trace that discards everything (for long benchmark runs).
    pub fn disabled() -> Self {
        Trace {
            enabled: false,
            events: Vec::new(),
        }
    }

    /// Whether events are being kept.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records an event (no-op when disabled).
    pub fn record(&mut self, at: SimTime, event: TraceEvent) {
        if self.enabled {
            self.events.push((at, event));
        }
    }

    /// All recorded events in time order.
    pub fn events(&self) -> &[(SimTime, TraceEvent)] {
        &self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Counts events matching a predicate.
    pub fn count(&self, mut pred: impl FnMut(&TraceEvent) -> bool) -> usize {
        self.events.iter().filter(|(_, e)| pred(e)).count()
    }

    /// Drops all recorded events, keeping the enabled flag.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// A 64-bit FNV-1a digest of the whole trace.
    ///
    /// The hash folds every event's time and debug rendering, so two runs
    /// have equal hashes exactly when they recorded the same events in the
    /// same order at the same simulated times. This is the determinism
    /// fingerprint `weakset-dst` compares across replays: any stray
    /// system entropy or iteration-order dependence in the simulator shows
    /// up as a digest mismatch for a fixed seed.
    pub fn hash(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut fold = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        for (at, ev) in &self.events {
            fold(&at.as_micros().to_le_bytes());
            fold(format!("{ev:?}").as_bytes());
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order() {
        let mut t = Trace::new();
        t.record(SimTime::from_micros(1), TraceEvent::PartitionHealed);
        t.record(SimTime::from_micros(2), TraceEvent::NodeCrashed(NodeId(0)));
        assert_eq!(t.len(), 2);
        assert_eq!(t.events()[0].0, SimTime::from_micros(1));
    }

    #[test]
    fn disabled_trace_discards() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, TraceEvent::PartitionHealed);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn count_filters() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, TraceEvent::NodeCrashed(NodeId(0)));
        t.record(SimTime::ZERO, TraceEvent::NodeCrashed(NodeId(1)));
        t.record(SimTime::ZERO, TraceEvent::PartitionHealed);
        assert_eq!(t.count(|e| matches!(e, TraceEvent::NodeCrashed(_))), 2);
    }

    #[test]
    fn clear_keeps_enabled() {
        let mut t = Trace::new();
        t.record(SimTime::ZERO, TraceEvent::PartitionHealed);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn serializes_round_trip() {
        let mut t = Trace::new();
        t.record(
            SimTime::from_micros(5),
            TraceEvent::RpcFailed {
                from: NodeId(0),
                to: NodeId(1),
                error: NetError::Timeout,
            },
        );
        let json = serde_json_like(&t);
        assert!(json.contains("RpcFailed"));
    }

    // serde_json is not a dependency; smoke-test Serialize via the debug
    // representation of the serde data model using a tiny shim.
    fn serde_json_like(t: &Trace) -> String {
        format!("{t:?}")
    }
}
