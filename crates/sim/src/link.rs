//! Point-to-point link state.

use serde::{Deserialize, Serialize};

/// The administrative state of an (undirected) link between two nodes.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct LinkState {
    /// Whether the link is up. A down link carries no traffic at all.
    pub up: bool,
    /// Probability that any single message on this link is silently lost
    /// even while the link is up (observed by the sender as a timeout).
    pub drop_prob: f64,
}

impl Default for LinkState {
    fn default() -> Self {
        LinkState {
            up: true,
            drop_prob: 0.0,
        }
    }
}

impl LinkState {
    /// A healthy, lossless link.
    pub fn healthy() -> Self {
        Self::default()
    }

    /// A link that is administratively down.
    pub fn down() -> Self {
        LinkState {
            up: false,
            drop_prob: 0.0,
        }
    }

    /// A lossy-but-up link.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1]`.
    pub fn lossy(p: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&p),
            "drop probability {p} not in [0,1]"
        );
        LinkState {
            up: true,
            drop_prob: p,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_healthy() {
        let l = LinkState::default();
        assert!(l.up);
        assert_eq!(l.drop_prob, 0.0);
        assert_eq!(l, LinkState::healthy());
    }

    #[test]
    fn down_carries_no_traffic_flag() {
        assert!(!LinkState::down().up);
    }

    #[test]
    fn lossy_accepts_valid_probability() {
        let l = LinkState::lossy(0.25);
        assert!(l.up);
        assert_eq!(l.drop_prob, 0.25);
    }

    #[test]
    #[should_panic(expected = "not in [0,1]")]
    fn lossy_rejects_bad_probability() {
        LinkState::lossy(1.5);
    }
}
