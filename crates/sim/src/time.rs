//! Simulated time.
//!
//! The simulator uses a discrete, integer microsecond clock. Newtypes keep
//! instants and durations from being confused ([`SimTime`] vs
//! [`SimDuration`]), and all arithmetic is saturating so fault plans that
//! schedule events "far in the future" cannot overflow.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// An instant on the simulation clock, in microseconds since the start of
/// the run.
///
/// ```
/// use weakset_sim::time::{SimTime, SimDuration};
/// let t = SimTime::ZERO + SimDuration::from_millis(2);
/// assert_eq!(t.as_micros(), 2_000);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
///
/// ```
/// use weakset_sim::time::SimDuration;
/// assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1_000));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than every schedulable event; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds an instant from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Builds an instant from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000))
    }

    /// Builds an instant from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s.saturating_mul(1_000_000))
    }

    /// Raw microseconds since the start of the run.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This instant expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Time elapsed since `earlier`, or `None` when `earlier` is later
    /// than `self` (an out-of-order timestamp pair).
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// Time elapsed since `earlier`, or zero if `earlier` is later.
    ///
    /// Saturating here means the caller subtracted timestamps out of
    /// order — on a monotonic event loop that is a causality or
    /// scheduler-ordering bug upstream, so debug builds assert instead
    /// of masking it. A caller that genuinely expects reordered
    /// instants should branch on [`SimTime::checked_duration_since`].
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(
            earlier.0 <= self.0,
            "out-of-order timestamps: {earlier:?} is later than {self:?}"
        );
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The longest representable duration.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Builds a duration from raw microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms.saturating_mul(1_000))
    }

    /// Builds a duration from seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s.saturating_mul(1_000_000))
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This duration expressed in (truncated) milliseconds.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// This duration expressed in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Saturating multiplication by an integer factor.
    pub fn saturating_mul(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }

    /// Checked addition of two durations.
    pub fn checked_add(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_add(other.0).map(SimDuration)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, other: SimTime) -> SimDuration {
        self.saturating_since(other)
    }
}

impl Add<SimDuration> for SimDuration {
    type Output = SimDuration;
    fn add(self, d: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(d.0))
    }
}

impl AddAssign<SimDuration> for SimDuration {
    fn add_assign(&mut self, d: SimDuration) {
        *self = *self + d;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_secs(2).as_millis(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_micros(), 1_000_000);
    }

    #[test]
    fn add_duration_to_time() {
        let t = SimTime::from_micros(10) + SimDuration::from_micros(5);
        assert_eq!(t, SimTime::from_micros(15));
    }

    #[test]
    fn checked_duration_since_detects_out_of_order() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.checked_duration_since(b), None);
        assert_eq!(
            b.checked_duration_since(a),
            Some(SimDuration::from_micros(4))
        );
        assert_eq!(b.saturating_since(a), SimDuration::from_micros(4));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out-of-order timestamps")]
    fn saturating_since_asserts_on_out_of_order() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        let _ = a.saturating_since(b);
    }

    #[test]
    fn addition_saturates_at_max() {
        let t = SimTime::MAX + SimDuration::from_secs(1);
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn sub_yields_duration() {
        let d = SimTime::from_micros(30) - SimTime::from_micros(10);
        assert_eq!(d, SimDuration::from_micros(20));
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::ZERO < SimTime::from_micros(1));
        assert!(SimTime::from_micros(1) < SimTime::MAX);
    }

    #[test]
    fn display_formats() {
        assert_eq!(SimTime::from_micros(7).to_string(), "7us");
        assert_eq!(SimDuration::from_micros(7).to_string(), "7us");
        assert_eq!(format!("{:?}", SimTime::from_micros(7)), "t+7us");
    }

    #[test]
    fn as_secs_f64_matches() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn min_picks_earlier() {
        let a = SimTime::from_micros(5);
        let b = SimTime::from_micros(9);
        assert_eq!(a.min(b), a);
        assert_eq!(b.min(a), a);
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert!(SimDuration::MAX
            .checked_add(SimDuration::from_micros(1))
            .is_none());
        assert_eq!(
            SimDuration::from_micros(1).checked_add(SimDuration::from_micros(2)),
            Some(SimDuration::from_micros(3))
        );
    }
}
