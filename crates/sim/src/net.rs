//! Network-level failures.
//!
//! The paper writes `fails` for "the operation terminates with a special
//! 'failure' exception, denoting any kind of failure, e.g., a timeout, node
//! crash, or link down". [`NetError`] is that exception, with the cause kept
//! for diagnostics.

use crate::node::NodeId;
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Why a remote operation failed.
///
/// Every variant corresponds to a failure the paper's model assumes is
/// *detectable* ("signaled from the lower network and transport layers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetError {
    /// No reply arrived within the caller's timeout.
    Timeout,
    /// The local or remote node is known to be crashed.
    NodeDown(NodeId),
    /// Failure detection reported no route between the two nodes
    /// (partition or down links).
    Unreachable {
        /// The calling node.
        from: NodeId,
        /// The target node.
        to: NodeId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "request timed out"),
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Unreachable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(NetError::Timeout.to_string(), "request timed out");
        assert_eq!(NetError::NodeDown(NodeId(2)).to_string(), "node n2 is down");
        assert_eq!(
            NetError::Unreachable {
                from: NodeId(0),
                to: NodeId(1)
            }
            .to_string(),
            "no route from n0 to n1"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(NetError::Timeout);
        assert!(e.source().is_none());
    }
}
