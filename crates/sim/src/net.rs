//! Network-level failures and message coalescing.
//!
//! The paper writes `fails` for "the operation terminates with a special
//! 'failure' exception, denoting any kind of failure, e.g., a timeout, node
//! crash, or link down". [`NetError`] is that exception, with the cause kept
//! for diagnostics.
//!
//! This module also carries the wire-level *batch envelope*: a message
//! type that implements [`BatchEnvelope`] can coalesce several sibling
//! requests for one destination into a single envelope message, which
//! crosses the network as ONE message — one latency sample, one
//! transfer-delay charge, one delivery event. [`BatchBuffer`] is the
//! scheduler-level flush queue that does the grouping.

use crate::node::NodeId;
use crate::world::{ReplyToken, World};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// A message type whose values can be coalesced into one wire-level
/// envelope.
///
/// Implementations add a `Batch(Vec<M>)`-style variant to their protocol
/// enum; servers answer an envelope with an envelope of replies in
/// request order. The simulator charges the envelope as a single
/// message, so a quorum round-trip can carry reads for every key
/// co-located on the destination.
pub trait BatchEnvelope: Sized {
    /// Wraps sibling requests into one envelope message.
    fn wrap_batch(parts: Vec<Self>) -> Self;
    /// Recovers an envelope's parts, or gives the message back when it
    /// is not an envelope (a plain unbatched reply).
    fn unwrap_batch(self) -> Result<Vec<Self>, Self>;
}

/// A scheduler-level flush queue for batched sends.
///
/// Client code pushes individual requests keyed by destination; a
/// [`BatchBuffer::flush`] then launches ONE envelope per destination
/// (in deterministic `NodeId` order) via [`World::send_batch`] and
/// returns the in-flight tokens. The buffer never advances simulated
/// time — pushes are free, and the flush only *launches* messages, so
/// requests queued in the same scheduling step genuinely share their
/// round trips.
#[derive(Debug)]
pub struct BatchBuffer<M> {
    from: NodeId,
    pending: BTreeMap<NodeId, Vec<M>>,
}

impl<M: Clone + fmt::Debug + BatchEnvelope + 'static> BatchBuffer<M> {
    /// An empty buffer for requests originating at `from`.
    pub fn new(from: NodeId) -> Self {
        BatchBuffer {
            from,
            pending: BTreeMap::new(),
        }
    }

    /// Queues one request for `to`. Nothing is sent until
    /// [`BatchBuffer::flush`].
    pub fn push(&mut self, to: NodeId, msg: M) {
        self.pending.entry(to).or_default().push(msg);
    }

    /// Total queued requests across all destinations.
    pub fn pending_parts(&self) -> usize {
        self.pending.values().map(Vec::len).sum()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Sends every queued request, one envelope per destination, and
    /// returns `(destination, token, parts)` per envelope in `NodeId`
    /// order. Replies arrive as envelopes; unwrap them with
    /// [`BatchEnvelope::unwrap_batch`] after
    /// [`World::try_take_reply`].
    pub fn flush(&mut self, world: &mut World<M>) -> Vec<(NodeId, ReplyToken, usize)> {
        let pending = std::mem::take(&mut self.pending);
        pending
            .into_iter()
            .map(|(to, parts)| {
                let n = parts.len();
                let token = world.send_batch(self.from, to, parts);
                (to, token, n)
            })
            .collect()
    }

    /// Takes every queued request, grouped per destination in `NodeId`
    /// order, without sending anything. Runtime-agnostic callers drain
    /// the buffer and launch one envelope per group through whichever
    /// transport they run on (`weakset-runtime`'s `Transport::send_batch`).
    pub fn drain(&mut self) -> Vec<(NodeId, Vec<M>)> {
        std::mem::take(&mut self.pending).into_iter().collect()
    }
}

/// Why a remote operation failed.
///
/// Every variant corresponds to a failure the paper's model assumes is
/// *detectable* ("signaled from the lower network and transport layers").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetError {
    /// No reply arrived within the caller's timeout.
    Timeout,
    /// The local or remote node is known to be crashed.
    NodeDown(NodeId),
    /// Failure detection reported no route between the two nodes
    /// (partition or down links).
    Unreachable {
        /// The calling node.
        from: NodeId,
        /// The target node.
        to: NodeId,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Timeout => write!(f, "request timed out"),
            NetError::NodeDown(n) => write!(f, "node {n} is down"),
            NetError::Unreachable { from, to } => {
                write!(f, "no route from {from} to {to}")
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert_eq!(NetError::Timeout.to_string(), "request timed out");
        assert_eq!(NetError::NodeDown(NodeId(2)).to_string(), "node n2 is down");
        assert_eq!(
            NetError::Unreachable {
                from: NodeId(0),
                to: NodeId(1)
            }
            .to_string(),
            "no route from n0 to n1"
        );
    }

    #[test]
    fn error_trait_is_implemented() {
        let e: Box<dyn Error> = Box::new(NetError::Timeout);
        assert!(e.source().is_none());
    }
}
