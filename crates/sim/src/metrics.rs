//! Run metrics, re-exported from the workspace-wide observability
//! layer.
//!
//! The original ad-hoc counter/latency implementation that lived here
//! was absorbed into [`weakset_obs`] and generalized (gauges, merge,
//! snapshots, a single de-duplicated sort guard in
//! [`LatencyRecorder`]). The simulator keeps this module as the
//! canonical import path — `World` still owns a [`Metrics`] per run —
//! and all latencies are recorded in integer microseconds
//! (`SimDuration::as_micros`), the simulator's native resolution.

pub use weakset_obs::{
    category_of, chrome_trace, critical_path, critical_path_of, per_shard_stats, shard_key,
    CausalDag, CriticalPath, Direction, EventSink, LatencyRecorder, LatencySummary, Objective,
    ObsEvent, ObsSnapshot, PathCategory, ShardStats, SpanId, SpanNode, TraceContext, TraceId,
};

/// Named counters, gauges, and latency recorders for a run.
///
/// An alias for [`weakset_obs::MetricsRegistry`]; see its docs for the
/// full API. Latency observations are plain `u64` microseconds — use
/// `SimDuration::as_micros()` at the call site.
pub type Metrics = weakset_obs::MetricsRegistry;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("rpc");
        m.add("rpc", 2);
        assert_eq!(m.counter("rpc"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn sim_durations_observe_as_micros() {
        let mut m = Metrics::new();
        m.observe("fetch", SimDuration::from_millis(2).as_micros());
        assert_eq!(m.latency_mut("fetch").p50(), Some(2_000));
        assert_eq!(m.latency("fetch").map(LatencyRecorder::len), Some(1));
        assert!(m.latency("other").is_none());
    }

    #[test]
    fn quantiles_match_previous_nearest_rank_behaviour() {
        let mut r = LatencyRecorder::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record(us);
        }
        assert_eq!(r.p50(), Some(50));
        assert_eq!(r.quantile(0.0), Some(10));
        assert_eq!(r.quantile(1.0), Some(100));
    }
}
