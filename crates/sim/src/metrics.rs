//! Lightweight run metrics: counters and latency summaries.

use crate::time::SimDuration;
use std::collections::BTreeMap;
use std::fmt;

/// Records a population of latencies and answers summary queries.
#[derive(Clone, Debug, Default)]
pub struct LatencyRecorder {
    samples: Vec<u64>, // microseconds
    sorted: bool,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn record(&mut self, d: SimDuration) {
        self.samples.push(d.as_micros());
        self.sorted = false;
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    fn ensure_sorted(&mut self) {
        if !self.sorted {
            self.samples.sort_unstable();
            self.sorted = true;
        }
    }

    /// The `q`-quantile (0.0 ≤ q ≤ 1.0) by nearest-rank, or `None` if empty.
    pub fn quantile(&mut self, q: f64) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        self.ensure_sorted();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.samples.len() as f64).ceil() as usize).max(1) - 1;
        Some(SimDuration::from_micros(
            self.samples[rank.min(self.samples.len() - 1)],
        ))
    }

    /// Median latency.
    pub fn p50(&mut self) -> Option<SimDuration> {
        self.quantile(0.50)
    }

    /// 99th-percentile latency.
    pub fn p99(&mut self) -> Option<SimDuration> {
        self.quantile(0.99)
    }

    /// Arithmetic mean, or `None` if empty.
    pub fn mean(&self) -> Option<SimDuration> {
        if self.samples.is_empty() {
            return None;
        }
        let sum: u128 = self.samples.iter().map(|&s| s as u128).sum();
        Some(SimDuration::from_micros(
            (sum / self.samples.len() as u128) as u64,
        ))
    }

    /// Largest observation.
    pub fn max(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.last().map(|&s| SimDuration::from_micros(s))
    }

    /// Smallest observation.
    pub fn min(&mut self) -> Option<SimDuration> {
        self.ensure_sorted();
        self.samples.first().map(|&s| SimDuration::from_micros(s))
    }
}

/// Named counters plus named latency recorders for a run.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    latencies: BTreeMap<String, LatencyRecorder>,
}

impl Metrics {
    /// Empty metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to a named counter (creating it at zero).
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Increments a named counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Reads a counter (zero if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Records a latency observation under `name`.
    pub fn observe(&mut self, name: &str, d: SimDuration) {
        self.latencies
            .entry(name.to_string())
            .or_default()
            .record(d);
    }

    /// Mutable access to a named latency recorder, creating it if needed.
    pub fn latency_mut(&mut self, name: &str) -> &mut LatencyRecorder {
        self.latencies.entry(name.to_string()).or_default()
    }

    /// Read-only access to a named latency recorder if it exists.
    pub fn latency(&self, name: &str) -> Option<&LatencyRecorder> {
        self.latencies.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, &v)| (k.as_str(), v))
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in &self.counters {
            writeln!(f, "{k}: {v}")?;
        }
        for (k, r) in &self.latencies {
            let mut r = r.clone();
            if let (Some(p50), Some(p99)) = (r.p50(), r.p99()) {
                writeln!(f, "{k}: n={} p50={p50} p99={p99}", r.len())?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("rpc");
        m.add("rpc", 2);
        assert_eq!(m.counter("rpc"), 3);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn quantiles_nearest_rank() {
        let mut r = LatencyRecorder::new();
        for us in [10u64, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            r.record(SimDuration::from_micros(us));
        }
        assert_eq!(r.p50(), Some(SimDuration::from_micros(50)));
        assert_eq!(r.quantile(1.0), Some(SimDuration::from_micros(100)));
        assert_eq!(r.quantile(0.0), Some(SimDuration::from_micros(10)));
        assert_eq!(r.min(), Some(SimDuration::from_micros(10)));
        assert_eq!(r.max(), Some(SimDuration::from_micros(100)));
    }

    #[test]
    fn empty_recorder_returns_none() {
        let mut r = LatencyRecorder::new();
        assert!(r.p50().is_none());
        assert!(r.mean().is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn mean_is_exact_for_uniform() {
        let mut r = LatencyRecorder::new();
        r.record(SimDuration::from_micros(10));
        r.record(SimDuration::from_micros(30));
        assert_eq!(r.mean(), Some(SimDuration::from_micros(20)));
    }

    #[test]
    fn observe_routes_to_named_recorder() {
        let mut m = Metrics::new();
        m.observe("fetch", SimDuration::from_micros(7));
        assert_eq!(m.latency("fetch").unwrap().len(), 1);
        assert!(m.latency("other").is_none());
        assert_eq!(
            m.latency_mut("fetch").p50(),
            Some(SimDuration::from_micros(7))
        );
    }

    #[test]
    fn display_lists_everything() {
        let mut m = Metrics::new();
        m.incr("x");
        m.observe("l", SimDuration::from_micros(5));
        let s = m.to_string();
        assert!(s.contains("x: 1"));
        assert!(s.contains("l: n=1"));
    }
}
