//! Fault plans: scripted failures and repairs.
//!
//! A [`FaultPlan`] is a time-ordered script of [`FaultAction`]s (crashes,
//! restarts, link changes, partitions, heals). Plans are data, so an
//! experiment is fully described by `(seed, workload, plan)` and can be
//! replayed exactly.

use crate::link::LinkState;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};
use crate::topology::PartitionGroup;

/// A single state change applied to the topology at a scheduled time.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultAction {
    /// Crash a node.
    Crash(NodeId),
    /// Restart a crashed node.
    Restart(NodeId),
    /// Override the state of one link.
    SetLink(NodeId, NodeId, LinkState),
    /// Impose a two-sided partition isolating `side` from everyone else.
    Partition(Vec<NodeId>),
    /// Remove all partition groups.
    HealPartition,
    /// Assign one node to a partition group (or back to the default).
    SetGroup(NodeId, Option<PartitionGroup>),
}

/// A time-ordered script of fault actions.
///
/// ```
/// use weakset_sim::prelude::*;
/// let laptop = NodeId(0);
/// let server = NodeId(1);
/// let plan = FaultPlan::none()
///     .outage(SimTime::from_millis(10), server, SimDuration::from_millis(5))
///     .partition_window(SimTime::from_millis(40), &[laptop], SimDuration::from_millis(20))
///     .flap_link(SimTime::from_millis(100), laptop, server,
///                SimDuration::from_millis(2), SimDuration::from_millis(8), 3);
/// assert_eq!(plan.len(), 2 + 2 + 6);
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    actions: Vec<(SimTime, FaultAction)>,
}

impl FaultPlan {
    /// An empty plan (fault-free run).
    pub fn none() -> Self {
        Self::default()
    }

    /// Adds an arbitrary action at an absolute time.
    pub fn at(mut self, t: SimTime, action: FaultAction) -> Self {
        self.actions.push((t, action));
        self
    }

    /// Crashes `node` at time `t`.
    pub fn crash_at(self, t: SimTime, node: NodeId) -> Self {
        self.at(t, FaultAction::Crash(node))
    }

    /// Restarts `node` at time `t`.
    pub fn restart_at(self, t: SimTime, node: NodeId) -> Self {
        self.at(t, FaultAction::Restart(node))
    }

    /// Crashes `node` at `t` and restarts it `downtime` later.
    pub fn outage(self, t: SimTime, node: NodeId, downtime: SimDuration) -> Self {
        self.crash_at(t, node).restart_at(t + downtime, node)
    }

    /// Partitions `side` away from the rest at `t`.
    pub fn partition_at(self, t: SimTime, side: &[NodeId]) -> Self {
        self.at(t, FaultAction::Partition(side.to_vec()))
    }

    /// Heals all partitions at `t`.
    pub fn heal_at(self, t: SimTime) -> Self {
        self.at(t, FaultAction::HealPartition)
    }

    /// Partitions `side` at `t` and heals `duration` later.
    pub fn partition_window(self, t: SimTime, side: &[NodeId], duration: SimDuration) -> Self {
        self.partition_at(t, side).heal_at(t + duration)
    }

    /// Takes the link between `a` and `b` down at `t`.
    pub fn link_down_at(self, t: SimTime, a: NodeId, b: NodeId) -> Self {
        self.at(t, FaultAction::SetLink(a, b, LinkState::down()))
    }

    /// Brings the link between `a` and `b` back up at `t`.
    pub fn link_up_at(self, t: SimTime, a: NodeId, b: NodeId) -> Self {
        self.at(t, FaultAction::SetLink(a, b, LinkState::healthy()))
    }

    /// Repeatedly takes a link down for `down` then up for `up`, starting at
    /// `start`, for `cycles` cycles ("flapping" link).
    pub fn flap_link(
        mut self,
        start: SimTime,
        a: NodeId,
        b: NodeId,
        down: SimDuration,
        up: SimDuration,
        cycles: usize,
    ) -> Self {
        let mut t = start;
        for _ in 0..cycles {
            self = self.link_down_at(t, a, b);
            t += down;
            self = self.link_up_at(t, a, b);
            t += up;
        }
        self
    }

    /// The scheduled actions in insertion order (the event queue orders them
    /// by time when the plan is installed).
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// Number of scheduled actions.
    pub fn len(&self) -> usize {
        self.actions.len()
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty()
    }

    /// Merges another plan's actions into this one.
    pub fn merge(mut self, other: FaultPlan) -> Self {
        self.actions.extend(other.actions);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_actions() {
        let plan = FaultPlan::none()
            .crash_at(SimTime::from_millis(5), NodeId(1))
            .restart_at(SimTime::from_millis(9), NodeId(1));
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.actions()[0],
            (SimTime::from_millis(5), FaultAction::Crash(NodeId(1)))
        );
    }

    #[test]
    fn outage_is_crash_plus_restart() {
        let plan = FaultPlan::none().outage(
            SimTime::from_millis(10),
            NodeId(0),
            SimDuration::from_millis(4),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.actions()[1],
            (SimTime::from_millis(14), FaultAction::Restart(NodeId(0)))
        );
    }

    #[test]
    fn partition_window_heals() {
        let plan = FaultPlan::none().partition_window(
            SimTime::from_millis(2),
            &[NodeId(3)],
            SimDuration::from_millis(6),
        );
        assert_eq!(plan.len(), 2);
        assert_eq!(
            plan.actions()[1],
            (SimTime::from_millis(8), FaultAction::HealPartition)
        );
    }

    #[test]
    fn flap_link_alternates() {
        let plan = FaultPlan::none().flap_link(
            SimTime::ZERO,
            NodeId(0),
            NodeId(1),
            SimDuration::from_millis(1),
            SimDuration::from_millis(2),
            2,
        );
        assert_eq!(plan.len(), 4);
        let times: Vec<u64> = plan.actions().iter().map(|(t, _)| t.as_millis()).collect();
        assert_eq!(times, vec![0, 1, 3, 4]);
    }

    #[test]
    fn merge_concatenates() {
        let a = FaultPlan::none().heal_at(SimTime::from_millis(1));
        let b = FaultPlan::none().heal_at(SimTime::from_millis(2));
        let m = a.merge(b);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
        assert!(FaultPlan::none().is_empty());
    }
}
