//! Simulated nodes (workstations/servers) and their lifecycle.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a node in the simulated system.
///
/// Node ids are dense indices assigned by [`crate::topology::Topology`] in
/// creation order, which keeps per-node tables cheap.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The raw index of this node.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Whether a node is currently able to send, receive, and serve requests.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeStatus {
    /// The node is running normally.
    Up,
    /// The node has crashed: it drops all traffic until restarted.
    Crashed,
}

/// A simulated node: a name, a status, and a coarse "site" coordinate used
/// by distance-based latency models ("fetch closer files first").
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Node {
    id: NodeId,
    name: String,
    status: NodeStatus,
    site: u32,
}

impl Node {
    pub(crate) fn new(id: NodeId, name: impl Into<String>, site: u32) -> Self {
        Node {
            id,
            name: name.into(),
            status: NodeStatus::Up,
            site,
        }
    }

    /// This node's id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// Human-readable name, e.g. `"server-pittsburgh"`.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Current lifecycle status.
    pub fn status(&self) -> NodeStatus {
        self.status
    }

    /// True when the node can participate in communication.
    pub fn is_up(&self) -> bool {
        self.status == NodeStatus::Up
    }

    /// Coarse location used by distance-based latency models. Nodes with the
    /// same site are "near" each other.
    pub fn site(&self) -> u32 {
        self.site
    }

    pub(crate) fn set_status(&mut self, status: NodeStatus) {
        self.status = status;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_node_is_up() {
        let n = Node::new(NodeId(3), "srv", 1);
        assert!(n.is_up());
        assert_eq!(n.status(), NodeStatus::Up);
        assert_eq!(n.id(), NodeId(3));
        assert_eq!(n.name(), "srv");
        assert_eq!(n.site(), 1);
    }

    #[test]
    fn crash_and_restart_cycle() {
        let mut n = Node::new(NodeId(0), "a", 0);
        n.set_status(NodeStatus::Crashed);
        assert!(!n.is_up());
        n.set_status(NodeStatus::Up);
        assert!(n.is_up());
    }

    #[test]
    fn node_id_formats_compactly() {
        assert_eq!(NodeId(7).to_string(), "n7");
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(NodeId(7).index(), 7);
    }
}
