//! Deterministic, splittable random-number streams.
//!
//! Every source of randomness in the simulator is derived from a single run
//! seed, so a run is exactly reproducible from `(seed, workload, fault plan)`.
//! Independent subsystems (latency sampling, drop sampling, workload
//! generation, ...) get *labelled* substreams so that adding a new consumer
//! of randomness does not perturb existing streams.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha12Rng;

/// A deterministic RNG stream derived from a run seed and a label.
///
/// ```
/// use weakset_sim::rng::SimRng;
/// use rand::RngCore;
/// let mut a = SimRng::for_label(42, "latency");
/// let mut b = SimRng::for_label(42, "latency");
/// assert_eq!(a.next_u64(), b.next_u64());
/// let mut c = SimRng::for_label(42, "drops");
/// assert_ne!(SimRng::for_label(42, "latency").next_u64(), c.next_u64());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: ChaCha12Rng,
}

impl SimRng {
    /// Creates the root stream for a run seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: ChaCha12Rng::seed_from_u64(seed),
        }
    }

    /// Creates an independent stream for `(seed, label)`.
    ///
    /// Streams with different labels are statistically independent; the same
    /// `(seed, label)` pair always yields the same stream.
    pub fn for_label(seed: u64, label: &str) -> Self {
        let mut key = [0u8; 32];
        let seed_bytes = seed.to_le_bytes();
        key[..8].copy_from_slice(&seed_bytes);
        // Fold the label into the remaining key bytes with an FNV-1a walk;
        // this only needs to separate streams, not be cryptographic.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in label.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        key[8..16].copy_from_slice(&h.to_le_bytes());
        let mut h2 = h;
        for &b in label.as_bytes().iter().rev() {
            h2 ^= (b as u64) << 1;
            h2 = h2.wrapping_mul(0x1000_0000_01b3);
        }
        key[16..24].copy_from_slice(&h2.to_le_bytes());
        key[24..32].copy_from_slice(&seed_bytes);
        SimRng {
            inner: ChaCha12Rng::from_seed(key),
        }
    }

    /// Splits off an independent child stream.
    ///
    /// The parent stream advances by one draw; the child is seeded from that
    /// draw, so repeated splits are themselves deterministic.
    pub fn split(&mut self) -> SimRng {
        let s = self.inner.next_u64();
        SimRng::new(s)
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit_f64() < p
        }
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range [{lo}, {hi})");
        self.inner.gen_range(lo..hi)
    }

    /// Uniformly selects an index into a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len == 0`.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot index an empty slice");
        self.inner.gen_range(0..len)
    }

    /// Exponentially-distributed draw with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.unit_f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Deterministic Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            xs.swap(i, j);
        }
    }
}

impl RngCore for SimRng {
    fn next_u32(&mut self) -> u32 {
        self.inner.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        self.inner.fill_bytes(dest)
    }
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.inner.try_fill_bytes(dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn labels_separate_streams() {
        let mut a = SimRng::for_label(7, "a");
        let mut b = SimRng::for_label(7, "b");
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn seeds_separate_streams() {
        let mut a = SimRng::for_label(1, "x");
        let mut b = SimRng::for_label(2, "x");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn split_is_deterministic() {
        let mut a = SimRng::new(9);
        let mut b = SimRng::new(9);
        let mut ca = a.split();
        let mut cb = b.split();
        assert_eq!(ca.next_u64(), cb.next_u64());
        // And parents stay in lockstep after splitting.
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_rate_roughly_matches() {
        let mut r = SimRng::new(5);
        let hits = (0..10_000).filter(|_| r.chance(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn range_is_bounded() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let v = r.range_u64(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn range_rejects_empty() {
        SimRng::new(0).range_u64(5, 5);
    }

    #[test]
    fn exponential_mean_roughly_matches() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let total: f64 = (0..n).map(|_| r.exponential(4.0)).sum();
        let mean = total / n as f64;
        assert!((3.8..4.2).contains(&mean), "mean = {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(17);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        // And not the identity for this seed (overwhelmingly likely).
        assert_ne!(xs, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn index_covers_all_slots() {
        let mut r = SimRng::new(19);
        let mut seen = [false; 5];
        for _ in 0..200 {
            seen[r.index(5)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
