//! The simulation world: clock, event queue, network, services, and the
//! synchronous RPC primitive.
//!
//! # Execution model
//!
//! The paper models each procedure/iterator invocation as *atomic* from the
//! caller's point of view, while other processes (mutators) and failures
//! interleave *between* invocations and while messages are in flight. The
//! world realizes this with a single-threaded discrete-event loop:
//!
//! * Client code runs synchronously and calls [`World::rpc`], which pumps
//!   the event queue until the reply arrives or the timeout expires. While
//!   pumping, *other* scheduled work (background mutators installed with
//!   [`World::spawn_at`], fault-plan actions) fires in timestamp order, so
//!   concurrency and failures genuinely interleave with the client's RPCs.
//! * Servers are [`Service`] implementations installed per node; handlers
//!   run at message-delivery time and are local (no nested RPC from a
//!   handler — multi-node operations are orchestrated by clients, as in the
//!   paper's client/server RPC model).
//! * Determinism: all randomness comes from labelled [`SimRng`] streams
//!   derived from the run seed, and event ties break by insertion order.

use crate::event::{run_task, EventKind, EventQueue};
use crate::fault::{FaultAction, FaultPlan};
use crate::latency::LatencyModel;
use crate::metrics::{EventSink, Metrics, SpanId, TraceContext};
use crate::net::{BatchEnvelope, NetError};
use crate::node::NodeId;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};
use crate::topology::Topology;
use crate::trace::{Trace, TraceEvent};
use std::any::Any;
use std::collections::HashMap;

/// Correlates a reply with the RPC that is waiting for it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ReplyToken(u64);

impl ReplyToken {
    /// Builds a token from a raw id. Alternative runtime backends (see
    /// `weakset-runtime`) mint their own tokens with this.
    pub const fn from_raw(raw: u64) -> Self {
        ReplyToken(raw)
    }

    /// The raw id behind this token.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

/// A message handler installed on a node.
///
/// Handlers are local: they mutate their own state and return a reply. They
/// must also be [`Any`] so tests and workloads can downcast a node's service
/// to its concrete type via [`World::service`].
pub trait Service<M>: Any {
    /// Handles one request from `from`, producing the reply.
    fn handle(&mut self, ctx: &mut ServiceCtx<'_>, from: NodeId, msg: M) -> M;
}

/// Context passed to a [`Service`] handler.
#[derive(Debug)]
pub struct ServiceCtx<'a> {
    /// Current simulated time.
    pub now: SimTime,
    /// The node this service runs on.
    pub node: NodeId,
    /// Deterministic randomness for the handler.
    pub rng: &'a mut SimRng,
}

/// A unit of scheduled work that runs against the world (e.g. a background
/// mutator or a concurrent client operation).
///
/// Tasks receive `&mut World` and may themselves call [`World::rpc`]; the
/// event loop is re-entrant, so nested pumping preserves global time order.
pub trait Task<M> {
    /// Label recorded in the trace when the task fires.
    fn label(&self) -> &str {
        "task"
    }
    /// Runs the task.
    fn run(self: Box<Self>, world: &mut World<M>);
}

impl<M, F> Task<M> for F
where
    F: FnOnce(&mut World<M>),
{
    fn run(self: Box<Self>, world: &mut World<M>) {
        (*self)(world)
    }
}

/// Tunables for a run.
#[derive(Clone, Debug)]
pub struct WorldConfig {
    /// Seed from which every random stream is derived.
    pub seed: u64,
    /// Default RPC timeout used by [`World::rpc_default`].
    pub default_timeout: SimDuration,
    /// When true, an RPC to a currently-unreachable node fails fast with
    /// [`NetError::Unreachable`] after `detect_delay` (the paper assumes
    /// failures are detectable from lower layers). When false, such RPCs
    /// burn the full timeout.
    pub fast_fail: bool,
    /// How long failure detection takes when `fast_fail` is on.
    pub detect_delay: SimDuration,
    /// Whether to keep a full event trace.
    pub trace: bool,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            default_timeout: SimDuration::from_millis(100),
            fast_fail: true,
            detect_delay: SimDuration::from_millis(2),
            trace: true,
        }
    }
}

impl WorldConfig {
    /// A default config with the given seed.
    pub fn seeded(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..Default::default()
        }
    }
}

/// The simulation world. Generic over the message type `M` exchanged between
/// clients and services.
pub struct World<M> {
    now: SimTime,
    queue: EventQueue<M>,
    topology: Topology,
    services: HashMap<NodeId, Box<dyn Service<M>>>,
    completed: HashMap<ReplyToken, Result<M, NetError>>,
    next_token: u64,
    latency: LatencyModel,
    lat_rng: SimRng,
    drop_rng: SimRng,
    svc_rng: SimRng,
    config: WorldConfig,
    trace: Trace,
    metrics: Metrics,
    events: EventSink,
    /// Stack of open causal spans for the code currently running; the
    /// top is the context new spans and outgoing messages inherit.
    /// Swapped out while dispatched work (tasks, service handlers)
    /// runs, so background work never parents under the pumping RPC.
    ctx: Vec<TraceContext>,
    /// Link throughput in bytes per millisecond; `None` = infinite.
    bandwidth_bytes_per_ms: Option<u64>,
    /// Measures a message's wire size for transfer-time charging.
    #[allow(clippy::type_complexity)]
    sizer: Option<Box<dyn Fn(&M) -> usize>>,
}

impl<M: Clone + std::fmt::Debug + 'static> World<M> {
    /// Creates a world over a topology with the given latency model.
    pub fn new(config: WorldConfig, topology: Topology, latency: LatencyModel) -> Self {
        let trace = if config.trace {
            Trace::new()
        } else {
            Trace::disabled()
        };
        World {
            now: SimTime::ZERO,
            queue: EventQueue::default(),
            topology,
            services: HashMap::new(),
            completed: HashMap::new(),
            next_token: 0,
            latency,
            lat_rng: SimRng::for_label(config.seed, "latency"),
            drop_rng: SimRng::for_label(config.seed, "drops"),
            svc_rng: SimRng::for_label(config.seed, "service"),
            config,
            trace,
            metrics: Metrics::new(),
            events: EventSink::new(),
            ctx: Vec::new(),
            bandwidth_bytes_per_ms: None,
            sizer: None,
        }
    }

    /// Models finite link throughput: every message is charged an extra
    /// `size / bytes_per_ms` of one-way delay, where `size` comes from
    /// `sizer`. Links have infinite capacity (no queueing between
    /// concurrent transfers); the charge is pure serialization delay, so
    /// big payloads cost more than small ones — the paper's file fetches.
    pub fn set_bandwidth(&mut self, bytes_per_ms: u64, sizer: impl Fn(&M) -> usize + 'static) {
        assert!(bytes_per_ms > 0, "bandwidth must be positive");
        self.bandwidth_bytes_per_ms = Some(bytes_per_ms);
        self.sizer = Some(Box::new(sizer));
    }

    fn transfer_delay(&self, msg: &M) -> SimDuration {
        match (self.bandwidth_bytes_per_ms, &self.sizer) {
            (Some(bpm), Some(sizer)) => {
                let bytes = sizer(msg) as u64;
                SimDuration::from_micros(bytes.saturating_mul(1000) / bpm)
            }
            _ => SimDuration::ZERO,
        }
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Read access to the network graph.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Mutable access to the network graph (tests and fault injection).
    pub fn topology_mut(&mut self) -> &mut Topology {
        &mut self.topology
    }

    /// The run configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// Run metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable run metrics (for client-side instrumentation).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// The structured event sink. Disabled by default; enable with
    /// [`World::events_mut`] + [`EventSink::set_enabled`] to record
    /// fault transitions and task runs keyed by sim time.
    pub fn events(&self) -> &EventSink {
        &self.events
    }

    /// Mutable access to the event sink (enable/disable, client spans).
    pub fn events_mut(&mut self) -> &mut EventSink {
        &mut self.events
    }

    /// Opens a causal span under the current context (or as a fresh
    /// trace root when none is open) and makes it the current context.
    /// `detail` is built lazily so a disabled sink pays no allocation.
    /// Pair with [`World::span_exit`].
    pub fn span_enter(&mut self, kind: &str, detail: impl FnOnce() -> String) -> SpanId {
        let parent = self.ctx.last().copied();
        self.span_enter_under(parent, kind, detail)
    }

    /// Opens a causal span under an explicit parent context (e.g. an
    /// iterator's stored trace root) and makes it the current context.
    pub fn span_enter_under(
        &mut self,
        parent: Option<TraceContext>,
        kind: &str,
        detail: impl FnOnce() -> String,
    ) -> SpanId {
        let at = self.now.as_micros();
        let d = if self.events.is_enabled() {
            detail()
        } else {
            String::new()
        };
        let ctx = self.events.begin_span(at, kind, &d, parent);
        self.ctx.push(ctx);
        ctx.span
    }

    /// Closes a span opened with [`World::span_enter`] /
    /// [`World::span_enter_under`] and pops it off the context stack.
    /// Spans must close in LIFO order.
    pub fn span_exit(&mut self, id: SpanId) {
        let top = self.ctx.pop();
        debug_assert_eq!(top.map(|c| c.span), Some(id), "span_exit out of LIFO order");
        self.events.end_span(self.now.as_micros(), id);
    }

    /// The current causal context: the innermost open span, which
    /// outgoing messages and child spans inherit.
    pub fn current_ctx(&self) -> Option<TraceContext> {
        self.ctx.last().copied()
    }

    /// Records a point event attributed to the current causal context.
    /// No-op (and no allocation) when the sink is disabled.
    pub fn trace_event(&mut self, kind: &str, detail: impl FnOnce() -> String) {
        if self.events.is_enabled() {
            let d = detail();
            let ctx = self.current_ctx();
            self.events.event_in(self.now.as_micros(), kind, &d, ctx);
        }
    }

    /// A fresh deterministic RNG stream labelled for a consumer (workload
    /// generation, client decisions, ...). Same `(seed, label)` ⇒ same
    /// stream.
    pub fn rng_for(&self, label: &str) -> SimRng {
        SimRng::for_label(self.config.seed, label)
    }

    /// The latency model in force.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Deterministic latency estimate from `a` to `b` (for closest-first
    /// scheduling).
    pub fn estimate_latency(&self, a: NodeId, b: NodeId) -> SimDuration {
        self.latency
            .estimate(self.topology.node(a), self.topology.node(b))
    }

    /// Installs (or replaces) the service on a node.
    pub fn install_service(&mut self, node: NodeId, svc: Box<dyn Service<M>>) {
        self.services.insert(node, svc);
    }

    /// Downcasts the service on `node` to a concrete type.
    pub fn service<T: 'static>(&self, node: NodeId) -> Option<&T> {
        self.services
            .get(&node)
            .and_then(|s| (s.as_ref() as &dyn Any).downcast_ref::<T>())
    }

    /// Mutable downcast of the service on `node`.
    pub fn service_mut<T: 'static>(&mut self, node: NodeId) -> Option<&mut T> {
        self.services
            .get_mut(&node)
            .and_then(|s| (s.as_mut() as &mut dyn Any).downcast_mut::<T>())
    }

    /// Borrows the service on `node` untyped, for runtime-agnostic
    /// inspection (the `weakset-runtime` trait boundary downcasts it).
    pub fn service_dyn(&self, node: NodeId) -> Option<&dyn Any> {
        self.services.get(&node).map(|s| s.as_ref() as &dyn Any)
    }

    /// Mutable untyped borrow of the service on `node`.
    pub fn service_dyn_mut(&mut self, node: NodeId) -> Option<&mut dyn Any> {
        self.services
            .get_mut(&node)
            .map(|s| s.as_mut() as &mut dyn Any)
    }

    /// Schedules a task at an absolute time.
    pub fn spawn_at(&mut self, t: SimTime, task: impl Task<M> + 'static) {
        let at = if t < self.now { self.now } else { t };
        self.queue.push(at, EventKind::Task(Box::new(task)));
    }

    /// Schedules a task `d` from now.
    pub fn spawn_in(&mut self, d: SimDuration, task: impl Task<M> + 'static) {
        self.spawn_at(self.now + d, task);
    }

    /// Schedules one fault action.
    pub fn schedule_fault(&mut self, t: SimTime, action: FaultAction) {
        let at = if t < self.now { self.now } else { t };
        self.queue.push(at, EventKind::Fault(action));
    }

    /// Installs every action of a fault plan.
    pub fn install_plan(&mut self, plan: &FaultPlan) {
        for (t, a) in plan.actions() {
            self.schedule_fault(*t, a.clone());
        }
    }

    /// Adds a note to the trace at the current time.
    pub fn note(&mut self, msg: impl Into<String>) {
        self.trace.record(self.now, TraceEvent::Note(msg.into()));
    }

    /// The determinism fingerprint of everything recorded so far: a stable
    /// digest of the trace (see [`Trace::hash`]). Two runs of the same
    /// `(seed, workload, fault plan)` must report equal fingerprints;
    /// `weakset-dst` fails a run whose replay diverges.
    pub fn trace_hash(&self) -> u64 {
        self.trace.hash()
    }

    /// Advances simulated time to `deadline`, firing every event scheduled
    /// before or at it.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let ev = self.queue.pop().expect("peeked event vanished");
                    self.now = t;
                    self.dispatch(ev.kind);
                }
                _ => break,
            }
        }
        if self.now < deadline {
            self.now = deadline;
        }
    }

    /// Sleeps the calling client for `d`, letting background work fire.
    pub fn sleep(&mut self, d: SimDuration) {
        let deadline = self.now + d;
        self.run_until(deadline);
    }

    /// Fires every remaining event.
    pub fn run_to_quiescence(&mut self) {
        while let Some(ev) = self.queue.pop() {
            self.now = ev.at;
            self.dispatch(ev.kind);
        }
    }

    /// Number of pending events.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Performs a synchronous RPC from `from` to `to` with the default
    /// timeout. See [`World::rpc`].
    ///
    /// # Errors
    ///
    /// Fails with [`NetError`] exactly when [`World::rpc`] does.
    pub fn rpc_default(&mut self, from: NodeId, to: NodeId, msg: M) -> Result<M, NetError> {
        self.rpc(from, to, msg, self.config.default_timeout)
    }

    /// Performs a synchronous RPC: sends `msg` from node `from` to the
    /// service on node `to`, pumps the event loop, and returns the reply.
    ///
    /// Simulated time advances while waiting; background tasks and fault
    /// actions scheduled in the meantime fire in order, so the world can
    /// change under the caller exactly as the paper's model allows.
    ///
    /// # Errors
    ///
    /// * [`NetError::NodeDown`] — the *calling* node is crashed.
    /// * [`NetError::Unreachable`] — fast failure detection reported no
    ///   route (only when [`WorldConfig::fast_fail`] is set).
    /// * [`NetError::Timeout`] — no reply within `timeout` (message lost,
    ///   server crashed/partitioned mid-flight, or no service installed).
    pub fn rpc(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError> {
        let span = self.span_enter("net.rpc", || format!("{from}->{to}"));
        let result = self.rpc_inner(from, to, msg, timeout);
        if let Err(e) = &result {
            let err = *e;
            self.trace_event("net.rpc.failed", || format!("{from}->{to}: {err}"));
        }
        self.span_exit(span);
        result
    }

    fn rpc_inner(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: M,
        timeout: SimDuration,
    ) -> Result<M, NetError> {
        if !self.topology.is_up(from) {
            return Err(NetError::NodeDown(from));
        }
        self.trace
            .record(self.now, TraceEvent::RpcSend { from, to });
        self.metrics.incr("rpc.sent");
        let started = self.now;
        let deadline = self.now + timeout;

        if self.config.fast_fail && !self.topology.reachable(from, to) {
            let detect_at = (self.now + self.config.detect_delay).min(deadline);
            self.run_until(detect_at);
            let err = if self.topology.is_up(to) {
                NetError::Unreachable { from, to }
            } else {
                NetError::NodeDown(to)
            };
            self.trace.record(
                self.now,
                TraceEvent::RpcFailed {
                    from,
                    to,
                    error: err,
                },
            );
            self.metrics.incr("rpc.failed");
            return Err(err);
        }

        let token = ReplyToken(self.next_token);
        self.next_token += 1;

        let drop_p = self.topology.link(from, to).drop_prob;
        if self.drop_rng.chance(drop_p) {
            self.trace
                .record(self.now, TraceEvent::MessageLost { from, to });
            self.metrics.incr("msg.dropped");
            self.trace_event("net.msg.lost", || format!("{from}->{to}"));
        } else {
            let lat = self.latency.sample(
                self.topology.node(from),
                self.topology.node(to),
                &mut self.lat_rng,
            ) + self.transfer_delay(&msg);
            let ctx = self.current_ctx();
            self.queue.push(
                self.now + lat,
                EventKind::Deliver {
                    from,
                    to,
                    msg,
                    token,
                    ctx,
                },
            );
        }

        loop {
            if let Some(result) = self.completed.remove(&token) {
                match &result {
                    Ok(_) => {
                        self.trace.record(self.now, TraceEvent::RpcOk { from, to });
                        self.metrics.incr("rpc.ok");
                        self.metrics.observe(
                            "rpc.latency",
                            self.now.saturating_since(started).as_micros(),
                        );
                    }
                    Err(e) => {
                        self.trace.record(
                            self.now,
                            TraceEvent::RpcFailed {
                                from,
                                to,
                                error: *e,
                            },
                        );
                        self.metrics.incr("rpc.failed");
                    }
                }
                return result;
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let ev = self.queue.pop().expect("peeked event vanished");
                    self.now = t;
                    self.dispatch(ev.kind);
                }
                _ => {
                    self.now = deadline;
                    self.trace.record(
                        self.now,
                        TraceEvent::RpcFailed {
                            from,
                            to,
                            error: NetError::Timeout,
                        },
                    );
                    self.metrics.incr("rpc.failed");
                    return Err(NetError::Timeout);
                }
            }
        }
    }

    /// Sends a request *asynchronously*: the message is launched and a
    /// token is returned immediately, without advancing time. Use
    /// [`World::try_take_reply`] or [`World::wait_any`] to collect the
    /// reply. Several requests can be in flight at once — this is how
    /// dynamic sets fetch member objects in parallel.
    ///
    /// Failure detection behaves as for [`World::rpc`]: with
    /// [`WorldConfig::fast_fail`], a request to an unreachable node
    /// completes with an error after `detect_delay`; otherwise it simply
    /// never completes and the caller's deadline applies.
    pub fn send(&mut self, from: NodeId, to: NodeId, msg: M) -> ReplyToken {
        let token = ReplyToken(self.next_token);
        self.next_token += 1;
        self.trace
            .record(self.now, TraceEvent::RpcSend { from, to });
        self.metrics.incr("rpc.sent");
        if !self.topology.is_up(from) {
            self.completed.insert(token, Err(NetError::NodeDown(from)));
            return token;
        }
        if self.config.fast_fail && !self.topology.reachable(from, to) {
            let err = if self.topology.is_up(to) {
                NetError::Unreachable { from, to }
            } else {
                NetError::NodeDown(to)
            };
            let ctx = self.current_ctx();
            self.queue.push(
                self.now + self.config.detect_delay,
                EventKind::CompleteError {
                    token,
                    error: err,
                    ctx,
                },
            );
            return token;
        }
        let drop_p = self.topology.link(from, to).drop_prob;
        if self.drop_rng.chance(drop_p) {
            self.trace
                .record(self.now, TraceEvent::MessageLost { from, to });
            self.metrics.incr("msg.dropped");
            self.trace_event("net.msg.lost", || format!("{from}->{to}"));
            return token; // never completes; caller's deadline applies
        }
        let lat = self.latency.sample(
            self.topology.node(from),
            self.topology.node(to),
            &mut self.lat_rng,
        ) + self.transfer_delay(&msg);
        let ctx = self.current_ctx();
        self.queue.push(
            self.now + lat,
            EventKind::Deliver {
                from,
                to,
                msg,
                token,
                ctx,
            },
        );
        token
    }

    /// Performs a synchronous *batched* RPC: the parts are wrapped into
    /// one [`BatchEnvelope`] that crosses the network as a single
    /// message — one latency sample, one transfer-delay charge — and the
    /// reply envelope is unwrapped back into per-part replies in request
    /// order. This is how a quorum round-trip carries reads for every
    /// key co-located on the destination shard group.
    ///
    /// # Errors
    ///
    /// Fails with [`NetError`] exactly when [`World::rpc`] does; a
    /// failure loses the whole envelope.
    pub fn rpc_batch(
        &mut self,
        from: NodeId,
        to: NodeId,
        parts: Vec<M>,
        timeout: SimDuration,
    ) -> Result<Vec<M>, NetError>
    where
        M: BatchEnvelope,
    {
        self.metrics.incr("net.batch.envelopes");
        self.metrics.add("net.batch.parts", parts.len() as u64);
        let reply = self.rpc(from, to, M::wrap_batch(parts), timeout)?;
        Ok(match reply.unwrap_batch() {
            Ok(replies) => replies,
            Err(single) => vec![single],
        })
    }

    /// Launches a batched request asynchronously (see [`World::send`]):
    /// the parts are wrapped into one envelope and a single token is
    /// returned. The reply (collected via [`World::try_take_reply`]) is
    /// an envelope; recover the per-part replies with
    /// [`BatchEnvelope::unwrap_batch`].
    pub fn send_batch(&mut self, from: NodeId, to: NodeId, parts: Vec<M>) -> ReplyToken
    where
        M: BatchEnvelope,
    {
        self.metrics.incr("net.batch.envelopes");
        self.metrics.add("net.batch.parts", parts.len() as u64);
        self.send(from, to, M::wrap_batch(parts))
    }

    /// Collects the reply for an asynchronously-sent request if it has
    /// already completed. Does not advance time.
    pub fn try_take_reply(&mut self, token: ReplyToken) -> Option<Result<M, NetError>> {
        self.completed.remove(&token)
    }

    /// Pumps the event loop until one of `tokens` completes or `deadline`
    /// passes. Returns the completed token (its reply is left for
    /// [`World::try_take_reply`]), or `None` on deadline.
    pub fn wait_any(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken> {
        loop {
            if let Some(&t) = tokens.iter().find(|t| self.completed.contains_key(t)) {
                return Some(t);
            }
            match self.queue.peek_time() {
                Some(t) if t <= deadline => {
                    let ev = self.queue.pop().expect("peeked event vanished");
                    self.now = t;
                    self.dispatch(ev.kind);
                }
                _ => {
                    if self.now < deadline {
                        self.now = deadline;
                    }
                    return None;
                }
            }
        }
    }

    fn dispatch(&mut self, kind: EventKind<M>) {
        self.metrics.incr("sim.dispatch.total");
        self.metrics
            .gauge_max("sim.queue.depth.max", self.queue.len() as u64);
        match kind {
            EventKind::CompleteError { token, error, ctx } => {
                self.metrics.incr("sim.dispatch.complete_error");
                if self.events.is_enabled() {
                    self.events.event_in(
                        self.now.as_micros(),
                        "net.send.failed",
                        &error.to_string(),
                        ctx,
                    );
                }
                self.completed.insert(token, Err(error));
                self.metrics.incr("rpc.failed");
            }
            EventKind::Deliver {
                from,
                to,
                msg,
                token,
                ctx,
            } => {
                self.metrics.incr("sim.dispatch.deliver");
                // Mid-flight state changes: the message dies if the route or
                // the server vanished while it travelled.
                if !self.topology.is_up(to) || !self.topology.reachable(from, to) {
                    self.trace
                        .record(self.now, TraceEvent::MessageLost { from, to });
                    self.metrics.incr("msg.dropped");
                    if self.events.is_enabled() {
                        self.events.event_in(
                            self.now.as_micros(),
                            "net.msg.lost",
                            &format!("{from}->{to}"),
                            ctx,
                        );
                    }
                    return;
                }
                let Some(mut svc) = self.services.remove(&to) else {
                    self.trace
                        .record(self.now, TraceEvent::MessageLost { from, to });
                    self.metrics.incr("msg.no_service");
                    return;
                };
                // Handlers run under the *message's* context, not
                // whatever span the pumping client has open.
                let saved = std::mem::take(&mut self.ctx);
                self.ctx.extend(ctx);
                let span = self.span_enter("svc.handle", || to.to_string());
                let reply = {
                    let mut ctx = ServiceCtx {
                        now: self.now,
                        node: to,
                        rng: &mut self.svc_rng,
                    };
                    svc.handle(&mut ctx, from, msg)
                };
                self.span_exit(span);
                self.ctx = saved;
                self.services.insert(to, svc);
                self.trace
                    .record(self.now, TraceEvent::RpcHandled { from, to });
                // Reply drop sampling uses the same link.
                let drop_p = self.topology.link(to, from).drop_prob;
                if self.drop_rng.chance(drop_p) {
                    self.trace
                        .record(self.now, TraceEvent::MessageLost { from: to, to: from });
                    self.metrics.incr("msg.dropped");
                    if self.events.is_enabled() {
                        self.events.event_in(
                            self.now.as_micros(),
                            "net.msg.lost",
                            &format!("{to}->{from}"),
                            ctx,
                        );
                    }
                    return;
                }
                let lat = self.latency.sample(
                    self.topology.node(to),
                    self.topology.node(from),
                    &mut self.lat_rng,
                ) + self.transfer_delay(&reply);
                self.queue.push(
                    self.now + lat,
                    EventKind::ReplyArrive {
                        from: to,
                        to: from,
                        msg: reply,
                        token,
                        ctx,
                    },
                );
            }
            EventKind::ReplyArrive {
                from,
                to,
                msg,
                token,
                ctx,
            } => {
                self.metrics.incr("sim.dispatch.reply");
                if !self.topology.is_up(to) || !self.topology.reachable(from, to) {
                    self.trace
                        .record(self.now, TraceEvent::MessageLost { from, to });
                    self.metrics.incr("msg.dropped");
                    if self.events.is_enabled() {
                        self.events.event_in(
                            self.now.as_micros(),
                            "net.msg.lost",
                            &format!("{from}->{to}"),
                            ctx,
                        );
                    }
                    return;
                }
                self.completed.insert(token, Ok(msg));
            }
            EventKind::Fault(action) => {
                self.metrics.incr("sim.dispatch.fault");
                self.apply_fault(action);
            }
            EventKind::Task(task) => {
                self.metrics.incr("sim.dispatch.task");
                let label = task.label().to_string();
                if self.events.is_enabled() {
                    self.events.event(self.now.as_micros(), "sim.task", &label);
                }
                self.trace.record(self.now, TraceEvent::TaskRan { label });
                // Background work roots its own traces: run it with an
                // empty context stack.
                let saved = std::mem::take(&mut self.ctx);
                run_task(task, self);
                self.ctx = saved;
            }
        }
    }

    fn apply_fault(&mut self, action: FaultAction) {
        let (kind, detail) = match &action {
            FaultAction::Crash(n) => ("sim.fault.crash", n.to_string()),
            FaultAction::Restart(n) => ("sim.fault.restart", n.to_string()),
            FaultAction::SetLink(a, b, state) => (
                "sim.fault.set_link",
                format!("{a}->{b} {}", if state.up { "up" } else { "down" }),
            ),
            FaultAction::Partition(side) => {
                // Name the isolated side so failure explanations can tie
                // an unreachable member back to this exact event.
                let nodes: Vec<String> = side.iter().map(|n| n.to_string()).collect();
                ("sim.fault.partition", format!("[{}]", nodes.join(",")))
            }
            FaultAction::HealPartition => ("sim.fault.heal_partition", String::new()),
            FaultAction::SetGroup(n, _) => ("sim.fault.set_group", n.to_string()),
        };
        self.metrics.incr(kind);
        if self.events.is_enabled() {
            self.events.event(self.now.as_micros(), kind, &detail);
        }
        match action {
            FaultAction::Crash(n) => {
                self.topology.crash(n);
                self.trace.record(self.now, TraceEvent::NodeCrashed(n));
            }
            FaultAction::Restart(n) => {
                self.topology.restart(n);
                self.trace.record(self.now, TraceEvent::NodeRestarted(n));
            }
            FaultAction::SetLink(a, b, s) => {
                self.topology.set_link(a, b, s);
                self.trace.record(self.now, TraceEvent::LinkChanged(a, b));
            }
            FaultAction::Partition(side) => {
                self.topology.partition(&side);
                self.trace
                    .record(self.now, TraceEvent::PartitionImposed(side));
            }
            FaultAction::HealPartition => {
                self.topology.heal_partition();
                self.trace.record(self.now, TraceEvent::PartitionHealed);
            }
            FaultAction::SetGroup(n, g) => {
                self.topology.set_group(n, g);
                self.trace.record(self.now, TraceEvent::GroupChanged(n));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::link::LinkState;

    /// A service that echoes the request plus one.
    struct PlusOne;
    impl Service<u64> for PlusOne {
        fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: u64) -> u64 {
            msg + 1
        }
    }

    /// A counting service for downcast tests.
    struct Counter {
        hits: u64,
    }
    impl Service<u64> for Counter {
        fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: u64) -> u64 {
            self.hits += 1;
            msg
        }
    }

    fn two_node_world() -> (World<u64>, NodeId, NodeId) {
        let mut t = Topology::new();
        let client = t.add_node("client", 0);
        let server = t.add_node("server", 1);
        let mut w = World::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        w.install_service(server, Box::new(PlusOne));
        (w, client, server)
    }

    #[test]
    fn rpc_round_trips_and_advances_time() {
        let (mut w, c, s) = two_node_world();
        let r = w.rpc_default(c, s, 41);
        assert_eq!(r, Ok(42));
        // One-way 5ms, round trip 10ms.
        assert_eq!(w.now(), SimTime::from_millis(10));
        assert_eq!(w.metrics().counter("rpc.ok"), 1);
    }

    #[test]
    fn rpc_to_crashed_server_fails() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().crash(s);
        let r = w.rpc_default(c, s, 1);
        assert_eq!(r, Err(NetError::NodeDown(s)));
    }

    #[test]
    fn rpc_from_crashed_client_fails_locally() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().crash(c);
        assert_eq!(w.rpc_default(c, s, 1), Err(NetError::NodeDown(c)));
    }

    #[test]
    fn partition_gives_unreachable_with_fast_fail() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().partition(&[s]);
        let r = w.rpc_default(c, s, 1);
        assert_eq!(r, Err(NetError::Unreachable { from: c, to: s }));
        // Detection took detect_delay, not the whole timeout.
        assert_eq!(w.now(), SimTime::from_millis(2));
    }

    #[test]
    fn partition_times_out_without_fast_fail() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s = t.add_node("s", 1);
        t.partition(&[s]);
        let mut cfg = WorldConfig::seeded(1);
        cfg.fast_fail = false;
        let mut w: World<u64> =
            World::new(cfg, t, LatencyModel::Constant(SimDuration::from_millis(5)));
        w.install_service(s, Box::new(PlusOne));
        let r = w.rpc(c, s, 1, SimDuration::from_millis(50));
        assert_eq!(r, Err(NetError::Timeout));
        assert_eq!(w.now(), SimTime::from_millis(50));
    }

    #[test]
    fn missing_service_times_out() {
        let (mut w, c, _s) = two_node_world();
        let extra = w.topology_mut().add_node("empty", 2);
        let r = w.rpc(c, extra, 7, SimDuration::from_millis(20));
        assert_eq!(r, Err(NetError::Timeout));
    }

    #[test]
    fn lossy_link_eventually_times_out() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s = t.add_node("s", 1);
        t.set_link(c, s, LinkState::lossy(1.0));
        let mut w: World<u64> = World::new(
            WorldConfig::seeded(3),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(s, Box::new(PlusOne));
        assert_eq!(
            w.rpc(c, s, 1, SimDuration::from_millis(10)),
            Err(NetError::Timeout)
        );
        assert!(w.metrics().counter("msg.dropped") >= 1);
    }

    #[test]
    fn mid_flight_crash_loses_message() {
        let (mut w, c, s) = two_node_world();
        // Crash the server 1ms after the request leaves; delivery needs 5ms.
        w.schedule_fault(SimTime::from_millis(1), FaultAction::Crash(s));
        let r = w.rpc(c, s, 1, SimDuration::from_millis(30));
        // fast_fail doesn't trigger: the server was up at send time.
        assert_eq!(r, Err(NetError::Timeout));
        assert_eq!(
            w.trace()
                .count(|e| matches!(e, TraceEvent::MessageLost { .. })),
            1
        );
    }

    #[test]
    fn background_task_fires_during_rpc() {
        let (mut w, c, s) = two_node_world();
        w.spawn_at(SimTime::from_millis(3), |w: &mut World<u64>| {
            w.note("mutation happened");
        });
        let r = w.rpc_default(c, s, 1);
        assert_eq!(r, Ok(2));
        assert_eq!(
            w.trace()
                .count(|e| matches!(e, TraceEvent::Note(n) if n == "mutation happened")),
            1
        );
    }

    #[test]
    fn nested_rpc_from_task_works() {
        let (mut w, c, s) = two_node_world();
        // A concurrent client task performing its own RPC mid-way through
        // the main client's RPC.
        w.spawn_at(SimTime::from_millis(2), move |w: &mut World<u64>| {
            let r = w.rpc_default(c, s, 100);
            assert_eq!(r, Ok(101));
        });
        let r = w.rpc(c, s, 1, SimDuration::from_millis(200));
        assert_eq!(r, Ok(2));
    }

    #[test]
    fn sleep_advances_time_and_fires_events() {
        let (mut w, _c, s) = two_node_world();
        w.schedule_fault(SimTime::from_millis(4), FaultAction::Crash(s));
        w.sleep(SimDuration::from_millis(10));
        assert_eq!(w.now(), SimTime::from_millis(10));
        assert!(!w.topology().is_up(s));
    }

    #[test]
    fn service_downcast_sees_state() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s = t.add_node("s", 1);
        let mut w: World<u64> = World::new(
            WorldConfig::seeded(5),
            t,
            LatencyModel::Constant(SimDuration::from_millis(1)),
        );
        w.install_service(s, Box::new(Counter { hits: 0 }));
        w.rpc_default(c, s, 9).unwrap();
        w.rpc_default(c, s, 9).unwrap();
        assert_eq!(w.service::<Counter>(s).unwrap().hits, 2);
        w.service_mut::<Counter>(s).unwrap().hits = 0;
        assert_eq!(w.service::<Counter>(s).unwrap().hits, 0);
        assert!(w.service::<PlusOne>(s).is_none());
    }

    #[test]
    fn same_seed_same_run() {
        fn run(seed: u64) -> (u64, Vec<u64>) {
            let mut t = Topology::new();
            let c = t.add_node("c", 0);
            let servers: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("s{i}"), i + 1)).collect();
            let mut w: World<u64> = World::new(
                WorldConfig::seeded(seed),
                t,
                LatencyModel::Uniform {
                    lo: SimDuration::from_millis(1),
                    hi: SimDuration::from_millis(20),
                },
            );
            for &s in &servers {
                w.install_service(s, Box::new(PlusOne));
            }
            let mut outs = Vec::new();
            for i in 0..20 {
                let s = servers[(i % servers.len() as u64) as usize];
                if let Ok(v) = w.rpc_default(c, s, i) {
                    outs.push(v);
                }
            }
            (w.now().as_micros(), outs)
        }
        assert_eq!(run(42), run(42));
        assert_ne!(run(42).0, run(43).0);
    }

    #[test]
    fn install_plan_schedules_all_actions() {
        let (mut w, _c, s) = two_node_world();
        let plan = FaultPlan::none()
            .crash_at(SimTime::from_millis(1), s)
            .restart_at(SimTime::from_millis(2), s);
        w.install_plan(&plan);
        assert_eq!(w.pending_events(), 2);
        w.run_to_quiescence();
        assert!(w.topology().is_up(s));
        assert_eq!(
            w.trace().count(|e| matches!(e, TraceEvent::NodeCrashed(_))),
            1
        );
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let (mut w, _c, s) = two_node_world();
        w.schedule_fault(SimTime::from_millis(50), FaultAction::Crash(s));
        w.run_until(SimTime::from_millis(10));
        assert_eq!(w.now(), SimTime::from_millis(10));
        assert!(w.topology().is_up(s));
        w.run_until(SimTime::from_millis(60));
        assert!(!w.topology().is_up(s));
    }

    #[test]
    fn async_sends_overlap_latency() {
        // 4 requests of 5ms each, issued together: total wall time is one
        // round trip (10ms), not four.
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let servers: Vec<NodeId> = (0..4).map(|i| t.add_node(format!("s{i}"), 1)).collect();
        let mut w: World<u64> = World::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        for &s in &servers {
            w.install_service(s, Box::new(PlusOne));
        }
        let tokens: Vec<ReplyToken> = servers.iter().map(|&s| w.send(c, s, 1)).collect();
        let deadline = SimTime::from_millis(100);
        let mut got = 0;
        let mut pending = tokens.clone();
        while !pending.is_empty() {
            let done = w
                .wait_any(&pending, deadline)
                .expect("reply before deadline");
            assert_eq!(w.try_take_reply(done), Some(Ok(2)));
            pending.retain(|&t| t != done);
            got += 1;
        }
        assert_eq!(got, 4);
        assert_eq!(w.now(), SimTime::from_millis(10));
    }

    #[test]
    fn async_send_to_unreachable_completes_with_error() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().partition(&[s]);
        let token = w.send(c, s, 1);
        // Not complete yet: detection takes detect_delay.
        assert!(w.try_take_reply(token).is_none());
        let done = w.wait_any(&[token], SimTime::from_millis(50));
        assert_eq!(done, Some(token));
        assert_eq!(
            w.try_take_reply(token),
            Some(Err(NetError::Unreachable { from: c, to: s }))
        );
        assert_eq!(w.now(), SimTime::from_millis(2));
    }

    #[test]
    fn wait_any_returns_none_on_deadline() {
        let (mut w, c, _s) = two_node_world();
        let ghost = w.topology_mut().add_node("ghost", 5);
        // No service on ghost: the request is delivered but dropped, so
        // the token never completes and the deadline applies.
        let token = w.send(c, ghost, 1);
        assert_eq!(w.wait_any(&[token], SimTime::from_millis(7)), None);
        assert_eq!(w.now(), SimTime::from_millis(7));
        assert!(w.try_take_reply(token).is_none());
    }

    #[test]
    fn send_from_crashed_node_completes_immediately() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().crash(c);
        let token = w.send(c, s, 1);
        assert_eq!(w.try_take_reply(token), Some(Err(NetError::NodeDown(c))));
    }

    #[test]
    fn bandwidth_charges_transfer_time() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s = t.add_node("s", 1);
        let mut w: World<u64> = World::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        w.install_service(s, Box::new(PlusOne));
        // Message size = its value in bytes; 1000 bytes/ms.
        w.set_bandwidth(1000, |m: &u64| *m as usize);
        // 10_000-byte request and a 10_001-byte echo reply:
        // (5ms + 10ms) out + (5ms + 10.001ms) back.
        let started = w.now();
        let r = w.rpc(c, s, 10_000, SimDuration::from_millis(200));
        assert_eq!(r, Ok(10_001));
        let took = w.now().saturating_since(started);
        assert_eq!(took, SimDuration::from_micros(30_001));
        // A zero-byte request still pays its 1-byte echo reply (1us).
        let started = w.now();
        w.rpc(c, s, 0, SimDuration::from_millis(200)).unwrap();
        assert_eq!(
            w.now().saturating_since(started),
            SimDuration::from_micros(10_001)
        );
    }

    #[test]
    fn rpc_spans_link_client_and_server() {
        let (mut w, c, s) = two_node_world();
        w.events_mut().set_enabled(true);
        let root = w.span_enter("iter.fig4.invocation", String::new);
        w.rpc_default(c, s, 1).unwrap();
        w.span_exit(root);
        let at = w.now().as_micros();
        assert!(w.events_mut().finish(at).is_empty());
        let events = w.events_mut().take_events();
        let dag = crate::metrics::CausalDag::from_events(&events);
        assert_eq!(dag.roots().len(), 1, "one trace rooted at the invocation");
        let root_node = dag.span(dag.roots()[0]).unwrap();
        assert_eq!(root_node.kind, "iter.fig4.invocation");
        let rpc = dag.span(root_node.children[0]).unwrap();
        assert_eq!(rpc.kind, "net.rpc");
        assert_eq!(rpc.detail, "n0->n1");
        assert_eq!(rpc.duration_us(), 10_000, "one 5ms-each-way round trip");
        let handle = dag.span(rpc.children[0]).unwrap();
        assert_eq!(handle.kind, "svc.handle");
        assert_eq!(handle.detail, "n1");
        assert_eq!(
            handle.trace, root_node.trace,
            "server work joins the caller's trace"
        );
    }

    #[test]
    fn failed_rpc_records_attributed_failure_event() {
        let (mut w, c, s) = two_node_world();
        w.events_mut().set_enabled(true);
        w.topology_mut().partition(&[s]);
        assert!(w.rpc_default(c, s, 1).is_err());
        let at = w.now().as_micros();
        assert!(w.events_mut().finish(at).is_empty());
        let events = w.events_mut().take_events();
        let dag = crate::metrics::CausalDag::from_events(&events);
        let failures = dag.points_under(dag.roots()[0]);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].kind, "net.rpc.failed");
        assert!(failures[0].detail.contains("no route from n0 to n1"));
    }

    #[test]
    fn background_tasks_root_their_own_traces() {
        let (mut w, c, s) = two_node_world();
        w.events_mut().set_enabled(true);
        // A concurrent task fires mid-RPC and performs its own RPC; its
        // spans must not parent under the pumping client's span.
        w.spawn_at(SimTime::from_millis(2), move |w: &mut World<u64>| {
            let _ = w.rpc_default(c, s, 100);
        });
        let outer = w.span_enter("iter.fig5.invocation", String::new);
        w.rpc(c, s, 1, SimDuration::from_millis(200)).unwrap();
        w.span_exit(outer);
        let at = w.now().as_micros();
        assert!(w.events_mut().finish(at).is_empty());
        let events = w.events_mut().take_events();
        let dag = crate::metrics::CausalDag::from_events(&events);
        assert_eq!(dag.roots().len(), 2, "client trace + background trace");
        let traces: Vec<_> = dag
            .roots()
            .iter()
            .map(|&r| dag.span(r).unwrap().trace)
            .collect();
        assert_ne!(traces[0], traces[1]);
    }

    #[test]
    fn heal_restores_service_after_partition() {
        let (mut w, c, s) = two_node_world();
        w.topology_mut().partition(&[s]);
        assert!(w.rpc_default(c, s, 1).is_err());
        w.topology_mut().heal_partition();
        assert_eq!(w.rpc_default(c, s, 1), Ok(2));
    }

    /// A protocol with a batch variant, mirroring how `StoreMsg` opts in.
    #[derive(Clone, Debug, PartialEq)]
    enum BMsg {
        Val(u64),
        Batch(Vec<BMsg>),
    }
    impl crate::net::BatchEnvelope for BMsg {
        fn wrap_batch(parts: Vec<Self>) -> Self {
            BMsg::Batch(parts)
        }
        fn unwrap_batch(self) -> Result<Vec<Self>, Self> {
            match self {
                BMsg::Batch(parts) => Ok(parts),
                other => Err(other),
            }
        }
    }
    struct BatchPlusOne;
    impl Service<BMsg> for BatchPlusOne {
        fn handle(&mut self, _ctx: &mut ServiceCtx, _from: NodeId, msg: BMsg) -> BMsg {
            fn one(m: BMsg) -> BMsg {
                match m {
                    BMsg::Val(n) => BMsg::Val(n + 1),
                    BMsg::Batch(parts) => BMsg::Batch(parts.into_iter().map(one).collect()),
                }
            }
            one(msg)
        }
    }

    #[test]
    fn batched_rpc_is_one_round_trip_for_many_parts() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s = t.add_node("s", 1);
        let mut w: World<BMsg> = World::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        w.install_service(s, Box::new(BatchPlusOne));
        let started = w.now();
        let parts = (0..4).map(BMsg::Val).collect();
        let replies = w
            .rpc_batch(c, s, parts, SimDuration::from_millis(200))
            .unwrap();
        assert_eq!(
            replies,
            (1..5).map(BMsg::Val).collect::<Vec<_>>(),
            "per-part replies in request order"
        );
        // One envelope out + one back: a single 10ms round trip, exactly
        // as if a lone message had been sent.
        assert_eq!(
            w.now().saturating_since(started),
            SimDuration::from_millis(10)
        );
        assert_eq!(w.metrics().counter("net.batch.envelopes"), 1);
        assert_eq!(w.metrics().counter("net.batch.parts"), 4);
        assert_eq!(w.metrics().counter("rpc.sent"), 1);
    }

    #[test]
    fn batch_buffer_flushes_one_envelope_per_destination() {
        let mut t = Topology::new();
        let c = t.add_node("c", 0);
        let s1 = t.add_node("s1", 1);
        let s2 = t.add_node("s2", 2);
        let mut w: World<BMsg> = World::new(
            WorldConfig::seeded(1),
            t,
            LatencyModel::Constant(SimDuration::from_millis(5)),
        );
        w.install_service(s1, Box::new(BatchPlusOne));
        w.install_service(s2, Box::new(BatchPlusOne));
        let mut buf = crate::net::BatchBuffer::new(c);
        buf.push(s1, BMsg::Val(10));
        buf.push(s2, BMsg::Val(20));
        buf.push(s1, BMsg::Val(11));
        assert_eq!(buf.pending_parts(), 3);
        let launched = buf.flush(&mut w);
        assert!(buf.is_empty());
        assert_eq!(launched.len(), 2, "one envelope per destination");
        assert_eq!(launched[0].0, s1);
        assert_eq!(launched[0].2, 2);
        // Both envelopes are in flight CONCURRENTLY: waiting for both
        // still costs one round trip of wall-clock.
        let started = w.now();
        let tokens: Vec<ReplyToken> = launched.iter().map(|&(_, t, _)| t).collect();
        let deadline = w.now() + SimDuration::from_millis(200);
        let mut remaining = tokens.clone();
        while !remaining.is_empty() {
            let done = w.wait_any(&remaining, deadline).expect("reply");
            remaining.retain(|&t| t != done);
        }
        assert_eq!(
            w.now().saturating_since(started),
            SimDuration::from_millis(10)
        );
        use crate::net::BatchEnvelope as _;
        let r1 = w.try_take_reply(tokens[0]).unwrap().unwrap();
        assert_eq!(
            r1.unwrap_batch().unwrap(),
            vec![BMsg::Val(11), BMsg::Val(12)]
        );
    }
}
