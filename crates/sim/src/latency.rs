//! Latency models for simulated links.
//!
//! The paper's dynamic sets fetch "closer" files first; the
//! [`LatencyModel::SiteDistance`] model gives that notion teeth by charging
//! per-hop latency proportional to the distance between two sites.

use crate::node::Node;
use crate::rng::SimRng;
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};

/// How long a one-way message between two nodes takes.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum LatencyModel {
    /// Every message takes exactly this long.
    Constant(SimDuration),
    /// Uniformly distributed in `[lo, hi]`.
    Uniform {
        /// Minimum one-way latency.
        lo: SimDuration,
        /// Maximum one-way latency.
        hi: SimDuration,
    },
    /// Exponentially distributed with the given mean, plus a fixed floor.
    /// Models WAN tail latency.
    Exponential {
        /// Latency floor added to every sample.
        floor: SimDuration,
        /// Mean of the exponential component.
        mean: SimDuration,
    },
    /// `base + per_hop * |site(a) - site(b)|`: nodes in the same site are
    /// fast to reach, far sites are slow. Used for closest-first fetching.
    SiteDistance {
        /// Latency between nodes in the same site.
        base: SimDuration,
        /// Extra latency per unit of site distance.
        per_hop: SimDuration,
    },
}

impl Default for LatencyModel {
    /// A LAN-ish default: uniform 1-3ms.
    fn default() -> Self {
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(3),
        }
    }
}

impl LatencyModel {
    /// Samples a one-way latency for a message from `a` to `b`.
    pub fn sample(&self, a: &Node, b: &Node, rng: &mut SimRng) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                if hi <= lo {
                    lo
                } else {
                    SimDuration::from_micros(rng.range_u64(lo.as_micros(), hi.as_micros() + 1))
                }
            }
            LatencyModel::Exponential { floor, mean } => {
                let extra = rng.exponential(mean.as_micros() as f64);
                floor + SimDuration::from_micros(extra as u64)
            }
            LatencyModel::SiteDistance { base, per_hop } => {
                let dist = a.site().abs_diff(b.site()) as u64;
                base + per_hop.saturating_mul(dist)
            }
        }
    }

    /// A deterministic *estimate* of the latency from `a` to `b`, used by
    /// schedulers (e.g. closest-first prefetching) that must rank targets
    /// without consuming randomness.
    pub fn estimate(&self, a: &Node, b: &Node) -> SimDuration {
        match *self {
            LatencyModel::Constant(d) => d,
            LatencyModel::Uniform { lo, hi } => {
                SimDuration::from_micros((lo.as_micros() + hi.as_micros()) / 2)
            }
            LatencyModel::Exponential { floor, mean } => floor + mean,
            LatencyModel::SiteDistance { base, per_hop } => {
                let dist = a.site().abs_diff(b.site()) as u64;
                base + per_hop.saturating_mul(dist)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::node::NodeId;

    fn node(id: u32, site: u32) -> Node {
        Node::new(NodeId(id), format!("n{id}"), site)
    }

    #[test]
    fn constant_is_constant() {
        let m = LatencyModel::Constant(SimDuration::from_millis(5));
        let (a, b) = (node(0, 0), node(1, 9));
        let mut rng = SimRng::new(1);
        for _ in 0..10 {
            assert_eq!(m.sample(&a, &b, &mut rng), SimDuration::from_millis(5));
        }
        assert_eq!(m.estimate(&a, &b), SimDuration::from_millis(5));
    }

    #[test]
    fn uniform_stays_in_bounds() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_micros(100),
            hi: SimDuration::from_micros(200),
        };
        let (a, b) = (node(0, 0), node(1, 0));
        let mut rng = SimRng::new(2);
        for _ in 0..1000 {
            let d = m.sample(&a, &b, &mut rng);
            assert!(
                (100..=200).contains(&d.as_micros()),
                "sample out of bounds: {d}"
            );
        }
    }

    #[test]
    fn degenerate_uniform_returns_lo() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_micros(100),
            hi: SimDuration::from_micros(100),
        };
        let (a, b) = (node(0, 0), node(1, 0));
        let mut rng = SimRng::new(2);
        assert_eq!(m.sample(&a, &b, &mut rng), SimDuration::from_micros(100));
    }

    #[test]
    fn exponential_respects_floor() {
        let m = LatencyModel::Exponential {
            floor: SimDuration::from_millis(10),
            mean: SimDuration::from_millis(5),
        };
        let (a, b) = (node(0, 0), node(1, 0));
        let mut rng = SimRng::new(3);
        for _ in 0..500 {
            assert!(m.sample(&a, &b, &mut rng) >= SimDuration::from_millis(10));
        }
    }

    #[test]
    fn site_distance_scales_with_distance() {
        let m = LatencyModel::SiteDistance {
            base: SimDuration::from_millis(1),
            per_hop: SimDuration::from_millis(10),
        };
        let mut rng = SimRng::new(4);
        let near = m.sample(&node(0, 2), &node(1, 2), &mut rng);
        let far = m.sample(&node(0, 2), &node(1, 7), &mut rng);
        assert_eq!(near, SimDuration::from_millis(1));
        assert_eq!(far, SimDuration::from_millis(51));
        assert_eq!(m.estimate(&node(0, 2), &node(1, 7)), far);
    }

    #[test]
    fn estimate_is_midpoint_for_uniform() {
        let m = LatencyModel::Uniform {
            lo: SimDuration::from_micros(100),
            hi: SimDuration::from_micros(300),
        };
        assert_eq!(
            m.estimate(&node(0, 0), &node(1, 0)),
            SimDuration::from_micros(200)
        );
    }
}
