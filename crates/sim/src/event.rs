//! The discrete-event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in simulated time are
//! broken by insertion order, which makes every run deterministic.

use crate::fault::FaultAction;
use crate::metrics::TraceContext;
use crate::node::NodeId;
use crate::time::SimTime;
use crate::world::{ReplyToken, Task, World};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// What happens when an event fires.
pub(crate) enum EventKind<M> {
    /// A request message reaches the server node. Carries the causal
    /// context of the span that launched it, so server-side handling
    /// parents under the caller's trace.
    Deliver {
        from: NodeId,
        to: NodeId,
        msg: M,
        token: ReplyToken,
        ctx: Option<TraceContext>,
    },
    /// A reply message reaches the client node.
    ReplyArrive {
        from: NodeId,
        to: NodeId,
        msg: M,
        token: ReplyToken,
        ctx: Option<TraceContext>,
    },
    /// An asynchronously-sent request completes with a local error
    /// (fast failure detection).
    CompleteError {
        token: ReplyToken,
        error: crate::net::NetError,
        ctx: Option<TraceContext>,
    },
    /// A fault-plan action takes effect.
    Fault(FaultAction),
    /// An arbitrary scheduled task (background mutator, concurrent client).
    Task(Box<dyn Task<M>>),
}

pub(crate) struct QueuedEvent<M> {
    pub at: SimTime,
    pub seq: u64,
    pub kind: EventKind<M>,
}

impl<M> PartialEq for QueuedEvent<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for QueuedEvent<M> {}

impl<M> PartialOrd for QueuedEvent<M> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<M> Ord for QueuedEvent<M> {
    /// Reversed so that `BinaryHeap` (a max-heap) pops the *earliest* event.
    fn cmp(&self, other: &Self) -> Ordering {
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A min-queue of events keyed by `(time, seq)`.
pub(crate) struct EventQueue<M> {
    heap: BinaryHeap<QueuedEvent<M>>,
    next_seq: u64,
}

impl<M> Default for EventQueue<M> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }
}

impl<M> EventQueue<M> {
    pub fn push(&mut self, at: SimTime, kind: EventKind<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { at, seq, kind });
    }

    /// Time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    pub fn pop(&mut self) -> Option<QueuedEvent<M>> {
        self.heap.pop()
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    #[allow(dead_code)] // symmetry with len(); used by tests
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

/// Run a boxed task against the world. Lives here so `EventKind` can stay
/// private while `World` dispatches it.
pub(crate) fn run_task<M>(task: Box<dyn Task<M>>, world: &mut World<M>) {
    task.run(world)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultAction;

    fn fault_event(_us: u64) -> EventKind<()> {
        // Any payload works for ordering tests; reuse a fault action.
        EventKind::Fault(FaultAction::HealPartition)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q: EventQueue<()> = EventQueue::default();
        q.push(SimTime::from_micros(30), fault_event(30));
        q.push(SimTime::from_micros(10), fault_event(10));
        q.push(SimTime::from_micros(20), fault_event(20));
        let times: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|e| e.at.as_micros())
            .collect();
        assert_eq!(times, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q: EventQueue<()> = EventQueue::default();
        let t = SimTime::from_micros(5);
        for _ in 0..4 {
            q.push(t, fault_event(5));
        }
        let seqs: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn peek_time_sees_earliest() {
        let mut q: EventQueue<()> = EventQueue::default();
        assert_eq!(q.peek_time(), None);
        q.push(SimTime::from_micros(9), fault_event(9));
        q.push(SimTime::from_micros(2), fault_event(2));
        assert_eq!(q.peek_time(), Some(SimTime::from_micros(2)));
        assert_eq!(q.len(), 2);
        assert!(!q.is_empty());
    }
}
