//! Property tests for the simulator: determinism, reachability sanity,
//! and fault-plan round trips under randomized topologies and schedules.

use proptest::prelude::*;
use weakset_sim::prelude::*;

/// A randomized world script: nodes, link cuts, partitions, rpc schedule.
#[derive(Clone, Debug)]
struct WorldScript {
    seed: u64,
    n_nodes: usize,
    /// (from, to) rpc attempts, indices mod n_nodes.
    rpcs: Vec<(usize, usize)>,
    /// Link cuts: (a, b) indices.
    cuts: Vec<(usize, usize)>,
    /// Nodes to crash.
    crashes: Vec<usize>,
}

fn world_script() -> impl Strategy<Value = WorldScript> {
    (
        0u64..5000,
        3usize..8,
        proptest::collection::vec((0usize..8, 0usize..8), 1..20),
        proptest::collection::vec((0usize..8, 0usize..8), 0..6),
        proptest::collection::vec(0usize..8, 0..3),
    )
        .prop_map(|(seed, n_nodes, rpcs, cuts, crashes)| WorldScript {
            seed,
            n_nodes,
            rpcs,
            cuts,
            crashes,
        })
}

struct Echo;
impl Service<u64> for Echo {
    fn handle(&mut self, _ctx: &mut ServiceCtx<'_>, _from: NodeId, msg: u64) -> u64 {
        msg.wrapping_mul(3)
    }
}

fn run_script(s: &WorldScript) -> (u64, u64, Vec<Result<u64, NetError>>) {
    let mut topo = Topology::new();
    let nodes: Vec<NodeId> = (0..s.n_nodes)
        .map(|i| topo.add_node(format!("n{i}"), i as u32))
        .collect();
    for &(a, b) in &s.cuts {
        let (a, b) = (nodes[a % s.n_nodes], nodes[b % s.n_nodes]);
        if a != b {
            topo.set_link(a, b, LinkState::down());
        }
    }
    for &c in &s.crashes {
        topo.crash(nodes[c % s.n_nodes]);
    }
    let mut world: World<u64> = World::new(
        WorldConfig::seeded(s.seed),
        topo,
        LatencyModel::Uniform {
            lo: SimDuration::from_millis(1),
            hi: SimDuration::from_millis(9),
        },
    );
    for &n in &nodes {
        world.install_service(n, Box::new(Echo));
    }
    let mut outs = Vec::new();
    for &(f, t) in &s.rpcs {
        let (f, t) = (nodes[f % s.n_nodes], nodes[t % s.n_nodes]);
        if f == t {
            continue;
        }
        outs.push(world.rpc(
            f,
            t,
            (f.0 as u64) << 8 | t.0 as u64,
            SimDuration::from_millis(40),
        ));
    }
    (world.now().as_micros(), world.trace_hash(), outs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Same script ⇒ byte-identical run (final clock, full trace hash,
    /// and every result).
    #[test]
    fn runs_are_deterministic(s in world_script()) {
        prop_assert_eq!(run_script(&s), run_script(&s));
    }

    /// The trace hash is a faithful determinism witness: replaying the
    /// same script twice hashes equal, and perturbing the seed perturbs
    /// the trace (latency draws differ even for an identical schedule).
    #[test]
    fn trace_hash_tracks_the_schedule(s in world_script()) {
        let (_, h1, outs) = run_script(&s);
        let (_, h2, _) = run_script(&s);
        prop_assert_eq!(h1, h2);
        // A reseeded replay only diverges when the run actually drew
        // latencies — i.e. at least one message was delivered.
        if outs.iter().any(|r| r.is_ok()) {
            let mut reseeded = s.clone();
            reseeded.seed = s.seed.wrapping_add(1);
            let (_, h3, _) = run_script(&reseeded);
            prop_assert_ne!(h1, h3);
        }
    }

    /// Reachability is symmetric and reflexive-for-up-nodes under any
    /// combination of cuts, crashes, and partitions.
    #[test]
    fn reachability_is_symmetric(s in world_script(), part in proptest::collection::vec(0usize..8, 0..4)) {
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..s.n_nodes)
            .map(|i| topo.add_node(format!("n{i}"), i as u32))
            .collect();
        for &(a, b) in &s.cuts {
            let (a, b) = (nodes[a % s.n_nodes], nodes[b % s.n_nodes]);
            if a != b {
                topo.set_link(a, b, LinkState::down());
            }
        }
        for &c in &s.crashes {
            topo.crash(nodes[c % s.n_nodes]);
        }
        let side: Vec<NodeId> = part.iter().map(|&i| nodes[i % s.n_nodes]).collect();
        if !side.is_empty() {
            topo.partition(&side);
        }
        for &a in &nodes {
            prop_assert_eq!(topo.reachable(a, a), topo.is_up(a));
            for &b in &nodes {
                prop_assert_eq!(topo.reachable(a, b), topo.reachable(b, a));
            }
        }
    }

    /// reachable_set agrees with pairwise reachability.
    #[test]
    fn reachable_set_matches_pairwise(s in world_script()) {
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..s.n_nodes)
            .map(|i| topo.add_node(format!("n{i}"), i as u32))
            .collect();
        for &(a, b) in &s.cuts {
            let (a, b) = (nodes[a % s.n_nodes], nodes[b % s.n_nodes]);
            if a != b {
                topo.set_link(a, b, LinkState::down());
            }
        }
        for &c in &s.crashes {
            topo.crash(nodes[c % s.n_nodes]);
        }
        for &a in &nodes {
            let set = topo.reachable_set(a);
            for &b in &nodes {
                prop_assert_eq!(set.contains(&b), topo.reachable(a, b), "{} -> {}", a, b);
            }
        }
    }

    /// Healing a partition restores exactly the pre-partition
    /// reachability (crashes and cuts unaffected).
    #[test]
    fn heal_restores_reachability(s in world_script(), part in proptest::collection::vec(0usize..8, 1..4)) {
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..s.n_nodes)
            .map(|i| topo.add_node(format!("n{i}"), i as u32))
            .collect();
        for &(a, b) in &s.cuts {
            let (a, b) = (nodes[a % s.n_nodes], nodes[b % s.n_nodes]);
            if a != b {
                topo.set_link(a, b, LinkState::down());
            }
        }
        for &c in &s.crashes {
            topo.crash(nodes[c % s.n_nodes]);
        }
        let before: Vec<Vec<bool>> = nodes
            .iter()
            .map(|&a| nodes.iter().map(|&b| topo.reachable(a, b)).collect())
            .collect();
        let side: Vec<NodeId> = part.iter().map(|&i| nodes[i % s.n_nodes]).collect();
        topo.partition(&side);
        topo.heal_partition();
        let after: Vec<Vec<bool>> = nodes
            .iter()
            .map(|&a| nodes.iter().map(|&b| topo.reachable(a, b)).collect())
            .collect();
        prop_assert_eq!(before, after);
    }

    /// RPC to a crashed or fully cut-off node never succeeds; RPC over a
    /// healthy clique always succeeds.
    #[test]
    fn rpc_outcomes_match_reachability(seed in 0u64..1000, n in 3usize..6) {
        let mut topo = Topology::new();
        let nodes: Vec<NodeId> = (0..n).map(|i| topo.add_node(format!("n{i}"), i as u32)).collect();
        let dead = nodes[n - 1];
        topo.crash(dead);
        let mut world: World<u64> = World::new(
            WorldConfig::seeded(seed),
            topo,
            LatencyModel::Constant(SimDuration::from_millis(2)),
        );
        for &nd in &nodes {
            world.install_service(nd, Box::new(Echo));
        }
        for &to in &nodes[1..] {
            let r = world.rpc(nodes[0], to, 7, SimDuration::from_millis(50));
            if to == dead {
                prop_assert!(r.is_err());
            } else {
                prop_assert_eq!(r, Ok(21));
            }
        }
    }
}
