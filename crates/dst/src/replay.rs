//! The record/replay bridge: run a scenario on the *real* threaded
//! runtime while a [`Recorder`] captures every observable boundary
//! crossing, then re-drive the same scenario inside the deterministic
//! simulator with the recorded nondeterminism pinned — delivery order,
//! async completion winners, observed failures, fault-table transitions,
//! and region-boundary clock reads are all substituted from the log.
//!
//! This puts a real (irreproducible) run in front of the whole DST
//! toolchain: the conformance oracles judge it, repeated replays certify
//! determinism via [`RunReport::trace_hash`], [`shrink_recording`]
//! greedily minimizes the *recording* (dropping whole regions together
//! with their scenario items), and `explain` walks the replayed causal
//! DAG — exactly as for generated scenarios.
//!
//! ## Alignment model
//!
//! The recorded log is the authority. The record driver brackets every
//! driver-level activity (each setup add, workload op, fault transition,
//! and iterator invocation) in a [`RecEvent::Region`] marker; the replay
//! driver *peeks* the next marker to decide what to re-issue, so the two
//! drivers walk the same schedule even when wall-clock timing skewed the
//! live interleaving. Between markers, each live transport call is
//! matched against the next recorded one:
//!
//! * a recorded `Ok` rpc is **re-executed** against the simulated
//!   services (and its reply hash verified),
//! * a recorded *failure* is **substituted** — the error is returned
//!   without touching the simulated network, after advancing the virtual
//!   clock by the observed stall,
//! * a recorded `wait_any` pins the simulated wait to the recorded
//!   winner's token,
//! * recorded reachability/liveness transitions are applied to the
//!   simulated topology at their log position.
//!
//! Every mismatch (payload hash, endpoints, call kind, missing or
//! leftover entries) is a *divergence*: counted under
//! [`weakset_obs::replay::DIVERGENCE`], traced as a `replay.divergence`
//! event, and reported on [`ReplayReport::divergences`] — never silent.
//! A [`Recording::truncated`] log (hung shutdown) replays its completed
//! prefix; only then are beyond-log calls forgiven.
//!
//! ## Scope (v1)
//!
//! Recording captures any threaded run; *replay* drives
//! [`Deployment::Plain`] workloads (gossip and sharded deployments spawn
//! background tasks and fan-out schedules whose regions v1 does not
//! bracket). The live run's report carries `trace_hash: 0` — real
//! scheduling has no deterministic trace; determinism is a property of
//! the *replay*.

use crate::oracle;
use crate::run::{self, RunReport, COLL};
use crate::scenario::{Chaos, Deployment, FaultSpec, Op, Scenario};
use std::collections::{BTreeSet, HashMap};
use std::path::{Path, PathBuf};
use std::time::Duration;
use weakset::prelude::{IterConfig, IterStep, Semantics, WeakSet};
use weakset_obs::replay as names;
use weakset_obs::FlightRecorder;
use weakset_runtime::record::{hash_debug, RecEvent, RecOutcome, Recorder, Recording};
use weakset_runtime::threaded::ThreadedRuntime;
use weakset_runtime::traits::{
    Clock, Observe, RtTask, Runtime, RuntimeExt, ServiceHost, Spawner, Transport,
};
use weakset_sim::latency::LatencyModel;
use weakset_sim::link::LinkState;
use weakset_sim::metrics::{SpanId, TraceContext};
use weakset_sim::net::{BatchEnvelope, NetError};
use weakset_sim::node::NodeId;
use weakset_sim::rng::SimRng;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::topology::Topology;
use weakset_sim::world::{ReplyToken, Service, Task, WorldConfig};
use weakset_spec::prelude::Computation;
use weakset_store::object::{ObjectId, ObjectRecord};
use weakset_store::prelude::{
    CollectionRef, ReadPolicy, StoreClient, StoreMsg, StoreServer, StoreWorld,
};

/// Driver patience bound, mirroring the executor in [`crate::run`]: how
/// many 5 ms waits the record driver tolerates while blocked before
/// declaring the run wedged.
const MAX_WAITS: usize = 400;

/// Shrinking budget: hard cap on replays one [`shrink_recording`] call
/// may perform (mirrors [`crate::shrink`]).
const MAX_EXECUTIONS: usize = 200;

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// What recording one scenario on the threaded runtime produced.
#[derive(Debug)]
pub struct RecordedRun {
    /// The captured boundary-event log (workload embedded).
    pub recording: Recording,
    /// The live run's report. `trace_hash` is `0`: real scheduling has
    /// no deterministic trace — replay the recording for one.
    pub report: RunReport,
    /// Final membership under the scenario's read policy, sorted.
    pub membership: Vec<u64>,
}

/// What replaying a recording through the simulator produced.
#[derive(Debug)]
pub struct ReplayReport {
    /// The replayed run's report; `trace_hash` is the simulator's, so
    /// two replays of the same recording hash identically.
    pub report: RunReport,
    /// Final membership under the workload's read policy, sorted.
    /// Empty when a truncated log ends before the membership read.
    pub membership: Vec<u64>,
    /// Every log/sim mismatch detected, in detection order. Also counted
    /// under [`weakset_obs::replay::DIVERGENCE`]. Empty is the
    /// faithful-reproduction claim.
    pub divergences: Vec<String>,
}

// ---------------------------------------------------------------------
// Region labels and the fault-transition expansion
// ---------------------------------------------------------------------
//
// Labels are intrinsic to the scenario item (never positional), so the
// shrinker can drop an item from the workload and excise exactly its
// regions from the log. Two identical items produce identical labels;
// the shrinker then removes both regions at once and the candidate is
// simply rejected if that breaks alignment.

fn setup_label(elem: u64, home: usize) -> String {
    format!("setup.{elem}.{home}")
}

fn op_label(op: &Op) -> String {
    match *op {
        Op::Add { at_ms, elem, home } => format!("op.{at_ms}.add.{elem}.{home}"),
        Op::Remove { at_ms, elem } => format!("op.{at_ms}.rm.{elem}"),
    }
}

/// One scheduled topology change: a fault edge (down or up) expanded to
/// node-index space, where index 0 is the client and server `i` is node
/// `i + 1` — the ids both backends assign when nodes are created in
/// order.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Transition {
    at_ms: u64,
    label: String,
    acts: Vec<TAct>,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum TAct {
    Link { a: usize, b: usize, ok: bool },
    Node { node: usize, up: bool },
}

/// Server index → global node index (client is 0, servers follow).
fn sv(i: usize, n: usize) -> usize {
    (i % n) + 1
}

/// Expands one fault into its down/up transitions. A partition cuts
/// every link between the isolated side and everyone else — including
/// the client — so the simulator's multi-hop routing cannot sneak
/// around it and both backends agree on reachability.
fn expand_one(f: &FaultSpec, n: usize) -> Vec<Transition> {
    match f {
        FaultSpec::Outage {
            at_ms,
            node,
            for_ms,
        } => {
            let g = sv(*node, n);
            vec![
                Transition {
                    at_ms: *at_ms,
                    label: format!("fault.out.{at_ms}.{node}.{for_ms}.down"),
                    acts: vec![TAct::Node { node: g, up: false }],
                },
                Transition {
                    at_ms: at_ms + for_ms,
                    label: format!("fault.out.{at_ms}.{node}.{for_ms}.up"),
                    acts: vec![TAct::Node { node: g, up: true }],
                },
            ]
        }
        FaultSpec::Partition {
            at_ms,
            side,
            for_ms,
        } => {
            let side_g: BTreeSet<usize> = side.iter().map(|&i| sv(i, n)).collect();
            let mut cuts = Vec::new();
            let mut heals = Vec::new();
            for &a in &side_g {
                for b in 0..=n {
                    if !side_g.contains(&b) {
                        cuts.push(TAct::Link { a, b, ok: false });
                        heals.push(TAct::Link { a, b, ok: true });
                    }
                }
            }
            let side_label = side
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("-");
            vec![
                Transition {
                    at_ms: *at_ms,
                    label: format!("fault.part.{at_ms}.{side_label}.{for_ms}.cut"),
                    acts: cuts,
                },
                Transition {
                    at_ms: at_ms + for_ms,
                    label: format!("fault.part.{at_ms}.{side_label}.{for_ms}.heal"),
                    acts: heals,
                },
            ]
        }
        FaultSpec::Flap {
            at_ms,
            a,
            b,
            down_ms,
            up_ms,
            cycles,
        } => {
            let (ga, gb) = (sv(*a, n), sv(*b, n));
            let mut out = Vec::new();
            let mut t = *at_ms;
            for i in 0..*cycles {
                out.push(Transition {
                    at_ms: t,
                    label: format!("fault.flap.{at_ms}.{a}.{b}.{i}.down"),
                    acts: vec![TAct::Link {
                        a: ga,
                        b: gb,
                        ok: false,
                    }],
                });
                t += down_ms;
                out.push(Transition {
                    at_ms: t,
                    label: format!("fault.flap.{at_ms}.{a}.{b}.{i}.up"),
                    acts: vec![TAct::Link {
                        a: ga,
                        b: gb,
                        ok: true,
                    }],
                });
                t += up_ms;
            }
            out
        }
    }
}

fn expand_faults(faults: &[FaultSpec], n: usize) -> Vec<Transition> {
    let mut out: Vec<Transition> = faults.iter().flat_map(|f| expand_one(f, n)).collect();
    out.sort_by_key(|t| t.at_ms); // stable: same-instant transitions keep spec order
    out
}

/// The merged record-driver schedule: fault transitions and workload
/// ops, ordered by due time (transitions first on ties).
enum SchedItem {
    Trans(Transition),
    Op(Op),
}

fn sched_at(item: &SchedItem) -> u64 {
    match item {
        SchedItem::Trans(t) => t.at_ms,
        SchedItem::Op(o) => o.at_ms(),
    }
}

fn build_schedule(s: &Scenario) -> Vec<SchedItem> {
    let n = s.servers.max(1);
    let mut keyed: Vec<(u64, u8, SchedItem)> = expand_faults(&s.faults, n)
        .into_iter()
        .map(|t| (t.at_ms, 0, SchedItem::Trans(t)))
        .collect();
    let mut ops = s.ops.clone();
    ops.sort_by_key(Op::at_ms);
    keyed.extend(ops.into_iter().map(|o| (o.at_ms(), 1, SchedItem::Op(o))));
    keyed.sort_by_key(|(at, kind, _)| (*at, *kind));
    keyed.into_iter().map(|(_, _, item)| item).collect()
}

// ---------------------------------------------------------------------
// Record driver (threaded backend)
// ---------------------------------------------------------------------

fn apply_op_threaded(
    rt: &mut ThreadedRuntime<StoreMsg>,
    set: &WeakSet,
    servers: &[NodeId],
    op: Op,
) {
    match op {
        Op::Add { elem, home, .. } => {
            let obj = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
            let _ = set.add(rt, obj, servers[home % servers.len()]);
        }
        Op::Remove { elem, .. } => {
            let _ = set.remove(rt, ObjectId(elem));
        }
    }
}

/// Applies every schedule item due at or before `limit_ms`, each under
/// its own region marker. With `advance_clock`, sleeps (wall time) to
/// each item's due instant first; without, applies only the already-due.
#[allow(clippy::too_many_arguments)]
fn run_schedule(
    rt: &mut ThreadedRuntime<StoreMsg>,
    rec: &Recorder,
    set: &WeakSet,
    servers: &[NodeId],
    schedule: &[SchedItem],
    next: &mut usize,
    t0: SimTime,
    limit_ms: u64,
    advance_clock: bool,
) {
    while *next < schedule.len() {
        let due = sched_at(&schedule[*next]);
        if due > limit_ms {
            break;
        }
        if advance_clock {
            let due_t = t0 + ms(due);
            let now = rt.now();
            if now < due_t {
                rt.sleep(due_t.saturating_since(now));
            }
        } else if due > rt.now().saturating_since(t0).as_millis() {
            break;
        }
        match &schedule[*next] {
            SchedItem::Trans(tr) => {
                rec.region(rt.now(), &tr.label);
                for act in &tr.acts {
                    match *act {
                        TAct::Link { a, b, ok } => {
                            rt.set_reachable(NodeId(a as u32), NodeId(b as u32), ok);
                        }
                        TAct::Node { node, up } => rt.set_node_up(NodeId(node as u32), up),
                    }
                }
            }
            SchedItem::Op(op) => {
                rec.region(rt.now(), &op_label(op));
                apply_op_threaded(rt, set, servers, *op);
            }
        }
        *next += 1;
    }
}

/// Membership ground truth as the primary's thread holds it — driver
/// omniscience, mirroring [`crate::run`]'s tail guard.
fn ground_truth_threaded(rt: &ThreadedRuntime<StoreMsg>, cref: &CollectionRef) -> Vec<u64> {
    rt.with_service(cref.home, |sv: &StoreServer| {
        sv.collection(cref.id)
            .map(|c| c.snapshot().iter().map(|m| m.elem.0).collect())
            .unwrap_or_default()
    })
    .unwrap_or_default()
}

/// Whether a membership read under `policy` can currently succeed,
/// judged from the fleet's fault tables.
fn membership_readable_threaded(
    rt: &ThreadedRuntime<StoreMsg>,
    policy: ReadPolicy,
    client: NodeId,
    cref: &CollectionRef,
) -> bool {
    let live = |n: NodeId| rt.is_up(n) && rt.reachable(client, n);
    match policy {
        ReadPolicy::Primary => live(cref.home),
        ReadPolicy::Quorum => {
            let all = cref.all_nodes();
            all.iter().filter(|&&n| live(n)).count() * 2 > all.len()
        }
        ReadPolicy::Any | ReadPolicy::Leaderless => cref.all_nodes().iter().any(|&n| live(n)),
        // Conservative, mirroring the simulator driver: a live home
        // always satisfies the session floor.
        ReadPolicy::CausalSession => live(cref.home),
    }
}

/// Runs a [`Deployment::Plain`] scenario on the threaded runtime with a
/// [`Recorder`] attached, producing a replayable [`Recording`] alongside
/// the live run's oracle-checked report.
///
/// The driver mirrors [`crate::run::execute`] — same setup, schedule,
/// invocation loop, tail guard, and oracle pipeline — but every activity
/// is bracketed in a region marker so replay can re-align on it. A hung
/// shutdown is reported as a violation and marks the recording
/// truncated rather than hanging the caller.
///
/// # Errors
///
/// Non-`Plain` deployments (unsupported by replay v1) and failures in
/// the faultless prelude (collection creation, setup adds).
pub fn record_scenario(s: &Scenario) -> Result<RecordedRun, String> {
    if s.deployment != Deployment::Plain {
        return Err("record/replay v1 drives Plain deployments only".into());
    }
    let mut violations: Vec<String> = Vec::new();
    let mut rt = ThreadedRuntime::<StoreMsg>::new(s.seed);
    let rec = Recorder::new(s.seed);
    rec.set_workload(s.to_ron());
    rt.attach_recorder(rec.clone());
    rt.events_mut().set_enabled(true);
    // Black box for the live run: boundary crossings land in a bounded
    // ring, dumped as a Perfetto-loadable trace only when something goes
    // wrong (oracle violation here, hung shutdown inside the runtime).
    let flight = FlightRecorder::new(4096)
        .with_dump_path(std::env::temp_dir().join(format!("weakset-flight-{}.json", s.seed)));
    rt.attach_flight_recorder(flight.clone());

    let cn = rt.add_node("client");
    let n = s.servers.max(1);
    let servers: Vec<NodeId> = (0..n).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &server in &servers {
        rt.install_service(server, Box::new(StoreServer::new()));
    }
    let client = StoreClient::new(cn, ms(50));
    let config = IterConfig {
        read_policy: s.read_policy,
        fetch_order: s.fetch_order,
        guard_growth: s.guard_growth,
        ..IterConfig::default()
    };
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    client
        .create_collection(&mut rt, &cref)
        .map_err(|e| format!("create_collection failed: {e:?}"))?;
    let set = WeakSet::new(client.clone(), cref.clone()).with_config(config);

    for &(elem, home) in &s.setup {
        rec.region(rt.now(), &setup_label(elem, home));
        let obj = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
        set.add(&mut rt, obj, servers[home % n])
            .map_err(|e| format!("setup add failed: {e:?}"))?;
    }

    let schedule = build_schedule(s);
    let mut next = 0usize;
    let t0 = rt.now();
    run_schedule(
        &mut rt, &rec, &set, &servers, &schedule, &mut next, t0, s.start_ms, true,
    );
    let at_start = t0 + ms(s.start_ms);
    let now = rt.now();
    if now < at_start {
        rt.sleep(at_start.saturating_since(now));
    }
    rec.region(rt.now(), "start");

    let mut it = set.elements_observed(s.semantics);
    let mut yielded: Vec<u64> = Vec::new();
    let mut steps = 0usize;
    let mut waits = 0usize;
    let budget = s.budget.max(1);
    loop {
        let elapsed = rt.now().saturating_since(t0).as_millis();
        run_schedule(
            &mut rt, &rec, &set, &servers, &schedule, &mut next, t0, elapsed, false,
        );

        // Tail guard (see run::execute): when every current member has
        // been yielded but membership is unreadable, wait for the
        // self-healing fault instead of forcing an illegal terminal
        // step. Driver-side omniscience; emits no region.
        if matches!(s.semantics, Semantics::Optimistic | Semantics::GrowOnly) {
            let members = ground_truth_threaded(&rt, &cref);
            let all_yielded = members.iter().all(|m| yielded.contains(m));
            if all_yielded && !membership_readable_threaded(&rt, s.read_policy, cn, &cref) {
                waits += 1;
                if waits > MAX_WAITS {
                    violations.push("driver wedged: membership never became readable".into());
                    break;
                }
                rt.sleep(ms(5));
                continue;
            }
        }

        steps += 1;
        rec.region(rt.now(), &format!("inv.{steps}"));
        match it.next(&mut rt) {
            IterStep::Yielded(obj) => {
                waits = 0;
                yielded.push(obj.id.0);
                if yielded.len() >= budget {
                    break;
                }
                rt.sleep(ms(s.think_ms));
            }
            IterStep::Done => break,
            IterStep::Failed(f) => {
                if s.semantics == Semantics::Optimistic {
                    violations.push(format!("optimistic iterator signalled failure: {f}"));
                }
                break;
            }
            IterStep::Blocked => {
                waits += 1;
                if waits > MAX_WAITS {
                    violations.push("driver wedged: iterator blocked past every heal".into());
                    break;
                }
                rt.sleep(ms(5));
            }
        }
        if steps > 4 * MAX_WAITS {
            violations.push("driver wedged: invocation budget exhausted".into());
            break;
        }
    }

    // Drain the schedule so every fault heals and every op lands.
    run_schedule(
        &mut rt,
        &rec,
        &set,
        &servers,
        &schedule,
        &mut next,
        t0,
        u64::MAX,
        true,
    );
    let drained = t0 + ms(s.horizon_ms() + 60);
    let now = rt.now();
    if now < drained {
        rt.sleep(drained.saturating_since(now));
    }

    rec.region(rt.now(), "members");
    let mut membership: Vec<u64> = client
        .read_members(&mut rt, &cref, s.read_policy)
        .map(|m| m.entries.iter().map(|e| e.elem.0).collect())
        .unwrap_or_default();
    membership.sort_unstable();
    rec.region(rt.now(), "end");

    let mut computations: Vec<Computation> = it.take_computation(&rt).into_iter().collect();
    if let Err(hung) = rt.shutdown(Duration::from_secs(10)) {
        // The shutdown hook already marked the recording truncated.
        violations.push(format!("threaded shutdown reported hung nodes: {hung:?}"));
    }

    if s.chaos == Chaos::PhantomYield {
        run::inject_phantom_yield(computations.last_mut(), &mut violations);
    }
    if computations.is_empty() {
        violations.push("observer produced no computation".into());
    }
    for comp in &computations {
        violations.extend(oracle::check(s, comp));
    }

    // Report-only ledger: names any span a crashed or wedged activity
    // left open, and counts them under `trace.unclosed_spans`.
    let unclosed = rt.finish_spans();
    if !unclosed.is_empty() {
        eprintln!(
            "record: {} span(s) left unclosed: {}",
            unclosed.len(),
            unclosed.join(", ")
        );
    }
    if !violations.is_empty() && !flight.has_dumped() {
        match flight.dump() {
            Ok(path) => eprintln!("record: flight recorder dumped to {}", path.display()),
            Err(e) => eprintln!("record: flight-recorder dump failed: {e}"),
        }
    }
    let events = rt.events_mut().take_events();
    let report = RunReport {
        seed: s.seed,
        trace_hash: 0, // real scheduling has no deterministic trace
        yielded,
        steps,
        violations,
        computations,
        sim_time_us: rt.now().as_micros(),
        metrics: Observe::metrics(&rt).clone(),
        events,
    };
    Ok(RecordedRun {
        recording: rec.finish(),
        report,
        membership,
    })
}

// ---------------------------------------------------------------------
// The replaying runtime
// ---------------------------------------------------------------------

fn is_matchable(ev: &RecEvent) -> bool {
    matches!(
        ev,
        RecEvent::Rpc { .. } | RecEvent::Send { .. } | RecEvent::WaitAny { .. }
    )
}

fn kind_name(ev: &RecEvent) -> &'static str {
    match ev {
        RecEvent::AddNode { .. } => "AddNode",
        RecEvent::InstallService { .. } => "InstallService",
        RecEvent::Region { .. } => "Region",
        RecEvent::Rpc { .. } => "Rpc",
        RecEvent::Send { .. } => "Send",
        RecEvent::TookReply { .. } => "TookReply",
        RecEvent::WaitAny { .. } => "WaitAny",
        RecEvent::Sleep { .. } => "Sleep",
        RecEvent::SpawnIn { .. } => "SpawnIn",
        RecEvent::TimerFired { .. } => "TimerFired",
        RecEvent::SetReachable { .. } => "SetReachable",
        RecEvent::SetNodeUp { .. } => "SetNodeUp",
    }
}

/// A [`Runtime`] that wraps the simulator and consumes a recording as
/// the client code re-executes: transport calls are matched against the
/// log (re-executed, substituted, or pinned), recorded fault transitions
/// are applied to the simulated topology at their log position, and
/// everything else delegates to the world.
struct ReplayRuntime {
    world: StoreWorld,
    rec: Recording,
    /// Cursor into `rec.entries`: everything before it has been
    /// consumed (replayed, applied, or skipped as informational).
    pos: usize,
    /// Recorded raw token → the simulator token minted for the same
    /// logical send, so recorded `wait_any` winners pin sim waits.
    token_map: HashMap<u64, ReplyToken>,
    divergences: Vec<String>,
    /// The cursor ran past the last entry (or up to a region boundary
    /// with nothing left) — meaningful together with `rec.truncated`.
    past_end: bool,
}

impl ReplayRuntime {
    fn diverge(&mut self, detail: impl Into<String>) {
        let detail = detail.into();
        self.world.metrics_mut().incr(names::DIVERGENCE);
        Observe::trace_event(&mut self.world, "replay.divergence", &|| detail.clone());
        self.divergences.push(detail);
    }

    /// Beyond a truncated log's end, missing counterparts are expected,
    /// not divergences: the replay free-runs the completed prefix's
    /// continuation live in the simulator.
    fn off_log(&self) -> bool {
        self.past_end && self.rec.truncated
    }

    fn apply_fault(&mut self, ev: &RecEvent) {
        match *ev {
            RecEvent::SetReachable { a, b, ok } => {
                let state = if ok {
                    LinkState::healthy()
                } else {
                    LinkState::down()
                };
                // set_link normalizes the key: one call covers both
                // directions, matching the threaded fault table.
                self.world
                    .topology_mut()
                    .set_link(NodeId(a), NodeId(b), state);
                self.world.metrics_mut().incr(names::FAULT_APPLIED);
            }
            RecEvent::SetNodeUp { node, up } => {
                if up {
                    self.world.topology_mut().restart(NodeId(node));
                } else {
                    self.world.topology_mut().crash(NodeId(node));
                }
                self.world.metrics_mut().incr(names::FAULT_APPLIED);
            }
            _ => {}
        }
    }

    /// Advances the cursor to the next transport entry, applying fault
    /// entries and skipping informational ones on the way. Stops (without
    /// consuming) at a region marker — matching never crosses regions.
    fn next_matchable(&mut self) -> Option<usize> {
        loop {
            if self.pos >= self.rec.entries.len() {
                self.past_end = true;
                return None;
            }
            let ev = self.rec.entries[self.pos].ev.clone();
            match ev {
                RecEvent::Region { .. } => return None,
                ref m if is_matchable(m) => return Some(self.pos),
                other => {
                    self.apply_fault(&other);
                    self.pos += 1;
                }
            }
        }
    }

    /// Consumes fault/informational entries up to the next marker or
    /// transport entry, so transitions recorded at a region's head take
    /// effect before the driver issues its first call.
    fn drain_passive(&mut self) {
        while self.pos < self.rec.entries.len() {
            let ev = self.rec.entries[self.pos].ev.clone();
            if matches!(ev, RecEvent::Region { .. }) || is_matchable(&ev) {
                break;
            }
            self.apply_fault(&ev);
            self.pos += 1;
        }
        if self.pos >= self.rec.entries.len() {
            self.past_end = true;
        }
    }

    /// The next region marker's label, without consuming anything.
    fn peek_region(&self) -> Option<String> {
        self.rec.entries[self.pos..]
            .iter()
            .find_map(|e| match &e.ev {
                RecEvent::Region { label } => Some(label.clone()),
                _ => None,
            })
    }

    /// Re-aligns on the next region marker, which must carry `label`:
    /// consumes through it (applying fault entries, reporting any
    /// unreplayed transport entries), pins the virtual clock to the
    /// marker's recorded timestamp, and applies the region's leading
    /// passive entries. Returns whether alignment succeeded.
    fn sync_region(&mut self, label: &str) -> bool {
        let mut marker = None;
        let mut skipped = 0usize;
        for (j, e) in self.rec.entries.iter().enumerate().skip(self.pos) {
            match &e.ev {
                RecEvent::Region { .. } => {
                    marker = Some(j);
                    break;
                }
                ev if is_matchable(ev) => skipped += 1,
                _ => {}
            }
        }
        let Some(j) = marker else {
            self.past_end = true;
            if !self.rec.truncated {
                self.diverge(format!("log ended before region '{label}'"));
            }
            return false;
        };
        let RecEvent::Region { label: got } = self.rec.entries[j].ev.clone() else {
            unreachable!("marker index points at a Region entry");
        };
        if got != label {
            self.diverge(format!("expected region '{label}', log has '{got}'"));
            return false;
        }
        if skipped > 0 {
            self.diverge(format!(
                "{skipped} recorded call(s) before region '{label}' were not re-issued"
            ));
        }
        while self.pos < j {
            let ev = self.rec.entries[self.pos].ev.clone();
            self.apply_fault(&ev);
            self.pos += 1;
        }
        let at = SimTime::from_micros(self.rec.entries[j].at_us);
        self.pos = j + 1;
        // Substitute the recorded clock: region boundaries re-occur at
        // the instants the live run observed them.
        if self.world.now() < at {
            self.world.run_until(at);
        }
        self.drain_passive();
        true
    }

    /// Consumes through the next marker unconditionally (for regions the
    /// replayer does not recognize).
    fn skip_region(&mut self) {
        while self.pos < self.rec.entries.len() {
            let at_us = self.rec.entries[self.pos].at_us;
            let ev = self.rec.entries[self.pos].ev.clone();
            self.apply_fault(&ev);
            self.pos += 1;
            if matches!(ev, RecEvent::Region { .. }) {
                let at = SimTime::from_micros(at_us);
                if self.world.now() < at {
                    self.world.run_until(at);
                }
                return;
            }
        }
        self.past_end = true;
    }
}

impl Clock for ReplayRuntime {
    fn now(&self) -> SimTime {
        self.world.now()
    }

    fn sleep(&mut self, d: SimDuration) {
        self.world.sleep(d)
    }

    fn rng_for(&self, label: &str) -> SimRng {
        self.world.rng_for(label)
    }
}

impl Observe for ReplayRuntime {
    fn metrics(&self) -> &weakset_sim::metrics::Metrics {
        self.world.metrics()
    }

    fn metrics_mut(&mut self) -> &mut weakset_sim::metrics::Metrics {
        self.world.metrics_mut()
    }

    fn span_enter(&mut self, kind: &str, detail: &dyn Fn() -> String) -> SpanId {
        Observe::span_enter(&mut self.world, kind, detail)
    }

    fn span_enter_under(
        &mut self,
        parent: Option<TraceContext>,
        kind: &str,
        detail: &dyn Fn() -> String,
    ) -> SpanId {
        Observe::span_enter_under(&mut self.world, parent, kind, detail)
    }

    fn span_exit(&mut self, id: SpanId) {
        Observe::span_exit(&mut self.world, id)
    }

    fn current_ctx(&self) -> Option<TraceContext> {
        Observe::current_ctx(&self.world)
    }

    fn trace_event(&mut self, kind: &str, detail: &dyn Fn() -> String) {
        Observe::trace_event(&mut self.world, kind, detail)
    }
}

impl Transport<StoreMsg> for ReplayRuntime {
    fn rpc(
        &mut self,
        from: NodeId,
        to: NodeId,
        msg: StoreMsg,
        timeout: SimDuration,
    ) -> Result<StoreMsg, NetError> {
        let req = hash_debug(&msg);
        let Some(i) = self.next_matchable() else {
            if !self.off_log() {
                self.diverge(format!(
                    "live rpc {from}->{to} has no recorded counterpart before the next region"
                ));
            }
            return self.world.rpc(from, to, msg, timeout);
        };
        let entry = self.rec.entries[i].ev.clone();
        let RecEvent::Rpc {
            from: rec_from,
            to: rec_to,
            req_hash,
            outcome,
            elapsed_us,
        } = entry
        else {
            self.diverge(format!(
                "live rpc {from}->{to} does not match recorded {}",
                kind_name(&entry)
            ));
            return self.world.rpc(from, to, msg, timeout);
        };
        self.pos = i + 1;
        if (rec_from, rec_to) != (from.0, to.0) {
            self.diverge(format!(
                "rpc endpoints diverge: live {from}->{to}, recorded {rec_from}->{rec_to}"
            ));
        }
        if req_hash != req {
            self.diverge(format!(
                "rpc request payload diverges ({from}->{to}): live {req:#018x}, recorded {req_hash:#018x}"
            ));
        }
        match outcome {
            RecOutcome::Ok { reply_hash } => {
                self.world.metrics_mut().incr(names::RPC_REPLAYED);
                let result = self.world.rpc(from, to, msg, timeout);
                match &result {
                    Ok(reply) => {
                        if hash_debug(reply) != reply_hash {
                            self.diverge(format!("rpc reply payload diverges ({from}->{to})"));
                        }
                    }
                    Err(e) => {
                        self.diverge(format!(
                            "recorded rpc succeeded, simulated one failed ({from}->{to}): {e}"
                        ));
                    }
                }
                result
            }
            failed => {
                // Inject the recorded failure without touching the
                // simulated network; advance the virtual clock by the
                // stall the live client observed.
                self.world.metrics_mut().incr(names::RPC_SUBSTITUTED);
                let stall = SimDuration::from_micros(elapsed_us.min(timeout.as_micros()));
                self.world.sleep(stall);
                Err(failed
                    .to_net_error()
                    .expect("non-Ok outcome maps to an error"))
            }
        }
    }

    fn send(&mut self, from: NodeId, to: NodeId, msg: StoreMsg) -> ReplyToken {
        let req = hash_debug(&msg);
        let Some(i) = self.next_matchable() else {
            if !self.off_log() {
                self.diverge(format!(
                    "live send {from}->{to} has no recorded counterpart before the next region"
                ));
            }
            return self.world.send(from, to, msg);
        };
        let entry = self.rec.entries[i].ev.clone();
        let RecEvent::Send {
            from: rec_from,
            to: rec_to,
            req_hash,
            token,
        } = entry
        else {
            self.diverge(format!(
                "live send {from}->{to} does not match recorded {}",
                kind_name(&entry)
            ));
            return self.world.send(from, to, msg);
        };
        self.pos = i + 1;
        if (rec_from, rec_to) != (from.0, to.0) {
            self.diverge(format!(
                "send endpoints diverge: live {from}->{to}, recorded {rec_from}->{rec_to}"
            ));
        }
        if req_hash != req {
            self.diverge(format!("send payload diverges ({from}->{to})"));
        }
        let sim = self.world.send(from, to, msg);
        self.token_map.insert(token, sim);
        sim
    }

    fn send_batch(&mut self, from: NodeId, to: NodeId, parts: Vec<StoreMsg>) -> ReplyToken {
        // Mirror the threaded backend: one wrapped envelope, one Send
        // entry in the log.
        self.world.metrics_mut().incr("net.batch.envelopes");
        self.world
            .metrics_mut()
            .add("net.batch.parts", parts.len() as u64);
        Transport::send(self, from, to, StoreMsg::wrap_batch(parts))
    }

    fn try_take_reply(&mut self, token: ReplyToken) -> Option<Result<StoreMsg, NetError>> {
        // Recorded TookReply entries are informational; availability is
        // pinned by wait_any winners.
        self.world.try_take_reply(token)
    }

    fn wait_any(&mut self, tokens: &[ReplyToken], deadline: SimTime) -> Option<ReplyToken> {
        let Some(i) = self.next_matchable() else {
            if !self.off_log() {
                self.diverge(
                    "live wait_any has no recorded counterpart before the next region".to_string(),
                );
            }
            return self.world.wait_any(tokens, deadline);
        };
        let entry = self.rec.entries[i].ev.clone();
        let RecEvent::WaitAny { winner, elapsed_us } = entry else {
            self.diverge(format!(
                "live wait_any does not match recorded {}",
                kind_name(&entry)
            ));
            return self.world.wait_any(tokens, deadline);
        };
        self.pos = i + 1;
        match winner {
            Some(raw) => match self.token_map.get(&raw).copied() {
                Some(sim_tok) if tokens.contains(&sim_tok) => {
                    self.world.metrics_mut().incr(names::WAIT_PINNED);
                    // Pin the wait to the recorded winner, with a
                    // generous horizon — the sim may deliver on a
                    // different schedule than the wall clock did.
                    let horizon =
                        self.world.now() + SimDuration::from_micros(elapsed_us) + ms(60_000);
                    let got = self.world.wait_any(&[sim_tok], horizon);
                    if got.is_none() {
                        self.diverge(format!(
                            "pinned wait_any winner (recorded token {raw}) never completed in sim"
                        ));
                    }
                    got
                }
                _ => {
                    self.diverge(format!(
                        "recorded wait_any winner {raw} is not among the live tokens"
                    ));
                    self.world.wait_any(tokens, deadline)
                }
            },
            None => {
                // Recorded deadline expiry: substitute it, advancing the
                // clock to the caller's deadline. Completions stay
                // queued for later try_take_reply calls.
                if self.world.now() < deadline {
                    self.world.run_until(deadline);
                }
                None
            }
        }
    }

    /// Matches the threaded backend's estimate (zero), so closest-first
    /// candidate ordering falls back to the same id tie-break on replay.
    fn estimate_latency(&self, _a: NodeId, _b: NodeId) -> SimDuration {
        SimDuration::ZERO
    }
}

impl ServiceHost<StoreMsg> for ReplayRuntime {
    fn install_service(&mut self, node: NodeId, svc: Box<dyn Service<StoreMsg> + Send>) {
        self.world.install_service(node, svc);
    }

    fn with_service_any(&self, node: NodeId, f: &mut dyn FnMut(&dyn std::any::Any)) -> bool {
        ServiceHost::with_service_any(&self.world, node, f)
    }

    fn with_service_any_mut(
        &mut self,
        node: NodeId,
        f: &mut dyn FnMut(&mut dyn std::any::Any),
    ) -> bool {
        ServiceHost::with_service_any_mut(&mut self.world, node, f)
    }

    fn is_up(&self, node: NodeId) -> bool {
        ServiceHost::is_up(&self.world, node)
    }

    fn reachable(&self, from: NodeId, to: NodeId) -> bool {
        ServiceHost::reachable(&self.world, from, to)
    }
}

/// Bridges a backend-agnostic task onto the simulator's queue. Spawned
/// tasks run against the bare world (not the replayer): nothing in a
/// Plain deployment spawns, so recorded `TimerFired` entries stay
/// informational.
struct TaskAdapter(Box<dyn RtTask<StoreMsg>>);

impl Task<StoreMsg> for TaskAdapter {
    fn label(&self) -> &str {
        self.0.label()
    }

    fn run(self: Box<Self>, world: &mut StoreWorld) {
        let rt: &mut dyn Runtime<StoreMsg> = world;
        self.0.run(rt)
    }
}

impl Spawner<StoreMsg> for ReplayRuntime {
    fn spawn_in(&mut self, d: SimDuration, task: Box<dyn RtTask<StoreMsg>>) {
        self.world.spawn_in(d, TaskAdapter(task));
    }
}

// ---------------------------------------------------------------------
// Replay driver (simulated backend)
// ---------------------------------------------------------------------

fn apply_op_replay(rt: &mut ReplayRuntime, set: &WeakSet, servers: &[NodeId], op: Op) {
    match op {
        Op::Add { elem, home, .. } => {
            let obj = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
            let _ = set.add(rt, obj, servers[home % servers.len()]);
        }
        Op::Remove { elem, .. } => {
            let _ = set.remove(rt, ObjectId(elem));
        }
    }
}

/// Replays a recording through the deterministic simulator and checks
/// the conformance oracles over the replayed computation.
///
/// The embedded workload re-drives the same client code the live run
/// executed, region by region in *log* order; the recorded
/// nondeterminism is substituted as described in the module docs. The
/// result is a pure function of the recording: replaying twice yields
/// byte-identical traces (equal [`RunReport::trace_hash`]), which is the
/// determinism certificate CI asserts.
///
/// # Errors
///
/// An unparsable embedded workload, a non-`Plain` deployment, or a node
/// roster that does not fit the workload.
pub fn replay_recording(rec: &Recording) -> Result<ReplayReport, String> {
    let s = Scenario::from_ron(&rec.workload).map_err(|e| format!("embedded workload: {e}"))?;
    if s.deployment != Deployment::Plain {
        return Err("record/replay v1 drives Plain deployments only".into());
    }
    let n = s.servers.max(1);
    if rec.nodes.len() != n + 1 {
        return Err(format!(
            "recording has {} node(s), the workload needs {} (client + {n} servers)",
            rec.nodes.len(),
            n + 1
        ));
    }

    // Rebuild the fleet in recorded creation order, so node ids match
    // the raw ids in the log.
    let mut t = Topology::new();
    let ids: Vec<NodeId> = rec
        .nodes
        .iter()
        .enumerate()
        .map(|(i, name)| t.add_node(name.clone(), i as u32))
        .collect();
    let cn = ids[0];
    let servers: Vec<NodeId> = ids[1..].to_vec();
    let mut world = StoreWorld::new(
        WorldConfig::seeded(rec.seed),
        t,
        LatencyModel::Constant(ms(1)),
    );
    world.events_mut().set_enabled(true);
    for &server in &servers {
        world.install_service(server, Box::new(StoreServer::new()));
    }
    let mut rt = ReplayRuntime {
        world,
        rec: rec.clone(),
        pos: 0,
        token_map: HashMap::new(),
        divergences: Vec::new(),
        past_end: false,
    };

    let mut violations: Vec<String> = Vec::new();
    let client = StoreClient::new(cn, ms(50));
    let config = IterConfig {
        read_policy: s.read_policy,
        fetch_order: s.fetch_order,
        guard_growth: s.guard_growth,
        ..IterConfig::default()
    };
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    // The prelude's rpcs are the first matchable entries in the log.
    if let Err(e) = client.create_collection(&mut rt, &cref) {
        rt.diverge(format!("create_collection failed on replay: {e:?}"));
    }
    let set = WeakSet::new(client.clone(), cref.clone()).with_config(config);

    let ops_by_label: HashMap<String, Op> = s.ops.iter().map(|o| (op_label(o), *o)).collect();

    let mut halted = false;
    for &(elem, home) in &s.setup {
        let label = setup_label(elem, home);
        match rt.peek_region() {
            Some(l) if l == label => {
                rt.sync_region(&label);
                let obj = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
                let _ = set.add(&mut rt, obj, servers[home % n]);
            }
            Some(other) => {
                rt.diverge(format!(
                    "expected setup region '{label}', log has '{other}'"
                ));
                rt.skip_region();
            }
            None => {
                if !rec.truncated {
                    rt.diverge(format!("log ends before setup region '{label}'"));
                }
                halted = true;
                break;
            }
        }
    }

    // Pre-start schedule: ops and fault transitions the live driver
    // applied before iteration began, in log order.
    while !halted {
        match rt.peek_region() {
            None => {
                if !rec.truncated {
                    rt.diverge("log ends before the start region".to_string());
                }
                halted = true;
            }
            Some(l) if l == "start" => {
                rt.sync_region("start");
                break;
            }
            Some(l) if l.starts_with("fault.") => {
                rt.sync_region(&l);
            }
            Some(l) if l.starts_with("op.") => {
                rt.sync_region(&l);
                match ops_by_label.get(&l) {
                    Some(&op) => apply_op_replay(&mut rt, &set, &servers, op),
                    None => rt.diverge(format!("recorded op region '{l}' is not in the workload")),
                }
            }
            Some(l) => {
                rt.diverge(format!("unexpected region '{l}' before start"));
                rt.skip_region();
            }
        }
    }

    let mut it = set.elements_observed(s.semantics);
    let mut yielded: Vec<u64> = Vec::new();
    let mut steps = 0usize;
    loop {
        if halted {
            break;
        }
        match rt.peek_region() {
            None => break,
            Some(l) if l == "members" || l == "end" => break,
            Some(l) if l.starts_with("fault.") => {
                rt.sync_region(&l);
            }
            Some(l) if l.starts_with("op.") => {
                rt.sync_region(&l);
                match ops_by_label.get(&l) {
                    Some(&op) => apply_op_replay(&mut rt, &set, &servers, op),
                    None => rt.diverge(format!("recorded op region '{l}' is not in the workload")),
                }
            }
            Some(l) if l.starts_with("inv.") => {
                rt.sync_region(&l);
                steps += 1;
                match it.next(&mut rt) {
                    IterStep::Yielded(obj) => {
                        yielded.push(obj.id.0);
                        rt.sleep(ms(s.think_ms));
                    }
                    IterStep::Done => {}
                    IterStep::Failed(f) => {
                        if s.semantics == Semantics::Optimistic {
                            violations.push(format!("optimistic iterator signalled failure: {f}"));
                        }
                    }
                    IterStep::Blocked => rt.sleep(ms(5)),
                }
            }
            Some(l) => {
                rt.diverge(format!("unexpected region '{l}'"));
                rt.skip_region();
            }
        }
    }

    let mut membership: Vec<u64> = Vec::new();
    if rt.peek_region().as_deref() == Some("members") {
        rt.sync_region("members");
        membership = client
            .read_members(&mut rt, &cref, s.read_policy)
            .map(|m| m.entries.iter().map(|e| e.elem.0).collect())
            .unwrap_or_default();
        membership.sort_unstable();
    } else if !rec.truncated {
        rt.diverge("log ended without a members region".to_string());
    }
    if rt.peek_region().as_deref() == Some("end") {
        rt.sync_region("end");
    } else if !rec.truncated {
        rt.diverge("log ended without an end region".to_string());
    }

    // Anything still unconsumed means the replay issued fewer calls
    // than the live run — a divergence unless the log is truncated.
    let leftover = rt.rec.entries[rt.pos..]
        .iter()
        .filter(|e| is_matchable(&e.ev))
        .count();
    if leftover > 0 && !rt.rec.truncated {
        rt.diverge(format!(
            "{leftover} recorded call(s) were never re-issued by the replay"
        ));
    }

    rt.world.run_to_quiescence();
    let mut computations: Vec<Computation> = it.take_computation(&rt).into_iter().collect();
    if s.chaos == Chaos::PhantomYield {
        run::inject_phantom_yield(computations.last_mut(), &mut violations);
    }
    if computations.is_empty() {
        violations.push("observer produced no computation".into());
    }
    for comp in &computations {
        violations.extend(oracle::check(&s, comp));
    }

    let consumed = rt.pos as u64;
    rt.world
        .metrics_mut()
        .add(names::ENTRIES_CONSUMED, consumed);
    let at = rt.world.now().as_micros();
    let unclosed = rt.world.events_mut().finish(at);
    if !unclosed.is_empty() {
        let detail = format!("{} span(s) left open at end of replay", unclosed.len());
        rt.diverge(detail);
    }
    let events = rt.world.events_mut().take_events();
    let report = RunReport {
        seed: rec.seed,
        trace_hash: rt.world.trace_hash(),
        yielded,
        steps,
        violations,
        computations,
        sim_time_us: rt.world.now().as_micros(),
        metrics: rt.world.metrics().clone(),
        events,
    };
    Ok(ReplayReport {
        report,
        membership,
        divergences: rt.divergences,
    })
}

// ---------------------------------------------------------------------
// Shrinking the recording
// ---------------------------------------------------------------------

/// Removes every region whose marker carries one of `labels`: the
/// marker and everything after it up to the next marker.
fn remove_regions(
    entries: &[weakset_runtime::record::RecEntry],
    labels: &[String],
) -> Vec<weakset_runtime::record::RecEntry> {
    let mut out = Vec::new();
    let mut dropping = false;
    for e in entries {
        if let RecEvent::Region { label } = &e.ev {
            dropping = labels.iter().any(|l| l == label);
        }
        if !dropping {
            out.push(e.clone());
        }
    }
    out
}

#[derive(Clone, Copy)]
enum Field {
    Faults,
    Ops,
    Setup,
}

fn field_len(s: &Scenario, field: Field) -> usize {
    match field {
        Field::Faults => s.faults.len(),
        Field::Ops => s.ops.len(),
        Field::Setup => s.setup.len(),
    }
}

/// Drops workload item `i` of `field` from both the scenario and the
/// recording: the item leaves the embedded workload, and its regions
/// (by intrinsic label) leave the log.
fn drop_item(rec: &Recording, s: &Scenario, field: Field, i: usize) -> (Recording, Scenario) {
    let mut s2 = s.clone();
    let labels: Vec<String> = match field {
        Field::Faults => {
            let f = s2.faults.remove(i);
            expand_one(&f, s2.servers.max(1))
                .into_iter()
                .map(|t| t.label)
                .collect()
        }
        Field::Ops => {
            let o = s2.ops.remove(i);
            vec![op_label(&o)]
        }
        Field::Setup => {
            let (elem, home) = s2.setup.remove(i);
            vec![setup_label(elem, home)]
        }
    };
    let mut r2 = rec.clone();
    r2.workload = s2.to_ron();
    r2.entries = remove_regions(&rec.entries, &labels);
    (r2, s2)
}

/// Greedily shrinks a violating recording: repeatedly drop one fault,
/// op, or setup element (excising its log regions along with the
/// workload item) and keep the candidate iff its replay still violates
/// an oracle. Returns the smallest recording found and the number of
/// replays spent. A non-violating (or unparsable) input is returned
/// unchanged.
pub fn shrink_recording(rec: &Recording) -> (Recording, usize) {
    let mut execs = 0usize;
    let violating = |r: &Recording, execs: &mut usize| -> bool {
        *execs += 1;
        replay_recording(r)
            .map(|rep| !rep.report.violations.is_empty())
            .unwrap_or(false)
    };
    let mut best = rec.clone();
    if !violating(&best, &mut execs) {
        return (best, execs);
    }
    let Ok(mut s) = Scenario::from_ron(&best.workload) else {
        return (best, execs);
    };
    loop {
        let mut progressed = false;
        for field in [Field::Faults, Field::Ops, Field::Setup] {
            let mut i = 0usize;
            while i < field_len(&s, field) {
                if execs >= MAX_EXECUTIONS {
                    return (best, execs);
                }
                let (cand_rec, cand_s) = drop_item(&best, &s, field, i);
                if violating(&cand_rec, &mut execs) {
                    best = cand_rec;
                    s = cand_s;
                    progressed = true;
                } else {
                    i += 1;
                }
            }
        }
        if !progressed {
            return (best, execs);
        }
    }
}

// ---------------------------------------------------------------------
// Artifact files
// ---------------------------------------------------------------------

/// Where a recording with the given id lives under `dir`
/// (`rec-<id>.ron`, next to the scenario repro artifacts).
pub fn rec_path(dir: &Path, id: u64) -> PathBuf {
    dir.join(format!("rec-{id}.ron"))
}

/// Writes the recording to [`rec_path`]`(dir, recording.seed)`,
/// creating `dir` when needed.
///
/// # Errors
///
/// Propagates filesystem errors as human-readable strings.
pub fn write_recording(dir: &Path, rec: &Recording) -> Result<PathBuf, String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("create {}: {e}", dir.display()))?;
    let path = rec_path(dir, rec.seed);
    std::fs::write(&path, rec.to_ron()).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(path)
}

/// Loads a recording artifact.
///
/// # Errors
///
/// Filesystem errors and parse failures (including an unsupported
/// schema version), as human-readable strings.
pub fn load_recording(path: &Path) -> Result<Recording, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Recording::from_ron(&text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset_runtime::record::RecEntry;

    #[test]
    fn partition_expansion_cuts_the_client_too() {
        let f = FaultSpec::Partition {
            at_ms: 10,
            side: vec![0],
            for_ms: 20,
        };
        let ts = expand_one(&f, 2);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts[0].label, "fault.part.10.0.20.cut");
        assert_eq!(ts[1].label, "fault.part.10.0.20.heal");
        assert_eq!(ts[1].at_ms, 30);
        // Side {server 0} = node 1; complement = {client 0, node 2}.
        assert_eq!(
            ts[0].acts,
            vec![
                TAct::Link {
                    a: 1,
                    b: 0,
                    ok: false
                },
                TAct::Link {
                    a: 1,
                    b: 2,
                    ok: false
                },
            ]
        );
        assert!(ts[1]
            .acts
            .iter()
            .all(|a| matches!(a, TAct::Link { ok: true, .. })));
    }

    #[test]
    fn flap_expands_one_transition_pair_per_cycle() {
        let f = FaultSpec::Flap {
            at_ms: 5,
            a: 0,
            b: 1,
            down_ms: 2,
            up_ms: 3,
            cycles: 2,
        };
        let ts = expand_one(&f, 3);
        assert_eq!(ts.len(), 4);
        assert_eq!(
            ts.iter().map(|t| t.at_ms).collect::<Vec<_>>(),
            vec![5, 7, 10, 12]
        );
        assert_eq!(ts[0].label, "fault.flap.5.0.1.0.down");
        assert_eq!(ts[3].label, "fault.flap.5.0.1.1.up");
    }

    #[test]
    fn outage_maps_server_index_to_global_node() {
        let f = FaultSpec::Outage {
            at_ms: 1,
            node: 4, // wraps: 4 % 3 = server 1 = global node 2
            for_ms: 9,
        };
        let ts = expand_one(&f, 3);
        assert_eq!(ts[0].acts, vec![TAct::Node { node: 2, up: false }]);
        assert_eq!(ts[1].acts, vec![TAct::Node { node: 2, up: true }]);
    }

    #[test]
    fn schedule_orders_by_due_time_transitions_first() {
        let s = Scenario {
            seed: 1,
            servers: 2,
            deployment: Deployment::Plain,
            semantics: Semantics::Snapshot,
            read_policy: ReadPolicy::Primary,
            guard_growth: false,
            fetch_order: weakset::prelude::FetchOrder::IdOrder,
            think_ms: 1,
            budget: 8,
            start_ms: 10,
            setup: vec![],
            ops: vec![Op::Add {
                at_ms: 5,
                elem: 9,
                home: 0,
            }],
            faults: vec![FaultSpec::Outage {
                at_ms: 5,
                node: 0,
                for_ms: 3,
            }],
            chaos: Chaos::None,
        };
        let sched = build_schedule(&s);
        assert_eq!(sched.len(), 3); // down, up, add
        assert!(matches!(&sched[0], SchedItem::Trans(t) if t.at_ms == 5));
        assert!(matches!(&sched[1], SchedItem::Op(_)));
        assert!(matches!(&sched[2], SchedItem::Trans(t) if t.at_ms == 8));
    }

    #[test]
    fn remove_regions_excises_marker_and_body() {
        let region = |label: &str| RecEntry {
            at_us: 0,
            ev: RecEvent::Region {
                label: label.into(),
            },
        };
        let rpc = |h: u64| RecEntry {
            at_us: 0,
            ev: RecEvent::Rpc {
                from: 0,
                to: 1,
                req_hash: h,
                outcome: RecOutcome::Timeout,
                elapsed_us: 0,
            },
        };
        let entries = vec![
            rpc(1), // preamble, before any region: always kept
            region("setup.1.0"),
            rpc(2),
            region("op.5.add.9.0"),
            rpc(3),
            region("end"),
        ];
        let kept = remove_regions(&entries, &["setup.1.0".to_string()]);
        assert_eq!(kept.len(), 4);
        assert!(matches!(&kept[0].ev, RecEvent::Rpc { req_hash: 1, .. }));
        assert!(matches!(&kept[1].ev, RecEvent::Region { label } if label == "op.5.add.9.0"));
        assert!(matches!(&kept[2].ev, RecEvent::Rpc { req_hash: 3, .. }));
        assert!(matches!(&kept[3].ev, RecEvent::Region { label } if label == "end"));
    }

    #[test]
    fn op_labels_are_intrinsic_and_distinct() {
        let add = Op::Add {
            at_ms: 7,
            elem: 3,
            home: 1,
        };
        let rm = Op::Remove { at_ms: 7, elem: 3 };
        assert_eq!(op_label(&add), "op.7.add.3.1");
        assert_eq!(op_label(&rm), "op.7.rm.3");
        assert_ne!(op_label(&add), op_label(&rm));
        assert_eq!(setup_label(3, 1), "setup.3.1");
    }

    #[test]
    fn recording_artifacts_round_trip_on_disk() {
        let dir = std::env::temp_dir().join(format!("weakset-replay-test-{}", std::process::id()));
        let rec = Recording {
            schema_version: weakset_runtime::record::SCHEMA_VERSION,
            seed: 77,
            truncated: false,
            nodes: vec!["client".into(), "s0".into()],
            workload: "Scenario(\n)".into(),
            entries: vec![RecEntry {
                at_us: 3,
                ev: RecEvent::Region {
                    label: "start".into(),
                },
            }],
        };
        let path = write_recording(&dir, &rec).unwrap();
        assert_eq!(path, rec_path(&dir, 77));
        assert!(path.file_name().unwrap().to_str().unwrap() == "rec-77.ron");
        let back = load_recording(&path).unwrap();
        assert_eq!(back, rec);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn replay_rejects_non_plain_and_bad_rosters() {
        let s = Scenario {
            seed: 1,
            servers: 2,
            deployment: Deployment::Gossip {
                grow_only: false,
                merkle: false,
            },
            semantics: Semantics::Snapshot,
            read_policy: ReadPolicy::Primary,
            guard_growth: false,
            fetch_order: weakset::prelude::FetchOrder::IdOrder,
            think_ms: 1,
            budget: 8,
            start_ms: 10,
            setup: vec![],
            ops: vec![],
            faults: vec![],
            chaos: Chaos::None,
        };
        assert!(record_scenario(&s).is_err());
        let rec = Recording {
            schema_version: weakset_runtime::record::SCHEMA_VERSION,
            seed: 1,
            truncated: false,
            nodes: vec!["client".into()],
            workload: s.to_ron(),
            entries: vec![],
        };
        assert!(replay_recording(&rec).unwrap_err().contains("Plain"));
        let plain = Scenario {
            deployment: Deployment::Plain,
            ..s
        };
        let rec = Recording {
            workload: plain.to_ron(),
            ..rec
        };
        // 1 node recorded, workload needs client + 2 servers.
        assert!(replay_recording(&rec).unwrap_err().contains("node"));
    }
}
