//! The deterministic executor: build a world from a [`Scenario`], drive
//! one observed iterator run through the scheduled workload and fault
//! schedule, and machine-check the recorded history.
//!
//! Everything is a pure function of the scenario — the simulator clock,
//! RNG streams, fault schedule and workload are all seeded from it — so
//! two executions of the same scenario produce byte-identical traces
//! ([`RunReport::trace_hash`]). That determinism is what makes shrinking
//! (`shrink`) and repro artifacts (`repro`) possible.
//!
//! Workload ops are applied at *invocation boundaries* through ordinary
//! client RPCs (never by poking server state directly), so every
//! linearization the conformance observer reconstructs is one the client
//! could really have seen; op errors are deliberately ignored — a locked
//! or guarded collection rejecting a mutation is the semantics working,
//! and a crashed primary timing one out is the fault schedule working.

use crate::oracle;
use crate::scenario::{Chaos, Deployment, FaultSpec, Op, Scenario};
use weakset::prelude::{
    Elements, Failure, HistorySource, IterConfig, IterStep, Semantics, ShardGroup, ShardedElements,
    ShardedWeakSet, WeakSet,
};
use weakset_gossip::prelude::{engine, DigestMode, GossipConfig, GossipNode, GossipSemantics};
use weakset_sim::fault::FaultPlan;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_spec::prelude::{Computation, ElemId, Invocation, Outcome, SetValue};
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreServer, StoreWorld};

/// The collection every scenario iterates over.
pub const COLL: CollectionId = CollectionId(1);

/// Bound on driver patience: how many 5 ms waits the driver tolerates
/// while blocked or stalled before declaring the run wedged. All
/// generated faults self-heal well inside this window.
const MAX_WAITS: usize = 400;

/// What one execution produced.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// The scenario seed.
    pub seed: u64,
    /// FNV-1a hash of the full simulator trace — byte-identical traces
    /// hash equal, so equal hashes across two executions certify
    /// determinism.
    pub trace_hash: u64,
    /// Element ids yielded, in yield order.
    pub yielded: Vec<u64>,
    /// Iterator invocations issued (including blocked ones).
    pub steps: usize,
    /// Every oracle violation, human-readable. Empty means the run
    /// conformed to its figure.
    pub violations: Vec<String>,
    /// The recorded computations, for post-mortems: one per shard under
    /// a sharded deployment, at most one otherwise.
    pub computations: Vec<Computation>,
    /// Simulated time consumed by the run, in microseconds.
    pub sim_time_us: u64,
    /// The world's full metrics registry at end of run — every counter,
    /// gauge, and latency the instrumented stack recorded.
    pub metrics: weakset_sim::metrics::Metrics,
    /// The full causal event stream (spans + attributed point events)
    /// the run produced. Feed it to [`weakset_sim::metrics::CausalDag`]
    /// for critical-path analysis, [`crate::explain::explain`] for a
    /// conformance-failure post-mortem, or
    /// [`weakset_sim::metrics::chrome_trace`] for a Perfetto export.
    pub events: Vec<weakset_sim::metrics::ObsEvent>,
}

fn ms(v: u64) -> SimDuration {
    SimDuration::from_millis(v)
}

/// The set under test: one plain collection, or a routed sharded set.
/// Every workload mutation and iterator invocation goes through this, so
/// the driver is deployment-agnostic past construction.
enum TestSet {
    One(WeakSet),
    Sharded(ShardedWeakSet),
}

impl TestSet {
    fn add(&self, w: &mut StoreWorld, rec: ObjectRecord, home: NodeId) -> Result<(), Failure> {
        match self {
            TestSet::One(s) => s.add(w, rec, home),
            TestSet::Sharded(s) => s.add(w, rec, home),
        }
    }

    fn remove(&self, w: &mut StoreWorld, elem: ObjectId) -> Result<(), Failure> {
        match self {
            TestSet::One(s) => s.remove(w, elem),
            TestSet::Sharded(s) => s.remove(w, elem),
        }
    }

    /// The single underlying set (gossip deployments are never sharded).
    fn single(&self) -> &WeakSet {
        match self {
            TestSet::One(s) => s,
            TestSet::Sharded(_) => unreachable!("sharded deployments have no single collection"),
        }
    }

    fn elements_observed(&self, semantics: Semantics) -> TestElements {
        match self {
            TestSet::One(s) => TestElements::One(Box::new(s.elements_observed(semantics))),
            TestSet::Sharded(s) => TestElements::Sharded(s.elements_observed(semantics)),
        }
    }
}

/// The observed iterator under test: a single run, or a fan-out across
/// shards (one observed run per shard).
enum TestElements {
    One(Box<Elements>),
    Sharded(ShardedElements),
}

impl TestElements {
    fn next(&mut self, w: &mut StoreWorld) -> IterStep {
        match self {
            TestElements::One(it) => it.next(w),
            TestElements::Sharded(it) => it.next(w),
        }
    }

    fn take_computations(&mut self, w: &StoreWorld) -> Vec<Computation> {
        match self {
            TestElements::One(it) => it.take_computation(w).into_iter().collect(),
            TestElements::Sharded(it) => it.take_computations(w),
        }
    }
}

/// Applies every op scheduled at or before `limit_ms`, advancing the
/// clock to each op's due time first. Used before the run starts and to
/// drain leftovers after it ends.
fn advance_and_apply(
    w: &mut StoreWorld,
    set: &TestSet,
    servers: &[NodeId],
    ops: &[Op],
    next: &mut usize,
    t0: SimTime,
    limit_ms: u64,
) {
    while *next < ops.len() && ops[*next].at_ms() <= limit_ms {
        let due = t0 + ms(ops[*next].at_ms());
        if w.now() < due {
            w.run_until(due);
        }
        apply_op(w, set, servers, ops[*next]);
        *next += 1;
    }
}

/// Applies every op whose due time has already passed, without advancing
/// the clock. Used between iterator invocations.
fn apply_due(
    w: &mut StoreWorld,
    set: &TestSet,
    servers: &[NodeId],
    ops: &[Op],
    next: &mut usize,
    t0: SimTime,
) {
    let elapsed_ms = w.now().saturating_since(t0).as_millis();
    while *next < ops.len() && ops[*next].at_ms() <= elapsed_ms {
        apply_op(w, set, servers, ops[*next]);
        *next += 1;
    }
}

fn apply_op(w: &mut StoreWorld, set: &TestSet, servers: &[NodeId], op: Op) {
    match op {
        Op::Add { elem, home, .. } => {
            let rec = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
            let _ = set.add(w, rec, servers[home % servers.len()]);
        }
        Op::Remove { elem, .. } => {
            let _ = set.remove(w, ObjectId(elem));
        }
    }
}

/// The current membership as the shard primaries hold it, read
/// omnisciently (driver-side ground truth, never visible to the iterator
/// under test). For a sharded set: the union over the shard homes.
fn ground_truth_members(w: &StoreWorld, s: &Scenario, set: &TestSet) -> Vec<u64> {
    let read_home = |home: NodeId, coll: CollectionId| -> Vec<u64> {
        let mut out = Vec::new();
        match s.deployment {
            Deployment::Plain | Deployment::Sharded { .. } => {
                if let Some(c) = w
                    .service::<StoreServer>(home)
                    .and_then(|sv| sv.collection(coll))
                {
                    out = c.snapshot().iter().map(|m| m.elem.0).collect();
                }
            }
            Deployment::Gossip { .. } => {
                GossipNode::visit_collection_history(w, home, coll, &mut |c| {
                    out = c.snapshot().iter().map(|m| m.elem.0).collect();
                });
            }
        }
        out
    };
    match set {
        TestSet::One(ws) => read_home(ws.cref().home, ws.cref().id),
        TestSet::Sharded(ss) => (0..ss.shard_count())
            .flat_map(|i| {
                let cref = ss.shard(i).cref();
                read_home(cref.home, cref.id)
            })
            .collect(),
    }
}

/// Whether a membership read under `policy` can currently succeed, judged
/// omnisciently from the topology.
fn membership_readable(
    w: &StoreWorld,
    policy: ReadPolicy,
    client: NodeId,
    cref: &CollectionRef,
) -> bool {
    let t = w.topology();
    let live = |n: NodeId| t.is_up(n) && t.reachable(client, n);
    match policy {
        ReadPolicy::Primary => live(cref.home),
        ReadPolicy::Quorum => {
            let all = cref.all_nodes();
            all.iter().filter(|&&n| live(n)).count() * 2 > all.len()
        }
        ReadPolicy::Any | ReadPolicy::Leaderless => cref.all_nodes().iter().any(|&n| live(n)),
        // Conservative: the generator serializes every mutation at the
        // home node, so a live home always dominates the session floor.
        // A laggard-only view may or may not satisfy it — wait it out.
        ReadPolicy::CausalSession => live(cref.home),
    }
}

/// The causal-session floors the oracle will demand of each recorded
/// run, one per shard computation (a single entry otherwise): the
/// elements the session had committed at run start, read omnisciently
/// from the shard primaries, minus anything the workload ever tries to
/// remove (a concurrent removal legitimately hides the element). The
/// iterator must yield everything else before claiming the set drained —
/// that is read-your-writes, machine-checked.
fn session_floors(w: &StoreWorld, s: &Scenario, set: &TestSet) -> Vec<SetValue> {
    let removed: std::collections::BTreeSet<u64> = s
        .ops
        .iter()
        .filter_map(|op| match op {
            Op::Remove { elem, .. } => Some(*elem),
            _ => None,
        })
        .collect();
    let floor_of = |members: Vec<u64>| -> SetValue {
        members
            .into_iter()
            .filter(|e| !removed.contains(e))
            .map(ElemId)
            .collect()
    };
    match set {
        TestSet::One(_) => vec![floor_of(ground_truth_members(w, s, set))],
        TestSet::Sharded(ss) => (0..ss.shard_count())
            .map(|i| {
                let cref = ss.shard(i).cref();
                let members = w
                    .service::<StoreServer>(cref.home)
                    .and_then(|sv| sv.collection(cref.id))
                    .map(|c| c.snapshot().iter().map(|m| m.elem.0).collect())
                    .unwrap_or_default();
                floor_of(members)
            })
            .collect(),
    }
}

/// [`membership_readable`] over every collection the set spans (a
/// sharded read needs every shard readable).
fn all_membership_readable(
    w: &StoreWorld,
    policy: ReadPolicy,
    client: NodeId,
    set: &TestSet,
) -> bool {
    match set {
        TestSet::One(ws) => membership_readable(w, policy, client, ws.cref()),
        TestSet::Sharded(ss) => (0..ss.shard_count())
            .all(|i| membership_readable(w, policy, client, ss.shard(i).cref())),
    }
}

fn build_plan(s: &Scenario, servers: &[NodeId], t0: SimTime) -> FaultPlan {
    let node = |i: usize| servers[i % servers.len()];
    let mut plan = FaultPlan::none();
    for f in &s.faults {
        plan = match f {
            FaultSpec::Outage {
                at_ms,
                node: n,
                for_ms,
            } => plan.outage(t0 + ms(*at_ms), node(*n), ms(*for_ms)),
            FaultSpec::Partition {
                at_ms,
                side,
                for_ms,
            } => {
                let side: Vec<NodeId> = side.iter().map(|&i| node(i)).collect();
                plan.partition_window(t0 + ms(*at_ms), &side, ms(*for_ms))
            }
            FaultSpec::Flap {
                at_ms,
                a,
                b,
                down_ms,
                up_ms,
                cycles,
            } => plan.flap_link(
                t0 + ms(*at_ms),
                node(*a),
                node(*b),
                ms(*down_ms),
                ms(*up_ms),
                *cycles,
            ),
        };
    }
    plan
}

/// Executes a scenario end to end and checks every oracle. Deterministic:
/// same scenario in, same [`RunReport`] (including `trace_hash`) out.
pub fn execute(s: &Scenario) -> RunReport {
    let mut violations: Vec<String> = Vec::new();

    // World and deployment.
    let mut t = Topology::new();
    let cn = t.add_node("client", 0);
    let servers: Vec<NodeId> = t.add_servers("s", s.servers.max(1));
    let mut w = StoreWorld::new(
        WorldConfig::seeded(s.seed),
        t,
        LatencyModel::Constant(ms(1)),
    );
    // Record the causal event stream: explain mode and the Perfetto
    // exporter both read it off the report. Pure observation — enabling
    // it never touches the RNG or the event queue, so trace hashes are
    // unchanged.
    w.events_mut().set_enabled(true);
    match s.deployment {
        Deployment::Plain | Deployment::Sharded { .. } => {
            for &sv in &servers {
                w.install_service(sv, Box::new(StoreServer::new()));
            }
        }
        Deployment::Gossip { grow_only, .. } => {
            let gsem = if grow_only {
                GossipSemantics::GrowOnly
            } else {
                GossipSemantics::GrowShrink
            };
            for &sv in &servers {
                w.install_service(
                    sv,
                    Box::new(GossipNode::new(sv).with_default_semantics(gsem)),
                );
            }
        }
    }
    let mut client = StoreClient::new(cn, ms(50));
    if s.read_policy == ReadPolicy::CausalSession {
        // One shared session token across the client, every shard clone,
        // and the iterator: its writes become the floors the oracle
        // enforces below.
        client = client.with_session();
    }
    let config = IterConfig {
        read_policy: s.read_policy,
        fetch_order: s.fetch_order,
        guard_growth: s.guard_growth,
        ..IterConfig::default()
    };
    let set = match s.deployment {
        Deployment::Sharded { shards } => {
            // Servers split round-robin into shard groups, so fault and
            // op server indices keep their meaning: group g is servers
            // g, g+n, g+2n, ... with the first as the shard primary.
            let n = shards.clamp(1, servers.len());
            let groups: Vec<ShardGroup> = (0..n)
                .map(|g| {
                    let members: Vec<NodeId> =
                        (g..servers.len()).step_by(n).map(|i| servers[i]).collect();
                    ShardGroup {
                        home: members[0],
                        replicas: members[1..].to_vec(),
                    }
                })
                .collect();
            TestSet::Sharded(
                ShardedWeakSet::create(&mut w, COLL, client.clone(), &groups, config)
                    .expect("shard creation precedes all faults"),
            )
        }
        Deployment::Plain | Deployment::Gossip { .. } => {
            let cref = CollectionRef {
                id: COLL,
                home: servers[0],
                replicas: servers[1..].to_vec(),
            };
            client
                .create_collection(&mut w, &cref)
                .expect("collection creation precedes all faults");
            TestSet::One(WeakSet::new(client.clone(), cref).with_config(config))
        }
    };

    // Initial membership, before the run origin.
    for &(elem, home) in &s.setup {
        let rec = ObjectRecord::new(ObjectId(elem), format!("e{elem}"), &b"dst"[..]);
        set.add(&mut w, rec, servers[home % servers.len()])
            .expect("setup add precedes all faults");
    }

    // Gossip deployments anti-entropy for the whole run.
    let handle = match s.deployment {
        Deployment::Plain | Deployment::Sharded { .. } => None,
        Deployment::Gossip { merkle, .. } => Some(engine::install(
            &mut w,
            COLL,
            set.single().cref().all_nodes(),
            GossipConfig {
                interval: ms(5),
                fanout: 2,
                digest_mode: if merkle {
                    DigestMode::MerkleRange
                } else {
                    DigestMode::Full
                },
                ..GossipConfig::default()
            },
        )),
    };

    // Run origin: fault schedule and workload are offsets from here.
    let t0 = w.now();
    w.install_plan(&build_plan(s, &servers, t0));

    let mut ops = s.ops.clone();
    ops.sort_by_key(Op::at_ms);
    let mut next_op = 0usize;
    advance_and_apply(&mut w, &set, &servers, &ops, &mut next_op, t0, s.start_ms);
    let at_start = t0 + ms(s.start_ms);
    if w.now() < at_start {
        w.run_until(at_start);
    }
    // Snapshot the session's committed writes at run start; the oracle
    // demands them back from every terminated run.
    let floors: Vec<SetValue> = if s.read_policy == ReadPolicy::CausalSession {
        session_floors(&w, s, &set)
    } else {
        Vec::new()
    };

    // The observed iterator under test.
    let mut it: TestElements = match s.deployment {
        Deployment::Plain | Deployment::Sharded { .. } => set.elements_observed(s.semantics),
        Deployment::Gossip { .. } => {
            TestElements::One(Box::new(set.single().elements_observed_via(
                s.semantics,
                HistorySource::new(GossipNode::visit_collection_history),
            )))
        }
    };

    let mut yielded: Vec<u64> = Vec::new();
    let mut steps = 0usize;
    let mut waits = 0usize;
    let budget = s.budget.max(1);
    loop {
        apply_due(&mut w, &set, &servers, &ops, &mut next_op, t0);

        // Tail guard for the semantics that read membership on every
        // invocation: when everything the set currently holds has been
        // yielded and membership is unreadable, the only legal step is
        // `Return` — which requires a successful read. Wait for the
        // (self-healing) fault to clear instead of forcing an illegal
        // terminal step. Omniscient, driver-only knowledge.
        if matches!(s.semantics, Semantics::Optimistic | Semantics::GrowOnly) {
            let members = ground_truth_members(&w, s, &set);
            let all_yielded = members.iter().all(|m| yielded.contains(m));
            if all_yielded && !all_membership_readable(&w, s.read_policy, cn, &set) {
                waits += 1;
                if waits > MAX_WAITS {
                    violations.push("driver wedged: membership never became readable".into());
                    break;
                }
                w.sleep(ms(5));
                continue;
            }
        }

        steps += 1;
        match it.next(&mut w) {
            IterStep::Yielded(rec) => {
                waits = 0;
                yielded.push(rec.id.0);
                if yielded.len() >= budget {
                    break;
                }
                w.sleep(ms(s.think_ms));
            }
            IterStep::Done => break,
            IterStep::Failed(f) => {
                if s.semantics == Semantics::Optimistic {
                    violations.push(format!("optimistic iterator signalled failure: {f}"));
                }
                break;
            }
            IterStep::Blocked => {
                waits += 1;
                if waits > MAX_WAITS {
                    violations.push("driver wedged: iterator blocked past every heal".into());
                    break;
                }
                w.sleep(ms(5));
            }
        }
        if steps > 4 * MAX_WAITS {
            violations.push("driver wedged: invocation budget exhausted".into());
            break;
        }
    }

    // Drain the schedule: leftover ops, fault heals, gossip convergence.
    advance_and_apply(&mut w, &set, &servers, &ops, &mut next_op, t0, u64::MAX);
    let drained = t0 + ms(s.horizon_ms() + 60);
    if w.now() < drained {
        w.run_until(drained);
    }
    if let Some(handle) = handle {
        let replicas = set.single().cref().all_nodes();
        let mut ok = engine::converged(&w, COLL, &replicas);
        for _ in 0..40 {
            if ok {
                break;
            }
            w.sleep(ms(20));
            ok = engine::converged(&w, COLL, &replicas);
        }
        if !ok {
            violations.push("gossip replicas failed to converge after all faults healed".into());
        }
        handle.stop();
    }
    w.run_to_quiescence();

    let mut computations = it.take_computations(&w);
    if s.chaos == Chaos::PhantomYield {
        inject_phantom_yield(computations.last_mut(), &mut violations);
    }
    if computations.is_empty() {
        violations.push("observer produced no computation".into());
    }
    let sharded = computations.len() > 1;
    let empty_floor = SetValue::empty();
    for (i, comp) in computations.iter().enumerate() {
        let floor = floors.get(i).unwrap_or(&empty_floor);
        for v in oracle::check_with_session(s, comp, floor) {
            violations.push(if sharded {
                format!("shard {i}: {v}")
            } else {
                v
            });
        }
    }

    // Close the span ledger: anything still open is an instrumentation
    // bug, surfaced both here and as `span.unclosed` events in the
    // stream.
    let at = w.now().as_micros();
    let unclosed = w.events_mut().finish(at);
    debug_assert!(
        unclosed.is_empty(),
        "unclosed spans at end of run: {unclosed:?}"
    );
    let events = w.events_mut().take_events();

    RunReport {
        seed: s.seed,
        trace_hash: w.trace_hash(),
        yielded,
        steps,
        violations,
        computations,
        sim_time_us: w.now().as_micros(),
        metrics: w.metrics().clone(),
        events,
    }
}

/// [`Chaos::PhantomYield`]: forge a yield of an element that was never a
/// member into the last recorded run. Every figure rejects it, so the
/// violation pipeline (shrink, artifact, replay) always has work.
pub(crate) fn inject_phantom_yield(
    computation: Option<&mut Computation>,
    violations: &mut Vec<String>,
) {
    let forged = computation.and_then(|comp| {
        let idx = comp.states.len().checked_sub(1)?;
        let run = comp.runs.last_mut()?;
        run.invocations.push(Invocation {
            pre: idx,
            post: idx,
            outcome: Outcome::Yielded(ElemId(999_999)),
        });
        Some(())
    });
    if forged.is_none() {
        violations.push("chaos: no recorded run to sabotage".into());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, mix};

    /// A small, fault-free plain scenario for targeted tests.
    fn quiet(semantics: Semantics) -> Scenario {
        Scenario {
            seed: 7,
            servers: 2,
            deployment: Deployment::Plain,
            semantics,
            read_policy: ReadPolicy::Primary,
            guard_growth: false,
            fetch_order: weakset::prelude::FetchOrder::IdOrder,
            think_ms: 1,
            budget: 16,
            start_ms: 10,
            setup: vec![(1, 0), (2, 1), (3, 0)],
            ops: Vec::new(),
            faults: Vec::new(),
            chaos: Chaos::None,
        }
    }

    #[test]
    fn quiet_runs_conform_for_every_semantics() {
        for sem in Semantics::ALL {
            let report = execute(&quiet(sem));
            assert!(
                report.violations.is_empty(),
                "{sem}: {:?}",
                report.violations
            );
            let mut got = report.yielded.clone();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3], "{sem}");
        }
    }

    #[test]
    fn phantom_yield_chaos_is_always_caught() {
        for sem in Semantics::ALL {
            let sabotaged = Scenario {
                chaos: Chaos::PhantomYield,
                ..quiet(sem)
            };
            let report = execute(&sabotaged);
            assert!(
                !report.violations.is_empty(),
                "{sem}: sabotage went undetected"
            );
        }
    }

    #[test]
    fn generated_scenarios_replay_to_the_same_hash() {
        for i in 0..3 {
            let s = generate(mix(11, i));
            let a = execute(&s);
            let b = execute(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {}", s.seed);
            assert_eq!(a.yielded, b.yielded);
            assert_eq!(a.violations, b.violations);
            // The causal stream — and its Perfetto export — is part of
            // the determinism contract: same seed, same bytes.
            assert_eq!(a.events, b.events, "seed {}", s.seed);
            assert_eq!(
                weakset_sim::metrics::chrome_trace(&a.events),
                weakset_sim::metrics::chrome_trace(&b.events),
                "seed {}",
                s.seed
            );
        }
    }

    /// A fault-free sharded scenario: 6 servers in 3 groups of 2,
    /// quorum reads, enough setup to populate several shards.
    fn quiet_sharded(semantics: Semantics) -> Scenario {
        Scenario {
            seed: 23,
            servers: 6,
            deployment: Deployment::Sharded { shards: 3 },
            semantics,
            read_policy: ReadPolicy::Quorum,
            guard_growth: false,
            fetch_order: weakset::prelude::FetchOrder::IdOrder,
            think_ms: 1,
            budget: 16,
            start_ms: 10,
            setup: vec![(1, 0), (2, 1), (3, 2), (4, 3), (5, 4), (6, 5)],
            ops: Vec::new(),
            faults: Vec::new(),
            chaos: Chaos::None,
        }
    }

    #[test]
    fn quiet_sharded_runs_conform_for_every_semantics() {
        for sem in Semantics::ALL {
            let report = execute(&quiet_sharded(sem));
            assert!(
                report.violations.is_empty(),
                "{sem}: {:?}",
                report.violations
            );
            let mut got = report.yielded.clone();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3, 4, 5, 6], "{sem}");
            assert_eq!(
                report.computations.len(),
                3,
                "{sem}: one computation per shard"
            );
        }
    }

    #[test]
    fn sharded_phantom_yield_chaos_is_always_caught() {
        for sem in Semantics::ALL {
            let sabotaged = Scenario {
                chaos: Chaos::PhantomYield,
                ..quiet_sharded(sem)
            };
            let report = execute(&sabotaged);
            assert!(
                !report.violations.is_empty(),
                "{sem}: sabotage went undetected"
            );
            assert!(
                report.violations.iter().any(|v| v.starts_with("shard ")),
                "{sem}: violation not attributed to a shard: {:?}",
                report.violations
            );
        }
    }

    #[test]
    fn sharded_optimistic_rides_out_a_shard_primary_outage() {
        // Crash server 0 (shard 0's primary) mid-run: the optimistic
        // fan-out blocks while its shard is dark, resumes on restart,
        // and still drains every member of every shard.
        let s = Scenario {
            semantics: Semantics::Optimistic,
            read_policy: ReadPolicy::Primary,
            faults: vec![FaultSpec::Outage {
                at_ms: 12,
                node: 0,
                for_ms: 20,
            }],
            ..quiet_sharded(Semantics::Optimistic)
        };
        let report = execute(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        let mut got = report.yielded.clone();
        got.sort_unstable();
        assert_eq!(got, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn quiet_causal_runs_conform_for_every_semantics() {
        for sem in Semantics::ALL {
            let s = Scenario {
                read_policy: ReadPolicy::CausalSession,
                ..quiet(sem)
            };
            let report = execute(&s);
            assert!(
                report.violations.is_empty(),
                "{sem}: {:?}",
                report.violations
            );
            let mut got = report.yielded.clone();
            got.sort_unstable();
            assert_eq!(got, vec![1, 2, 3], "{sem}");
        }
    }

    #[test]
    fn causal_phantom_yield_chaos_is_always_caught() {
        for sem in Semantics::ALL {
            let sabotaged = Scenario {
                read_policy: ReadPolicy::CausalSession,
                chaos: Chaos::PhantomYield,
                ..quiet(sem)
            };
            let report = execute(&sabotaged);
            assert!(
                !report.violations.is_empty(),
                "{sem}: sabotage went undetected"
            );
        }
    }

    #[test]
    fn generated_causal_scenarios_conform_and_replay() {
        // The acceptance property in miniature: across generated causal
        // scenarios — including gossip deployments iterating mid-lag —
        // the session client never misses one of its own committed
        // inserts, and the runs replay to the same hash.
        for i in 0..8 {
            let s = crate::gen::generate_causal(mix(31, i));
            let a = execute(&s);
            assert!(
                a.violations.is_empty(),
                "seed {}: {:?}",
                s.seed,
                a.violations
            );
            let b = execute(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {}", s.seed);
            assert_eq!(a.yielded, b.yielded);
        }
    }

    #[test]
    fn generated_sharded_scenarios_conform_and_replay() {
        for i in 0..6 {
            let s = crate::gen::generate_sharded(mix(29, i));
            let a = execute(&s);
            assert!(
                a.violations.is_empty(),
                "seed {}: {:?}",
                s.seed,
                a.violations
            );
            let b = execute(&s);
            assert_eq!(a.trace_hash, b.trace_hash, "seed {}", s.seed);
            assert_eq!(a.yielded, b.yielded);
        }
    }
}
