//! Scenario generation: one seed, one scenario, always the same one.
//!
//! The generator samples the design space — deployment, semantics, read
//! policy, workload, fault schedule — but stays inside the *soundness
//! envelope*: the set of configurations whose runs the figures accept
//! whenever the implementation is correct. Outside that envelope the
//! conformance monitor truthfully reports violations that are properties
//! of the configuration (e.g. stale quorum reads under concurrent faults
//! and mutations), not implementation bugs, which would drown the fuzzer
//! in noise. The envelope:
//!
//! - **Plain** deployments read `Primary` or `Quorum`; `Quorum` scenarios
//!   carry mutations or faults, never both (a quorum that excludes the
//!   primary may serve stale membership while it diverges).
//! - **Gossip** deployments read `Primary` or `Leaderless`, mutate by
//!   adds only, and schedule every add well before iteration starts so
//!   anti-entropy has converged the replicas (stale replicas would make
//!   leaderless union reads time-travel). Locked semantics is not
//!   deployed over gossip.
//! - Removals never drain the set: at most `setup.len() - 1` distinct
//!   victims, so a pessimistic first-invocation failure always has an
//!   unyielded member to justify it.
//! - Grow-only iteration over a shrinking workload always holds the §3.3
//!   grow guard, so the relaxed per-run grow-only constraint is sound.
//! - Every fault heals itself (outage restarts, partition window heals,
//!   flap ends up), so optimistic runs can always be driven to
//!   termination.

use crate::scenario::{Chaos, Deployment, FaultSpec, Op, Scenario};
use weakset::prelude::{FetchOrder, Semantics};
use weakset_sim::rng::SimRng;
use weakset_store::prelude::ReadPolicy;

/// Derives an independent scenario seed from a base seed and an
/// iteration index (splitmix64 finalizer).
pub fn mix(seed: u64, iter: u64) -> u64 {
    let mut z = seed
        .wrapping_add(iter.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Generates the scenario for `seed`. Pure: the same seed always yields
/// the same scenario, and the generated scenario never sets
/// [`Chaos::PhantomYield`].
pub fn generate(seed: u64) -> Scenario {
    let mut rng = SimRng::for_label(seed, "dst.gen");
    if rng.chance(0.35) {
        gen_gossip(seed, &mut rng)
    } else {
        gen_plain(seed, &mut rng)
    }
}

fn pick_fetch_order(rng: &mut SimRng) -> FetchOrder {
    if rng.chance(0.5) {
        FetchOrder::ClosestFirst
    } else {
        FetchOrder::IdOrder
    }
}

fn gen_setup(rng: &mut SimRng, servers: usize, max: u64) -> Vec<(u64, usize)> {
    let n = rng.range_u64(1, max + 1);
    (1..=n).map(|id| (id, rng.index(servers))).collect()
}

fn gen_faults(
    rng: &mut SimRng,
    servers: usize,
    max_faults: u64,
    lo_ms: u64,
    hi_ms: u64,
) -> Vec<FaultSpec> {
    let n = rng.range_u64(0, max_faults + 1);
    (0..n)
        .map(|_| {
            let at_ms = rng.range_u64(lo_ms, hi_ms);
            match rng.index(3) {
                0 => FaultSpec::Outage {
                    at_ms,
                    node: rng.index(servers),
                    for_ms: rng.range_u64(10, 41),
                },
                1 => {
                    // A nonempty proper subset of the servers; the client
                    // always stays on the majority side.
                    let size = rng.range_u64(1, servers as u64) as usize;
                    let mut idx: Vec<usize> = (0..servers).collect();
                    rng.shuffle(&mut idx);
                    let mut side: Vec<usize> = idx.into_iter().take(size).collect();
                    side.sort_unstable();
                    FaultSpec::Partition {
                        at_ms,
                        side,
                        for_ms: rng.range_u64(10, 41),
                    }
                }
                _ => {
                    let a = rng.index(servers);
                    let mut b = rng.index(servers);
                    if b == a {
                        b = (a + 1) % servers;
                    }
                    FaultSpec::Flap {
                        at_ms,
                        a,
                        b,
                        down_ms: rng.range_u64(1, 5),
                        up_ms: rng.range_u64(3, 9),
                        cycles: rng.range_u64(1, 4) as usize,
                    }
                }
            }
        })
        .collect()
}

fn gen_plain(seed: u64, rng: &mut SimRng) -> Scenario {
    let servers = rng.range_u64(2, 5) as usize;
    let semantics = Semantics::ALL[rng.index(Semantics::ALL.len())];
    let read_policy = if rng.chance(0.3) {
        ReadPolicy::Quorum
    } else {
        ReadPolicy::Primary
    };
    let start_ms = rng.range_u64(10, 31);
    let setup = gen_setup(rng, servers, 6);

    let mut ops = Vec::new();
    let n_ops = rng.range_u64(0, 6);
    let mut victims: Vec<u64> = setup.iter().map(|&(e, _)| e).collect();
    let mut next_id = 100;
    for _ in 0..n_ops {
        let at_ms = rng.range_u64(2, 111);
        // Keep at least one member un-removed so a pessimistic failure
        // can always point at an unyielded member.
        if victims.len() > 1 && rng.chance(0.4) {
            let v = victims.remove(rng.index(victims.len()));
            ops.push(Op::Remove { at_ms, elem: v });
        } else {
            ops.push(Op::Add {
                at_ms,
                elem: next_id,
                home: rng.index(servers),
            });
            next_id += 1;
        }
    }
    ops.sort_by_key(Op::at_ms);

    let mut faults = gen_faults(rng, servers, 3, 5, 101);
    if read_policy == ReadPolicy::Quorum && !ops.is_empty() {
        // Quorum reads are only fresh while either replicas stay in sync
        // (no faults) or membership stays put (no ops).
        faults.clear();
    }

    Scenario {
        seed,
        servers,
        deployment: Deployment::Plain,
        semantics,
        read_policy,
        guard_growth: semantics == Semantics::GrowOnly
            && ops.iter().any(|o| matches!(o, Op::Remove { .. })),
        fetch_order: pick_fetch_order(rng),
        think_ms: rng.range_u64(1, 5),
        budget: rng.range_u64(24, 41) as usize,
        start_ms,
        setup,
        ops,
        faults,
        chaos: Chaos::None,
    }
}

/// Generates a sharded-deployment scenario for `seed`. Pure, like
/// [`generate`], but always deploys a `ShardedWeakSet`, so the fuzzer
/// exercises ring routing, batched membership reads, and fan-out
/// iteration. A separate entry point — not a new [`generate`] branch —
/// so every pre-sharding seed keeps producing the identical scenario
/// (checked-in traces and bench baselines replay byte-for-byte).
///
/// The sharded envelope, on top of the plain one:
///
/// - Server count is `shards * group_size`, split round-robin, so every
///   shard group has the same size and `Quorum` means the same thing in
///   every group.
/// - Faults are scheduled only under optimistic semantics. The ring may
///   leave a shard empty (or fully yielded early), and a pessimistic
///   per-shard run failing with no unyielded member of *its own* shard
///   would be a truthful figure violation caused by the configuration;
///   optimistic runs block and retry instead, which every figure
///   accepts.
pub fn generate_sharded(seed: u64) -> Scenario {
    let mut rng = SimRng::for_label(seed, "dst.gen.sharded");
    let shards = rng.range_u64(2, 4) as usize;
    let group_size = rng.range_u64(1, 4) as usize;
    let servers = shards * group_size;
    let semantics = Semantics::ALL[rng.index(Semantics::ALL.len())];
    let read_policy = if group_size >= 2 && rng.chance(0.4) {
        ReadPolicy::Quorum
    } else {
        ReadPolicy::Primary
    };
    let start_ms = rng.range_u64(10, 31);
    let setup = gen_setup(&mut rng, servers, 8);

    let mut ops = Vec::new();
    let n_ops = rng.range_u64(0, 6);
    let mut victims: Vec<u64> = setup.iter().map(|&(e, _)| e).collect();
    let mut next_id = 100;
    for _ in 0..n_ops {
        let at_ms = rng.range_u64(2, 111);
        if victims.len() > 1 && rng.chance(0.4) {
            let v = victims.remove(rng.index(victims.len()));
            ops.push(Op::Remove { at_ms, elem: v });
        } else {
            ops.push(Op::Add {
                at_ms,
                elem: next_id,
                home: rng.index(servers),
            });
            next_id += 1;
        }
    }
    ops.sort_by_key(Op::at_ms);

    let mut faults = if semantics == Semantics::Optimistic {
        gen_faults(&mut rng, servers, 2, 5, 101)
    } else {
        Vec::new()
    };
    if read_policy == ReadPolicy::Quorum && !ops.is_empty() {
        // Same freshness rule as plain quorum scenarios, per group.
        faults.clear();
    }

    Scenario {
        seed,
        servers,
        deployment: Deployment::Sharded { shards },
        semantics,
        read_policy,
        guard_growth: semantics == Semantics::GrowOnly
            && ops.iter().any(|o| matches!(o, Op::Remove { .. })),
        fetch_order: pick_fetch_order(&mut rng),
        think_ms: rng.range_u64(1, 5),
        budget: rng.range_u64(24, 41) as usize,
        start_ms,
        setup,
        ops,
        faults,
        chaos: Chaos::None,
    }
}

/// Generates a [`ReadPolicy::CausalSession`] scenario for `seed`. Pure,
/// and a separate entry point like [`generate_sharded`], so every
/// existing seed stream is untouched.
///
/// The causal envelope differs from the plain/gossip ones in exactly the
/// way the session token changes the soundness argument:
///
/// - **Gossip** adds no longer need the 40 ms anti-entropy margin before
///   iteration starts — reads may race convergence lag, because the
///   session token is what keeps them from time-travelling. That racing
///   window is the point of the leg.
/// - Faults never overlap a mutation's commit window (plain scenarios
///   carry ops or faults, never both; gossip ops land ≥ 10 ms before the
///   first fault can fire). The oracle's session floor is read from the
///   primaries, so a mutation whose *reply* a fault eats would commit
///   without entering the session — and the floor would over-demand.
pub fn generate_causal(seed: u64) -> Scenario {
    let mut rng = SimRng::for_label(seed, "dst.gen.causal");
    if rng.chance(0.5) {
        causal_gossip(seed, &mut rng)
    } else {
        causal_plain(seed, &mut rng)
    }
}

fn causal_plain(seed: u64, rng: &mut SimRng) -> Scenario {
    let servers = rng.range_u64(2, 5) as usize;
    let semantics = Semantics::ALL[rng.index(Semantics::ALL.len())];
    let start_ms = rng.range_u64(10, 31);
    let setup = gen_setup(rng, servers, 6);

    // Ops or faults, never both: every mutation's reply must reach the
    // session (see [`generate_causal`]).
    let mut ops = Vec::new();
    let mut faults = Vec::new();
    if rng.chance(0.5) {
        let n_ops = rng.range_u64(1, 6);
        let mut victims: Vec<u64> = setup.iter().map(|&(e, _)| e).collect();
        let mut next_id = 100;
        for _ in 0..n_ops {
            let at_ms = rng.range_u64(2, 111);
            if victims.len() > 1 && rng.chance(0.4) {
                let v = victims.remove(rng.index(victims.len()));
                ops.push(Op::Remove { at_ms, elem: v });
            } else {
                ops.push(Op::Add {
                    at_ms,
                    elem: next_id,
                    home: rng.index(servers),
                });
                next_id += 1;
            }
        }
        ops.sort_by_key(Op::at_ms);
    } else {
        faults = gen_faults(rng, servers, 3, 5, 101);
    }

    Scenario {
        seed,
        servers,
        deployment: Deployment::Plain,
        semantics,
        read_policy: ReadPolicy::CausalSession,
        guard_growth: semantics == Semantics::GrowOnly
            && ops.iter().any(|o| matches!(o, Op::Remove { .. })),
        fetch_order: pick_fetch_order(rng),
        think_ms: rng.range_u64(1, 5),
        budget: rng.range_u64(24, 41) as usize,
        start_ms,
        setup,
        ops,
        faults,
        chaos: Chaos::None,
    }
}

fn causal_gossip(seed: u64, rng: &mut SimRng) -> Scenario {
    let servers = rng.range_u64(3, 5) as usize;
    let semantics = [
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
    ][rng.index(3)];
    // Iteration starts hot on the heels of the last add — anti-entropy
    // (5 ms rounds) may not have converged a single replica yet. The
    // session token, not a convergence margin, is what keeps the union
    // reads sound.
    let start_ms = rng.range_u64(20, 41);
    let setup = gen_setup(rng, servers, 5);
    let n_ops = rng.range_u64(0, 5);
    let mut ops: Vec<Op> = (0..n_ops)
        .map(|i| Op::Add {
            at_ms: rng.range_u64(2, start_ms.saturating_sub(11)),
            elem: 100 + i,
            home: rng.index(servers),
        })
        .collect();
    ops.sort_by_key(Op::at_ms);
    // First fault fires ≥ 10 ms after the last possible add commit.
    let faults = gen_faults(rng, servers, 2, start_ms + 5, start_ms + 51);

    Scenario {
        seed,
        servers,
        deployment: Deployment::Gossip {
            grow_only: rng.chance(0.5),
            merkle: false,
        },
        semantics,
        read_policy: ReadPolicy::CausalSession,
        guard_growth: false,
        fetch_order: pick_fetch_order(rng),
        think_ms: rng.range_u64(1, 5),
        budget: rng.range_u64(24, 41) as usize,
        start_ms,
        setup,
        ops,
        faults,
        chaos: Chaos::None,
    }
}

fn gen_gossip(seed: u64, rng: &mut SimRng) -> Scenario {
    let servers = rng.range_u64(3, 5) as usize;
    let semantics = [
        Semantics::Snapshot,
        Semantics::GrowOnly,
        Semantics::Optimistic,
    ][rng.index(3)];
    let read_policy = if rng.chance(0.5) {
        ReadPolicy::Leaderless
    } else {
        ReadPolicy::Primary
    };
    // Adds land by 20 ms; anti-entropy (5 ms rounds) has ≥ 40 ms to
    // converge every replica before iteration starts.
    let start_ms = rng.range_u64(60, 81);
    let setup = gen_setup(rng, servers, 5);
    let n_ops = rng.range_u64(0, 5);
    let mut ops: Vec<Op> = (0..n_ops)
        .map(|i| Op::Add {
            at_ms: rng.range_u64(2, 21),
            elem: 100 + i,
            home: rng.index(servers),
        })
        .collect();
    ops.sort_by_key(Op::at_ms);
    let faults = gen_faults(rng, servers, 2, start_ms, start_ms + 51);

    Scenario {
        seed,
        servers,
        deployment: Deployment::Gossip {
            grow_only: rng.chance(0.5),
            merkle: false,
        },
        semantics,
        read_policy,
        guard_growth: false,
        fetch_order: pick_fetch_order(rng),
        think_ms: rng.range_u64(1, 5),
        budget: rng.range_u64(24, 41) as usize,
        start_ms,
        setup,
        ops,
        faults,
        chaos: Chaos::None,
    }
}

/// Generates a gossip scenario that samples *both* digest modes for
/// `seed`. Pure, and a separate entry point like [`generate_sharded`],
/// so every existing seed stream is untouched.
///
/// Half the seeds deploy `merkle: true` (the Merkle-range descent), half
/// `merkle: false` (the classic full-digest exchange), over the same
/// gossip envelope as [`generate`]'s gossip branch — so the fuzz leg
/// checks that the two reconciliation paths satisfy the same figures
/// under the same faults.
pub fn generate_merkle(seed: u64) -> Scenario {
    let mut rng = SimRng::for_label(seed, "dst.gen.merkle");
    let merkle = rng.chance(0.5);
    let mut s = gen_gossip(seed, &mut rng);
    if let Deployment::Gossip {
        merkle: ref mut m, ..
    } = s.deployment
    {
        *m = merkle;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        for seed in 0..50 {
            assert_eq!(generate(seed), generate(seed), "seed {seed}");
        }
    }

    #[test]
    fn generated_scenarios_respect_the_envelope() {
        for i in 0..300 {
            let s = generate(mix(7, i));
            assert!(!s.setup.is_empty());
            assert_eq!(s.chaos, Chaos::None);
            let removals = s
                .ops
                .iter()
                .filter(|o| matches!(o, Op::Remove { .. }))
                .count();
            assert!(removals < s.setup.len().max(1));
            match s.deployment {
                Deployment::Plain => {
                    assert!(matches!(
                        s.read_policy,
                        ReadPolicy::Primary | ReadPolicy::Quorum
                    ));
                    if s.read_policy == ReadPolicy::Quorum && !s.ops.is_empty() {
                        assert!(s.faults.is_empty());
                    }
                    if s.semantics == Semantics::GrowOnly && removals > 0 {
                        assert!(s.guard_growth);
                    }
                }
                Deployment::Sharded { .. } => {
                    panic!("generate() never produces sharded deployments (seed stability)")
                }
                Deployment::Gossip { .. } => {
                    assert_ne!(s.semantics, Semantics::Locked);
                    assert!(matches!(
                        s.read_policy,
                        ReadPolicy::Primary | ReadPolicy::Leaderless
                    ));
                    for op in &s.ops {
                        assert!(matches!(op, Op::Add { .. }));
                        assert!(op.at_ms() + 40 <= s.start_ms);
                    }
                    for f in &s.faults {
                        let at = match f {
                            FaultSpec::Outage { at_ms, .. }
                            | FaultSpec::Partition { at_ms, .. }
                            | FaultSpec::Flap { at_ms, .. } => *at_ms,
                        };
                        assert!(at >= s.start_ms);
                    }
                }
            }
            for f in &s.faults {
                if let FaultSpec::Partition { side, .. } = f {
                    assert!(!side.is_empty() && side.len() < s.servers);
                }
                if let FaultSpec::Flap { a, b, .. } = f {
                    assert_ne!(a, b);
                }
            }
        }
    }

    #[test]
    fn sharded_generation_is_deterministic_and_stays_in_the_envelope() {
        for i in 0..200 {
            let seed = mix(13, i);
            let s = generate_sharded(seed);
            assert_eq!(s, generate_sharded(seed), "seed {seed}");
            let Deployment::Sharded { shards } = s.deployment else {
                panic!("seed {seed}: not a sharded deployment");
            };
            assert!(shards >= 2);
            assert_eq!(s.servers % shards, 0, "equal-size shard groups");
            assert!(!s.setup.is_empty());
            assert_eq!(s.chaos, Chaos::None);
            assert!(matches!(
                s.read_policy,
                ReadPolicy::Primary | ReadPolicy::Quorum
            ));
            if s.read_policy == ReadPolicy::Quorum {
                assert!(s.servers / shards >= 2, "quorum needs replicated groups");
                if !s.ops.is_empty() {
                    assert!(s.faults.is_empty());
                }
            }
            if s.semantics != Semantics::Optimistic {
                assert!(s.faults.is_empty(), "faults are optimistic-only");
            }
            let removals = s
                .ops
                .iter()
                .filter(|o| matches!(o, Op::Remove { .. }))
                .count();
            assert!(removals < s.setup.len().max(1));
            if s.semantics == Semantics::GrowOnly && removals > 0 {
                assert!(s.guard_growth);
            }
        }
    }

    #[test]
    fn causal_generation_is_deterministic_and_stays_in_the_envelope() {
        for i in 0..200 {
            let seed = mix(17, i);
            let s = generate_causal(seed);
            assert_eq!(s, generate_causal(seed), "seed {seed}");
            assert_eq!(s.read_policy, ReadPolicy::CausalSession);
            assert!(!s.setup.is_empty());
            assert_eq!(s.chaos, Chaos::None);
            match s.deployment {
                Deployment::Plain => {
                    // Ops or faults, never both: the oracle floor assumes
                    // every mutation's reply reached the session.
                    assert!(s.ops.is_empty() || s.faults.is_empty());
                }
                Deployment::Gossip { .. } => {
                    assert_ne!(s.semantics, Semantics::Locked);
                    for op in &s.ops {
                        assert!(matches!(op, Op::Add { .. }));
                        // Commits well before the first fault can fire,
                        // but with no convergence margin before start.
                        assert!(op.at_ms() + 11 < s.start_ms);
                    }
                    for f in &s.faults {
                        let at = match f {
                            FaultSpec::Outage { at_ms, .. }
                            | FaultSpec::Partition { at_ms, .. }
                            | FaultSpec::Flap { at_ms, .. } => *at_ms,
                        };
                        assert!(at >= s.start_ms + 5);
                    }
                }
                Deployment::Sharded { .. } => {
                    panic!("generate_causal() never produces sharded deployments")
                }
            }
        }
    }

    #[test]
    fn merkle_generation_is_deterministic_and_samples_both_modes() {
        let mut saw = [false, false];
        for i in 0..200 {
            let seed = mix(19, i);
            let s = generate_merkle(seed);
            assert_eq!(s, generate_merkle(seed), "seed {seed}");
            let Deployment::Gossip { merkle, .. } = s.deployment else {
                panic!("seed {seed}: not a gossip deployment");
            };
            saw[merkle as usize] = true;
            // Same envelope as the classic gossip branch.
            assert_ne!(s.semantics, Semantics::Locked);
            for op in &s.ops {
                assert!(matches!(op, Op::Add { .. }));
                assert!(op.at_ms() + 40 <= s.start_ms);
            }
        }
        assert!(saw[0] && saw[1], "both digest modes must be sampled");
    }

    #[test]
    fn mix_separates_iterations() {
        let a = mix(42, 0);
        let b = mix(42, 1);
        let c = mix(43, 0);
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
