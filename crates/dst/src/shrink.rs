//! Greedy trace shrinking: given a violating scenario, repeatedly drop
//! whole faults, ops, and setup entries — re-executing after each drop
//! and keeping it only if the violation survives — until a fixpoint.
//!
//! Determinism (same scenario ⇒ same run ⇒ same violations) is what
//! makes this sound: a candidate that still violates is a strictly
//! smaller repro, not a different bug found by a different schedule.

use crate::run;
use crate::scenario::Scenario;

/// Upper bound on re-executions per shrink; a scenario has at most ~14
/// droppable pieces, so a fixpoint fits comfortably.
const MAX_EXECUTIONS: usize = 200;

/// Shrinks a violating scenario to a locally minimal one, returning it
/// and the number of executions spent. If `s` does not actually violate,
/// it is returned unchanged.
pub fn shrink(s: &Scenario) -> (Scenario, usize) {
    let mut best = s.clone();
    let mut execs = 0usize;
    let mut progress = true;
    while progress && execs < MAX_EXECUTIONS {
        progress = false;
        for field in [Field::Faults, Field::Ops, Field::Setup] {
            let mut i = 0;
            while i < field.len(&best) && execs < MAX_EXECUTIONS {
                let mut cand = best.clone();
                field.remove(&mut cand, i);
                execs += 1;
                if !run::execute(&cand).violations.is_empty() {
                    best = cand;
                    progress = true;
                } else {
                    i += 1;
                }
            }
        }
    }
    (best, execs)
}

#[derive(Clone, Copy)]
enum Field {
    Faults,
    Ops,
    Setup,
}

impl Field {
    fn len(self, s: &Scenario) -> usize {
        match self {
            Field::Faults => s.faults.len(),
            Field::Ops => s.ops.len(),
            Field::Setup => s.setup.len(),
        }
    }

    fn remove(self, s: &mut Scenario, i: usize) {
        match self {
            Field::Faults => {
                s.faults.remove(i);
            }
            Field::Ops => {
                s.ops.remove(i);
            }
            Field::Setup => {
                s.setup.remove(i);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn conforming_scenarios_shrink_to_themselves() {
        let s = generate(3);
        let (back, execs) = shrink(&s);
        // First probe of each list head fails to reproduce, so the
        // scenario survives intact.
        assert_eq!(back, s);
        assert!(execs <= s.faults.len() + s.ops.len() + s.setup.len());
    }
}
