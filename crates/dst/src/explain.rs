//! Conformance-failure explanations: walk the causal DAG backwards from
//! a failed iterator invocation to the fault events that caused it.
//!
//! Every [`RunReport`] carries the run's full
//! causal event stream. When a run fails — an iterator signalled
//! `Failed`, or an oracle rejected the recorded computation — the DAG
//! built from that stream holds the whole story: which invocation
//! failed, which fetches under it found members unreachable, which RPCs
//! those fetches lost, and which scheduled fault (crash, partition,
//! link flap) made the target node dark at that moment. [`explain`]
//! assembles it into a deterministic, human-readable post-mortem, so a
//! fuzz-gate failure in CI ships its own diagnosis instead of a bare
//! seed.

use crate::run::RunReport;
use std::fmt::Write as _;
use weakset_sim::metrics::{CausalDag, ObsEvent};

/// Point-event kinds that count as failure evidence under an invocation.
const EVIDENCE_KINDS: [&str; 6] = [
    "iter.fetch.unreachable",
    "store.read.failed",
    "store.fetch.failed",
    "net.rpc.failed",
    "net.send.failed",
    "net.msg.lost",
];

/// Builds the causal explanation for a failed run, or `None` when the
/// run recorded neither a failed invocation nor an oracle violation.
///
/// Output is a pure function of the report, so same-seed repros print
/// byte-identical explanations.
pub fn explain(report: &RunReport) -> Option<String> {
    let failures: Vec<&ObsEvent> = report
        .events
        .iter()
        .filter(|e| e.kind == "iter.outcome" && e.detail.contains("failed:"))
        .collect();
    if failures.is_empty() && report.violations.is_empty() {
        return None;
    }

    let dag = CausalDag::from_events(&report.events);
    let mut out = String::new();
    let _ = writeln!(out, "causal post-mortem for seed {}", report.seed);
    if report.violations.is_empty() {
        let _ = writeln!(out, "oracle violations: none (run failed but conformed)");
    } else {
        let _ = writeln!(out, "oracle violations:");
        for v in &report.violations {
            let _ = writeln!(out, "  - {v}");
        }
    }
    if failures.is_empty() {
        let _ = writeln!(
            out,
            "no failed invocation in the event stream: the violation was \
             injected into the recorded history (chaos), or the driver \
             wedged without an iterator failure."
        );
        return Some(out);
    }

    for f in &failures {
        let _ = writeln!(out);
        explain_failure(&mut out, report, &dag, f);
    }
    Some(out)
}

/// Explains one failed `iter.outcome` event: names the invocation span,
/// lists the failure evidence recorded beneath it, and traces each
/// unreachable node back to the fault that darkened it.
fn explain_failure(out: &mut String, report: &RunReport, dag: &CausalDag, outcome: &ObsEvent) {
    let _ = writeln!(out, "failed invocation at {}us:", outcome.at_us);
    let Some(span_id) = outcome.parent else {
        let _ = writeln!(out, "  (outcome has no invocation span — sink was off?)");
        let _ = writeln!(out, "  outcome: {}", outcome.detail);
        return;
    };
    if let Some(span) = dag.span(span_id) {
        let chain = dag.ancestors(span_id);
        let root = chain.last().copied().unwrap_or(span_id);
        let _ = writeln!(
            out,
            "  invocation: {} (span {}, {} of the computation rooted at span {})",
            span.kind,
            span.id,
            if chain.is_empty() {
                "first invocation"
            } else {
                "continuation"
            },
            root,
        );
    }
    let _ = writeln!(out, "  outcome: {}", outcome.detail);

    let evidence: Vec<&ObsEvent> = dag
        .points_under(span_id)
        .into_iter()
        .filter(|e| EVIDENCE_KINDS.contains(&e.kind.as_str()))
        .collect();
    if evidence.is_empty() {
        let _ = writeln!(out, "  no failure evidence recorded under the invocation");
    } else {
        let _ = writeln!(out, "  evidence under the invocation:");
        for e in &evidence {
            let _ = writeln!(out, "    {}us {} {}", e.at_us, e.kind, e.detail);
        }
    }

    // Tie every node the evidence proves dark back to the fault that
    // made it so.
    let mut named: Vec<String> = Vec::new();
    for e in &evidence {
        let Some(node) = dark_node(&e.kind, &e.detail) else {
            continue;
        };
        if named.iter().any(|n| n == &node) {
            continue;
        }
        named.push(node.clone());
        match fault_cause(&report.events, &node, outcome.at_us) {
            Some(cause) => {
                let _ = writeln!(
                    out,
                    "  cause: {} {} at {}us made {} unreachable",
                    cause.kind, cause.detail, cause.at_us, node,
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  cause: no live fault found for {} at {}us (transient loss or timeout)",
                    node, outcome.at_us,
                );
            }
        }
    }
}

/// The node an evidence event proves unreachable, if it names one.
///
/// Understands the detail formats the instrumented stack emits:
/// `elem=5 home=n2`, `... node n2 is down`, `... no route from n0 to n2`.
fn dark_node(kind: &str, detail: &str) -> Option<String> {
    if kind == "iter.fetch.unreachable" {
        return detail
            .split_whitespace()
            .find_map(|t| t.strip_prefix("home="))
            .map(str::to_string);
    }
    if let Some(i) = detail.find(" is down") {
        return detail[..i].rsplit(' ').next().map(str::to_string);
    }
    if let Some(i) = detail.find("no route from ") {
        let rest = &detail[i + "no route from ".len()..];
        let mut ends = rest.split(" to ");
        let _from = ends.next();
        return ends.next().map(|s| {
            s.trim_end_matches(|c: char| !c.is_alphanumeric())
                .to_string()
        });
    }
    None
}

/// The latest fault event at or before `before_us` that still explains
/// `node` being unreachable — a crash without a subsequent restart, a
/// partition isolating it without a subsequent heal, or a downed link
/// touching it that was never brought back up.
fn fault_cause<'a>(events: &'a [ObsEvent], node: &str, before_us: u64) -> Option<&'a ObsEvent> {
    let in_partition = |detail: &str| -> bool {
        detail
            .trim_start_matches('[')
            .trim_end_matches(']')
            .split(',')
            .any(|t| t == node)
    };
    let on_link = |detail: &str| -> bool {
        detail
            .split_whitespace()
            .next()
            .is_some_and(|pair| pair.split("->").any(|t| t == node))
    };
    let mut crash: Option<&ObsEvent> = None;
    let mut partition: Option<&ObsEvent> = None;
    let mut link: Option<&ObsEvent> = None;
    for e in events.iter().filter(|e| e.at_us <= before_us) {
        match e.kind.as_str() {
            "sim.fault.crash" if e.detail == node => crash = Some(e),
            "sim.fault.restart" if e.detail == node => crash = None,
            "sim.fault.partition" => partition = in_partition(&e.detail).then_some(e),
            "sim.fault.heal_partition" => partition = None,
            "sim.fault.set_link" if on_link(&e.detail) => {
                link = e.detail.ends_with(" down").then_some(e);
            }
            _ => {}
        }
    }
    // Prefer the most specific live fault: a crashed node beats a
    // partition beats a single dead link.
    crash.or(partition).or(link)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::execute;
    use crate::scenario::{Chaos, Deployment, FaultSpec, Scenario};
    use weakset::prelude::{FetchOrder, Semantics};
    use weakset_store::prelude::ReadPolicy;

    /// A member's home partitioned away for longer than the run: the
    /// grow-only (Fig 5) iterator must fail, and the explanation must
    /// name both the partition and the member it darkened.
    fn partitioned(semantics: Semantics) -> Scenario {
        Scenario {
            seed: 1042,
            servers: 3,
            deployment: Deployment::Plain,
            semantics,
            read_policy: ReadPolicy::Primary,
            guard_growth: false,
            fetch_order: FetchOrder::IdOrder,
            think_ms: 1,
            budget: 16,
            start_ms: 10,
            setup: vec![(1, 0), (2, 1), (3, 2)],
            ops: Vec::new(),
            // Servers are indices into the server list; server 2 hosts
            // element 3 and goes dark right as the run starts.
            faults: vec![FaultSpec::Partition {
                at_ms: 8,
                side: vec![2],
                for_ms: 400,
            }],
            chaos: Chaos::None,
        }
    }

    #[test]
    fn partition_failure_is_explained_for_pessimistic_semantics() {
        for sem in [Semantics::Snapshot, Semantics::GrowOnly] {
            let report = execute(&partitioned(sem));
            let text = explain(&report).expect("a failed run must explain itself");
            assert!(
                text.contains("sim.fault.partition"),
                "{sem}: explanation names no partition:\n{text}"
            );
            assert!(
                text.contains("iter.fetch.unreachable"),
                "{sem}: explanation cites no unreachable member:\n{text}"
            );
            assert!(
                text.contains("made n3 unreachable"),
                "{sem}: explanation does not name the dark node:\n{text}"
            );
            // Deterministic: same seed, same words.
            let again = explain(&execute(&partitioned(sem))).unwrap();
            assert_eq!(text, again, "{sem}: explanation not deterministic");
        }
    }

    #[test]
    fn conforming_runs_have_nothing_to_explain() {
        let s = Scenario {
            faults: Vec::new(),
            ..partitioned(Semantics::Optimistic)
        };
        let report = execute(&s);
        assert!(report.violations.is_empty(), "{:?}", report.violations);
        assert!(explain(&report).is_none());
    }

    #[test]
    fn chaos_violations_without_iterator_failure_still_report() {
        let s = Scenario {
            faults: Vec::new(),
            chaos: Chaos::PhantomYield,
            ..partitioned(Semantics::Optimistic)
        };
        let report = execute(&s);
        assert!(!report.violations.is_empty());
        let text = explain(&report).expect("violations always explain");
        assert!(text.contains("injected into the recorded history"));
    }

    #[test]
    fn dark_node_parses_every_detail_shape() {
        assert_eq!(
            dark_node("iter.fetch.unreachable", "elem=5 home=n2"),
            Some("n2".into())
        );
        assert_eq!(
            dark_node("net.rpc.failed", "n0->n2: node n2 is down"),
            Some("n2".into())
        );
        assert_eq!(
            dark_node("store.read.failed", "primary c1: no route from n0 to n3"),
            Some("n3".into())
        );
        assert_eq!(
            dark_node("net.rpc.failed", "n0->n2: request timed out"),
            None
        );
    }

    #[test]
    fn fault_cause_respects_heals_and_token_boundaries() {
        let ev = |at_us: u64, kind: &str, detail: &str| ObsEvent {
            at_us,
            kind: kind.into(),
            detail: detail.into(),
            span: None,
            parent: None,
            trace: None,
        };
        let events = vec![
            ev(10, "sim.fault.partition", "[n1,n12]"),
            ev(20, "sim.fault.heal_partition", ""),
            ev(30, "sim.fault.partition", "[n12]"),
        ];
        // n1's partition healed at 20; the one live at 40 isolates only
        // n12 — and "n1" must not token-match inside "n12".
        assert!(fault_cause(&events, "n1", 40).is_none());
        let hit = fault_cause(&events, "n12", 40).expect("n12 is isolated");
        assert_eq!(hit.at_us, 30);
        // Crash beats partition as the more specific cause.
        let mut with_crash = events.clone();
        with_crash.push(ev(35, "sim.fault.crash", "n12"));
        assert_eq!(fault_cause(&with_crash, "n12", 40).unwrap().at_us, 35);
    }
}
