//! The fuzz gate binary: generate and execute N scenarios, shrink and
//! persist any violation, exit nonzero if anything failed. Each failure
//! also ships its causal post-mortem (`explain-<seed>.txt`) and a
//! Perfetto-loadable trace of the shrunk run (`trace-<seed>.json`).
//!
//! ```text
//! weakset-dst [--iters N] [--seed S | --seed-from-env] [--out DIR]
//!             [--sharded | --policies causal-session | --digest-mode merkle]
//! ```
//!
//! `--sharded` draws every scenario from the sharded-deployment
//! generator (hash-ring routing, batched membership reads, fan-out
//! iteration) instead of the plain/gossip mix.
//!
//! `--digest-mode merkle` draws every scenario from the merkle-gossip
//! generator: gossip deployments that sample *both* digest modes, so
//! half the runs reconcile by Merkle-range descent and half by the
//! classic full-digest exchange, judged against the same figures.
//!
//! `--policies causal-session` draws from the causal-session generator:
//! every scenario reads with `ReadPolicy::CausalSession` over plain and
//! gossip deployments (including gossip iteration racing anti-entropy
//! lag), and the oracle additionally enforces the session floor through
//! the visibility checker. Failures ship a `vis-<seed>.txt`
//! counterexample (the violated axioms plus the recorded computations)
//! next to the usual repro artifact.
//!
//! `--seed-from-env` reads the base seed from `$DST_SEED` (decimal, or
//! any string — non-numeric values are hashed), so CI can vary coverage
//! per run while every failure stays replayable from the printed seed.
//!
//! Two further modes bridge to the real runtime:
//!
//! ```text
//! weakset-dst --record SEED [--out DIR]   # threaded run → dst/rec-SEED.ron
//! weakset-dst --replay PATH [--out DIR]   # recording → sim + oracles
//! ```
//!
//! `--record` generates seed `SEED`'s scenario (forced to the plain
//! deployment), runs it on the *threaded* runtime with a recorder
//! attached, writes the recording, then immediately replays it twice to
//! certify determinism and agreement with the live run. `--replay`
//! loads a previously captured recording (e.g. from a production
//! incident) and re-drives it through the simulator: oracle violations
//! shrink (over the recording) and ship with a causal post-mortem, and
//! any log/sim divergence fails the run loudly.

use std::path::{Path, PathBuf};
use weakset_dst::prelude::*;

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Args {
    iters: u64,
    seed: u64,
    out: PathBuf,
    sharded: bool,
    causal: bool,
    merkle: bool,
    record: Option<u64>,
    replay: Option<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut iters = 200u64;
    let mut seed = 1u64;
    let mut out = PathBuf::from("dst");
    let mut sharded = false;
    let mut causal = false;
    let mut merkle = false;
    let mut record = None;
    let mut replay = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--iters" => {
                iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--seed-from-env" => {
                let raw = std::env::var("DST_SEED").unwrap_or_default();
                seed = raw.parse().unwrap_or_else(|_| hash_str(&raw));
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--sharded" => sharded = true,
            "--policies" => match value("--policies")?.as_str() {
                "causal-session" => causal = true,
                other => return Err(format!("--policies: unknown policy set '{other}'")),
            },
            "--digest-mode" => match value("--digest-mode")?.as_str() {
                "merkle" => merkle = true,
                other => return Err(format!("--digest-mode: unknown mode '{other}'")),
            },
            "--record" => {
                record = Some(
                    value("--record")?
                        .parse()
                        .map_err(|e| format!("--record: {e}"))?,
                );
            }
            "--replay" => replay = Some(PathBuf::from(value("--replay")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: weakset-dst [--iters N] [--seed S | --seed-from-env] [--out DIR] [--sharded | --policies causal-session | --digest-mode merkle]\n       weakset-dst --record SEED [--out DIR]\n       weakset-dst --replay PATH [--out DIR]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    if record.is_some() && replay.is_some() {
        return Err("--record and --replay are mutually exclusive".into());
    }
    if (sharded as u8) + (causal as u8) + (merkle as u8) > 1 {
        return Err(
            "--sharded, --policies causal-session, and --digest-mode merkle are mutually exclusive"
                .into(),
        );
    }
    Ok(Args {
        iters,
        seed,
        out,
        sharded,
        causal,
        merkle,
        record,
        replay,
    })
}

/// Replays `rec` twice, prints both verdicts, and ships the failure
/// pipeline (shrink-the-recording, explain, perfetto trace) when the
/// oracles object. Returns the process exit code: divergence or
/// nondeterminism is an infrastructure failure (1); a reproduced oracle
/// violation is a *successful* repro (0) unless `violations_fail`.
fn run_replay(rec: &weakset_runtime::record::Recording, out: &Path, violations_fail: bool) -> i32 {
    let a = match replay_recording(rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("replay failed: {e}");
            return 1;
        }
    };
    let b = match replay_recording(rec) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("second replay failed: {e}");
            return 1;
        }
    };

    let mut code = 0;
    if a.report.trace_hash != b.report.trace_hash {
        eprintln!(
            "NONDETERMINISTIC REPLAY: trace hashes {:016x} vs {:016x}",
            a.report.trace_hash, b.report.trace_hash
        );
        code = 1;
    }
    // Both replays must track the log: a divergence only the second one
    // hits is just as much an infrastructure failure as one in the first.
    for (label, divs) in [("first", &a.divergences), ("second", &b.divergences)] {
        if !divs.is_empty() {
            eprintln!(
                "replay diverged from the recording ({label} replay, {} divergence(s)):",
                divs.len()
            );
            for d in divs {
                eprintln!("  - {d}");
            }
            code = 1;
        }
    }
    println!(
        "replay: seed {} trace {:016x}, {} step(s), yielded {:?}, membership {:?}",
        rec.seed, a.report.trace_hash, a.report.steps, a.report.yielded, a.membership
    );

    if !a.report.violations.is_empty() {
        eprintln!(
            "replay reproduced {} violation(s): {}",
            a.report.violations.len(),
            a.report.violations.join("; ")
        );
        let (small, execs) = shrink_recording(rec);
        eprintln!(
            "  recording shrunk in {execs} replay(s): {} -> {} log entries",
            rec.entries.len(),
            small.entries.len()
        );
        let min_path = out.join(format!("rec-{}-min.ron", rec.seed));
        if std::fs::create_dir_all(out)
            .and_then(|()| std::fs::write(&min_path, small.to_ron()))
            .is_ok()
        {
            eprintln!("  shrunk recording: {}", min_path.display());
        }
        if let Ok(min) = replay_recording(&small) {
            if let Some(text) = explain(&min.report) {
                eprintln!("{text}");
                let explain_path = out.join(format!("explain-rec-{}.txt", rec.seed));
                if std::fs::write(&explain_path, &text).is_ok() {
                    eprintln!("  explanation: {}", explain_path.display());
                }
                let trace_path = out.join(format!("trace-rec-{}.json", rec.seed));
                let trace = weakset_sim::metrics::chrome_trace(&min.report.events);
                if std::fs::write(&trace_path, trace).is_ok() {
                    eprintln!("  perfetto trace: {}", trace_path.display());
                }
            }
        }
        if violations_fail {
            code = 1;
        }
    }
    code
}

/// `--record SEED`: one threaded run, recorded, written, then replayed
/// twice and compared against the live outcome.
fn run_record(seed: u64, out: &Path) -> i32 {
    let mut scenario = generate(seed);
    scenario.deployment = Deployment::Plain; // replay v1 drives Plain only
    let live = match record_scenario(&scenario) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("record failed: {e}");
            return 1;
        }
    };
    let path = match write_recording(out, &live.recording) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("could not write recording: {e}");
            return 1;
        }
    };
    println!(
        "recorded: seed {seed}, {} entries{} -> {}",
        live.recording.entries.len(),
        if live.recording.truncated {
            " (truncated)"
        } else {
            ""
        },
        path.display()
    );
    println!(
        "live: {} step(s), yielded {:?}, membership {:?}, {} violation(s)",
        live.report.steps,
        live.report.yielded,
        live.membership,
        live.report.violations.len()
    );

    // Live violations (oracle objections to the real run) are exactly
    // what recording is for — reproduce them under the sim. Only
    // divergence/nondeterminism fails the record gate.
    let mut code = run_replay(&live.recording, out, false);
    if !live.recording.truncated {
        let a = replay_recording(&live.recording);
        if let Ok(a) = a {
            if a.report.yielded != live.report.yielded
                || a.membership != live.membership
                || a.report.violations != live.report.violations
            {
                eprintln!(
                    "REPLAY DISAGREES with the live run:\n  live   yielded {:?} membership {:?} violations {:?}\n  replay yielded {:?} membership {:?} violations {:?}",
                    live.report.yielded,
                    live.membership,
                    live.report.violations,
                    a.report.yielded,
                    a.membership,
                    a.report.violations
                );
                code = 1;
            }
        }
    }
    code
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    if let Some(seed) = args.record {
        std::process::exit(run_record(seed, &args.out));
    }
    if let Some(path) = &args.replay {
        let rec = match load_recording(path) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("could not load recording: {e}");
                std::process::exit(2);
            }
        };
        std::process::exit(run_replay(&rec, &args.out, false));
    }

    let mut combined: u64 = 0;
    let mut failures = 0u64;
    for i in 0..args.iters {
        let scenario = if args.sharded {
            generate_sharded(mix(args.seed, i))
        } else if args.causal {
            generate_causal(mix(args.seed, i))
        } else if args.merkle {
            generate_merkle(mix(args.seed, i))
        } else {
            generate(mix(args.seed, i))
        };
        let report = execute(&scenario);
        combined = combined.rotate_left(1) ^ report.trace_hash;
        if report.violations.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!(
            "FAIL seed {} (iter {i}): {}",
            scenario.seed,
            report.violations.join("; ")
        );
        let (small, execs) = shrink(&scenario);
        let small_report = execute(&small);
        eprintln!(
            "  shrunk in {execs} executions to {} setup / {} ops / {} faults ({})",
            small.setup.len(),
            small.ops.len(),
            small.faults.len(),
            small_report.violations.join("; ")
        );
        match write_artifact(&args.out, &small, &small_report.violations) {
            Ok(path) => eprintln!("  repro artifact: {}", path.display()),
            Err(e) => eprintln!("  could not write repro artifact: {e}"),
        }
        if args.causal {
            // Visibility-checker counterexample: the axiom set the run
            // was judged against, what it violated, and the recorded
            // computation(s) — enough to re-judge the run by hand.
            let mut vis = String::new();
            vis.push_str(&format!(
                "scenario seed {}\naxioms: {:?}\n",
                small.seed,
                axioms_for(&small)
            ));
            vis.push_str("violations:\n");
            for v in &small_report.violations {
                vis.push_str(&format!("  - {v}\n"));
            }
            for (ci, comp) in small_report.computations.iter().enumerate() {
                vis.push_str(&format!("computation {ci}: {comp:?}\n"));
            }
            let vis_path = args.out.join(format!("vis-{}.txt", small.seed));
            if let Err(e) = std::fs::write(&vis_path, &vis) {
                eprintln!("  could not write visibility counterexample: {e}");
            } else {
                eprintln!("  visibility counterexample: {}", vis_path.display());
            }
        }
        // Explain mode: walk the shrunk run's causal DAG backwards and
        // ship the post-mortem (plus a Perfetto-loadable trace of the
        // whole run) next to the repro artifact.
        if let Some(text) = explain(&small_report) {
            eprintln!("{text}");
            let explain_path = args.out.join(format!("explain-{}.txt", small.seed));
            if let Err(e) = std::fs::write(&explain_path, &text) {
                eprintln!("  could not write explanation: {e}");
            } else {
                eprintln!("  explanation: {}", explain_path.display());
            }
            let trace_path = args.out.join(format!("trace-{}.json", small.seed));
            let trace = weakset_sim::metrics::chrome_trace(&small_report.events);
            if let Err(e) = std::fs::write(&trace_path, trace) {
                eprintln!("  could not write trace: {e}");
            } else {
                eprintln!("  perfetto trace: {}", trace_path.display());
            }
        }
    }

    println!(
        "weakset-dst: {} scenario(s) from seed {}, combined trace hash {combined:016x}, {failures} failure(s)",
        args.iters, args.seed
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
