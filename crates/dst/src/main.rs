//! The fuzz gate binary: generate and execute N scenarios, shrink and
//! persist any violation, exit nonzero if anything failed. Each failure
//! also ships its causal post-mortem (`explain-<seed>.txt`) and a
//! Perfetto-loadable trace of the shrunk run (`trace-<seed>.json`).
//!
//! ```text
//! weakset-dst [--iters N] [--seed S | --seed-from-env] [--out DIR] [--sharded]
//! ```
//!
//! `--sharded` draws every scenario from the sharded-deployment
//! generator (hash-ring routing, batched membership reads, fan-out
//! iteration) instead of the plain/gossip mix.
//!
//! `--seed-from-env` reads the base seed from `$DST_SEED` (decimal, or
//! any string — non-numeric values are hashed), so CI can vary coverage
//! per run while every failure stays replayable from the printed seed.

use std::path::PathBuf;
use weakset_dst::prelude::*;

fn hash_str(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

struct Args {
    iters: u64,
    seed: u64,
    out: PathBuf,
    sharded: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut iters = 200u64;
    let mut seed = 1u64;
    let mut out = PathBuf::from("dst");
    let mut sharded = false;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        let mut value = |name: &str| argv.next().ok_or(format!("{name} needs a value"));
        match arg.as_str() {
            "--iters" => {
                iters = value("--iters")?
                    .parse()
                    .map_err(|e| format!("--iters: {e}"))?;
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--seed-from-env" => {
                let raw = std::env::var("DST_SEED").unwrap_or_default();
                seed = raw.parse().unwrap_or_else(|_| hash_str(&raw));
            }
            "--out" => out = PathBuf::from(value("--out")?),
            "--sharded" => sharded = true,
            "--help" | "-h" => {
                return Err(
                    "usage: weakset-dst [--iters N] [--seed S | --seed-from-env] [--out DIR] [--sharded]"
                        .into(),
                );
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(Args {
        iters,
        seed,
        out,
        sharded,
    })
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };

    let mut combined: u64 = 0;
    let mut failures = 0u64;
    for i in 0..args.iters {
        let scenario = if args.sharded {
            generate_sharded(mix(args.seed, i))
        } else {
            generate(mix(args.seed, i))
        };
        let report = execute(&scenario);
        combined = combined.rotate_left(1) ^ report.trace_hash;
        if report.violations.is_empty() {
            continue;
        }
        failures += 1;
        eprintln!(
            "FAIL seed {} (iter {i}): {}",
            scenario.seed,
            report.violations.join("; ")
        );
        let (small, execs) = shrink(&scenario);
        let small_report = execute(&small);
        eprintln!(
            "  shrunk in {execs} executions to {} setup / {} ops / {} faults ({})",
            small.setup.len(),
            small.ops.len(),
            small.faults.len(),
            small_report.violations.join("; ")
        );
        match write_artifact(&args.out, &small, &small_report.violations) {
            Ok(path) => eprintln!("  repro artifact: {}", path.display()),
            Err(e) => eprintln!("  could not write repro artifact: {e}"),
        }
        // Explain mode: walk the shrunk run's causal DAG backwards and
        // ship the post-mortem (plus a Perfetto-loadable trace of the
        // whole run) next to the repro artifact.
        if let Some(text) = explain(&small_report) {
            eprintln!("{text}");
            let explain_path = args.out.join(format!("explain-{}.txt", small.seed));
            if let Err(e) = std::fs::write(&explain_path, &text) {
                eprintln!("  could not write explanation: {e}");
            } else {
                eprintln!("  explanation: {}", explain_path.display());
            }
            let trace_path = args.out.join(format!("trace-{}.json", small.seed));
            let trace = weakset_sim::metrics::chrome_trace(&small_report.events);
            if let Err(e) = std::fs::write(&trace_path, trace) {
                eprintln!("  could not write trace: {e}");
            } else {
                eprintln!("  perfetto trace: {}", trace_path.display());
            }
        }
    }

    println!(
        "weakset-dst: {} scenario(s) from seed {}, combined trace hash {combined:016x}, {failures} failure(s)",
        args.iters, args.seed
    );
    if failures > 0 {
        std::process::exit(1);
    }
}
