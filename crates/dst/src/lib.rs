//! # weakset-dst — deterministic simulation fuzzer
//!
//! Randomized end-to-end testing for the weak-set stack: a seeded
//! generator ([`gen`]) picks a topology, a deployment (plain store,
//! gossip replication, or a hash-ring-sharded set read through batched
//! envelopes), an iterator design point (all four semantics × read
//! policies), a mutation workload, and an adversarial fault
//! schedule; a deterministic executor ([`run`]) drives the run inside
//! `weakset-sim`; and a conformance oracle ([`oracle`]) machine-checks
//! the recorded history against the matching figure of *Specifying Weak
//! Sets* (Wing & Steere, ICDCS 1995), plus cross-run invariants (gossip
//! replicas converge after every heal, optimistic iterators never fail).
//!
//! Because a scenario fully determines its run, a violation shrinks
//! ([`shrink`]) to a locally minimal scenario and ships as a
//! self-contained artifact ([`repro`]) that replays as an ordinary test
//! — together with a causal post-mortem ([`explain`]) walking the run's
//! happens-before DAG from the failed invocation back to the fault that
//! caused it.
//!
//! The bridge to reality is [`replay`]: record a scenario running on
//! the *threaded* runtime (capturing every observable source of
//! nondeterminism at the `Runtime` boundary), then re-drive the exact
//! interleaving through the simulator, where the same oracles, shrinker
//! (over the *recording*), and causal explainer apply.
//!
//! The `weakset-dst` binary is the CI gate:
//!
//! ```text
//! cargo run -p weakset-dst -- --iters 500 --seed 42
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explain;
pub mod gen;
pub mod oracle;
pub mod replay;
pub mod repro;
pub mod run;
pub mod scenario;
pub mod shrink;

/// One-stop imports for fuzzer tests and harnesses.
pub mod prelude {
    pub use crate::explain::explain;
    pub use crate::gen::{generate, generate_causal, generate_merkle, generate_sharded, mix};
    pub use crate::oracle::{axioms_for, check, check_with_session, spec_for};
    pub use crate::replay::{
        load_recording, rec_path, record_scenario, replay_recording, shrink_recording,
        write_recording, RecordedRun, ReplayReport,
    };
    pub use crate::repro::{artifact_path, load, replay, write_artifact};
    pub use crate::run::{execute, RunReport, COLL};
    pub use crate::scenario::{Chaos, Deployment, FaultSpec, Op, Scenario};
    pub use crate::shrink::shrink;
}
