//! The fuzzer's unit of work: a fully self-contained [`Scenario`].
//!
//! A scenario captures everything a run needs — topology size,
//! deployment, iterator semantics and configuration, the mutation
//! workload, and the fault schedule — as plain data. The same scenario
//! always produces the same run (see `run::execute`), which is what makes
//! shrinking and repro artifacts possible.
//!
//! Scenarios serialize to a RON-like text form ([`Scenario::to_ron`] /
//! [`Scenario::from_ron`]) written by hand so repro artifacts need no
//! external serialization crate. Fault and op node fields are *server
//! indices* (0-based, primary is server 0), not simulator `NodeId`s, so
//! an artifact stays meaningful on its own.

use weakset::prelude::{FetchOrder, Semantics};
use weakset_store::prelude::ReadPolicy;

/// How the servers are deployed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Deployment {
    /// Bare `StoreServer`s: primary-serialized mutations, best-effort
    /// synchronous replica sync.
    Plain,
    /// `GossipNode`s converging by anti-entropy.
    Gossip {
        /// Use the grow-only G-Set CRDT instead of the OR-Set.
        grow_only: bool,
        /// Reconcile with the Merkle-range digest mode instead of full
        /// version-vector digests.
        merkle: bool,
    },
    /// A `ShardedWeakSet`: the servers split round-robin into `shards`
    /// replica groups, each owning one sub-collection; elements route by
    /// the consistent-hash ring and membership reads ride the batched
    /// envelope path.
    Sharded {
        /// Number of shard groups (clamped to the server count at
        /// execution time).
        shards: usize,
    },
}

/// One workload mutation, scheduled at a millisecond offset from the
/// start of the run (after setup).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    /// Store an object on server `home` and add it to the set.
    Add {
        /// Offset from the run origin, in milliseconds.
        at_ms: u64,
        /// Element id.
        elem: u64,
        /// Home server index.
        home: usize,
    },
    /// Remove an element from the set.
    Remove {
        /// Offset from the run origin, in milliseconds.
        at_ms: u64,
        /// Element id.
        elem: u64,
    },
}

impl Op {
    /// The op's scheduled offset.
    pub fn at_ms(&self) -> u64 {
        match *self {
            Op::Add { at_ms, .. } | Op::Remove { at_ms, .. } => at_ms,
        }
    }
}

/// One scheduled fault. All variants are self-healing: an outage
/// restarts, a partition heals, a flap ends with the link up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultSpec {
    /// Crash server `node` at `at_ms`, restart it `for_ms` later.
    Outage {
        /// Offset from the run origin, in milliseconds.
        at_ms: u64,
        /// Server index to crash.
        node: usize,
        /// Downtime in milliseconds.
        for_ms: u64,
    },
    /// Partition the given servers away from everyone else, healing
    /// `for_ms` later.
    Partition {
        /// Offset from the run origin, in milliseconds.
        at_ms: u64,
        /// Server indices on the isolated side.
        side: Vec<usize>,
        /// Window length in milliseconds.
        for_ms: u64,
    },
    /// Flap the link between servers `a` and `b`.
    Flap {
        /// Offset from the run origin, in milliseconds.
        at_ms: u64,
        /// One endpoint (server index).
        a: usize,
        /// The other endpoint (server index).
        b: usize,
        /// Down phase length in milliseconds.
        down_ms: u64,
        /// Up phase length in milliseconds.
        up_ms: u64,
        /// Number of down/up cycles.
        cycles: usize,
    },
}

impl FaultSpec {
    /// When the fault has fully healed, as an offset from the run origin.
    pub fn end_ms(&self) -> u64 {
        match *self {
            FaultSpec::Outage { at_ms, for_ms, .. } => at_ms + for_ms,
            FaultSpec::Partition { at_ms, for_ms, .. } => at_ms + for_ms,
            FaultSpec::Flap {
                at_ms,
                down_ms,
                up_ms,
                cycles,
                ..
            } => at_ms + (down_ms + up_ms) * cycles as u64,
        }
    }
}

/// Deliberate spec sabotage, for exercising the violation path. Never
/// produced by the generator; only tests set it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Chaos {
    /// No sabotage.
    None,
    /// After the run, forge a yield of element 999999 — an element that
    /// was never a member — into the recorded computation. Every figure
    /// rejects it, deterministically.
    PhantomYield,
}

/// A complete, replayable fuzz case.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Simulation seed (latency jitter, RNG streams).
    pub seed: u64,
    /// Number of store servers (server 0 is the collection primary).
    pub servers: usize,
    /// Server deployment.
    pub deployment: Deployment,
    /// Iterator semantics under test.
    pub semantics: Semantics,
    /// Membership read policy.
    pub read_policy: ReadPolicy,
    /// Hold a §3.3 grow guard for the run (grow-only semantics only).
    pub guard_growth: bool,
    /// Fetch candidate ordering.
    pub fetch_order: FetchOrder,
    /// Client think time between invocations, in milliseconds.
    pub think_ms: u64,
    /// Maximum yields before the driver abandons the run (non-terminal
    /// runs are legal prefixes).
    pub budget: usize,
    /// When iteration starts, as an offset from the run origin.
    pub start_ms: u64,
    /// Initial membership: `(element id, home server index)` pairs, added
    /// before the run origin.
    pub setup: Vec<(u64, usize)>,
    /// Scheduled workload mutations.
    pub ops: Vec<Op>,
    /// Scheduled faults.
    pub faults: Vec<FaultSpec>,
    /// Deliberate sabotage (tests only).
    pub chaos: Chaos,
}

impl Scenario {
    /// True when any scheduled op is a removal.
    pub fn has_removals(&self) -> bool {
        self.ops.iter().any(|o| matches!(o, Op::Remove { .. }))
    }

    /// The last scheduled event's offset (ops, faults, or iteration
    /// start), used to size the post-run drain.
    pub fn horizon_ms(&self) -> u64 {
        let ops = self.ops.iter().map(Op::at_ms).max().unwrap_or(0);
        let faults = self.faults.iter().map(FaultSpec::end_ms).max().unwrap_or(0);
        ops.max(faults).max(self.start_ms)
    }
}

// ---------------------------------------------------------------------
// Serialization (RON-like, hand-rolled)
// ---------------------------------------------------------------------

fn semantics_name(s: Semantics) -> &'static str {
    match s {
        Semantics::Snapshot => "Snapshot",
        Semantics::GrowOnly => "GrowOnly",
        Semantics::Optimistic => "Optimistic",
        Semantics::Locked => "Locked",
    }
}

fn policy_name(p: ReadPolicy) -> &'static str {
    match p {
        ReadPolicy::Primary => "Primary",
        ReadPolicy::Any => "Any",
        ReadPolicy::Quorum => "Quorum",
        ReadPolicy::Leaderless => "Leaderless",
        ReadPolicy::CausalSession => "CausalSession",
    }
}

fn order_name(o: FetchOrder) -> &'static str {
    match o {
        FetchOrder::ClosestFirst => "ClosestFirst",
        FetchOrder::IdOrder => "IdOrder",
    }
}

impl Scenario {
    /// Renders the scenario in its artifact text form.
    pub fn to_ron(&self) -> String {
        let mut s = String::new();
        s.push_str("Scenario(\n");
        s.push_str(&format!("    seed: {},\n", self.seed));
        s.push_str(&format!("    servers: {},\n", self.servers));
        match self.deployment {
            Deployment::Plain => s.push_str("    deployment: Plain,\n"),
            Deployment::Gossip { grow_only, merkle } => {
                // `merkle: true` is appended only when set, so artifacts
                // written before the field existed stay byte-identical.
                if merkle {
                    s.push_str(&format!(
                        "    deployment: Gossip(grow_only: {grow_only}, merkle: true),\n"
                    ));
                } else {
                    s.push_str(&format!(
                        "    deployment: Gossip(grow_only: {grow_only}),\n"
                    ));
                }
            }
            Deployment::Sharded { shards } => {
                s.push_str(&format!("    deployment: Sharded(shards: {shards}),\n"));
            }
        }
        s.push_str(&format!(
            "    semantics: {},\n",
            semantics_name(self.semantics)
        ));
        s.push_str(&format!(
            "    read_policy: {},\n",
            policy_name(self.read_policy)
        ));
        s.push_str(&format!("    guard_growth: {},\n", self.guard_growth));
        s.push_str(&format!(
            "    fetch_order: {},\n",
            order_name(self.fetch_order)
        ));
        s.push_str(&format!("    think_ms: {},\n", self.think_ms));
        s.push_str(&format!("    budget: {},\n", self.budget));
        s.push_str(&format!("    start_ms: {},\n", self.start_ms));
        s.push_str("    setup: [");
        for (i, (elem, home)) in self.setup.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&format!("({elem}, {home})"));
        }
        s.push_str("],\n    ops: [");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match *op {
                Op::Add { at_ms, elem, home } => {
                    s.push_str(&format!("Add(at_ms: {at_ms}, elem: {elem}, home: {home})"));
                }
                Op::Remove { at_ms, elem } => {
                    s.push_str(&format!("Remove(at_ms: {at_ms}, elem: {elem})"));
                }
            }
        }
        s.push_str("],\n    faults: [");
        for (i, f) in self.faults.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            match f {
                FaultSpec::Outage {
                    at_ms,
                    node,
                    for_ms,
                } => {
                    s.push_str(&format!(
                        "Outage(at_ms: {at_ms}, node: {node}, for_ms: {for_ms})"
                    ));
                }
                FaultSpec::Partition {
                    at_ms,
                    side,
                    for_ms,
                } => {
                    s.push_str(&format!("Partition(at_ms: {at_ms}, side: ["));
                    for (j, n) in side.iter().enumerate() {
                        if j > 0 {
                            s.push_str(", ");
                        }
                        s.push_str(&n.to_string());
                    }
                    s.push_str(&format!("], for_ms: {for_ms})"));
                }
                FaultSpec::Flap {
                    at_ms,
                    a,
                    b,
                    down_ms,
                    up_ms,
                    cycles,
                } => {
                    s.push_str(&format!(
                        "Flap(at_ms: {at_ms}, a: {a}, b: {b}, down_ms: {down_ms}, up_ms: {up_ms}, cycles: {cycles})"
                    ));
                }
            }
        }
        s.push_str("],\n");
        match self.chaos {
            Chaos::None => s.push_str("    chaos: None,\n"),
            Chaos::PhantomYield => s.push_str("    chaos: PhantomYield,\n"),
        }
        s.push_str(")\n");
        s
    }

    /// Parses the artifact text form. Fields must appear in the order
    /// [`Scenario::to_ron`] writes them; `// ...` comments are ignored.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax problem.
    pub fn from_ron(text: &str) -> Result<Scenario, String> {
        let tokens = tokenize(text)?;
        let mut p = Parser { tokens, pos: 0 };
        let s = p.scenario()?;
        p.expect_end()?;
        Ok(s)
    }
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),
    Num(u64),
    LParen,
    RParen,
    LBracket,
    RBracket,
    Comma,
    Colon,
}

fn tokenize(text: &str) -> Result<Vec<Tok>, String> {
    let mut out = Vec::new();
    let mut chars = text.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ' ' | '\t' | '\r' | '\n' => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for nc in chars.by_ref() {
                        if nc == '\n' {
                            break;
                        }
                    }
                } else {
                    return Err("stray '/'".into());
                }
            }
            '(' => {
                chars.next();
                out.push(Tok::LParen);
            }
            ')' => {
                chars.next();
                out.push(Tok::RParen);
            }
            '[' => {
                chars.next();
                out.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                out.push(Tok::RBracket);
            }
            ',' => {
                chars.next();
                out.push(Tok::Comma);
            }
            ':' => {
                chars.next();
                out.push(Tok::Colon);
            }
            '0'..='9' => {
                let mut n: u64 = 0;
                while let Some(&d) = chars.peek() {
                    if let Some(v) = d.to_digit(10) {
                        n = n
                            .checked_mul(10)
                            .and_then(|n| n.checked_add(v as u64))
                            .ok_or("number overflows u64")?;
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Num(n));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut id = String::new();
                while let Some(&a) = chars.peek() {
                    if a.is_ascii_alphanumeric() || a == '_' {
                        id.push(a);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Tok::Ident(id));
            }
            other => return Err(format!("unexpected character {other:?}")),
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Tok>,
    pos: usize,
}

impl Parser {
    fn next(&mut self) -> Result<Tok, String> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or("unexpected end of input")?;
        self.pos += 1;
        Ok(t)
    }

    fn peek(&self) -> Option<&Tok> {
        self.tokens.get(self.pos)
    }

    fn expect(&mut self, want: Tok) -> Result<(), String> {
        let got = self.next()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected {want:?}, got {got:?}"))
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(format!("trailing input at token {}", self.pos))
        }
    }

    fn ident(&mut self) -> Result<String, String> {
        match self.next()? {
            Tok::Ident(s) => Ok(s),
            other => Err(format!("expected identifier, got {other:?}")),
        }
    }

    fn num(&mut self) -> Result<u64, String> {
        match self.next()? {
            Tok::Num(n) => Ok(n),
            other => Err(format!("expected number, got {other:?}")),
        }
    }

    fn keyword(&mut self, want: &str) -> Result<(), String> {
        let got = self.ident()?;
        if got == want {
            Ok(())
        } else {
            Err(format!("expected field '{want}', got '{got}'"))
        }
    }

    /// `name: <num>` followed by a comma.
    fn num_field(&mut self, name: &str) -> Result<u64, String> {
        self.keyword(name)?;
        self.expect(Tok::Colon)?;
        let n = self.num()?;
        self.expect(Tok::Comma)?;
        Ok(n)
    }

    fn bool_field(&mut self, name: &str) -> Result<bool, String> {
        self.keyword(name)?;
        self.expect(Tok::Colon)?;
        let b = self.bool_value()?;
        self.expect(Tok::Comma)?;
        Ok(b)
    }

    fn bool_value(&mut self) -> Result<bool, String> {
        match self.ident()?.as_str() {
            "true" => Ok(true),
            "false" => Ok(false),
            other => Err(format!("expected bool, got '{other}'")),
        }
    }

    fn ident_field(&mut self, name: &str) -> Result<String, String> {
        self.keyword(name)?;
        self.expect(Tok::Colon)?;
        let v = self.ident()?;
        self.expect(Tok::Comma)?;
        Ok(v)
    }

    fn scenario(&mut self) -> Result<Scenario, String> {
        self.keyword("Scenario")?;
        self.expect(Tok::LParen)?;
        let seed = self.num_field("seed")?;
        let servers = self.num_field("servers")? as usize;
        if servers == 0 {
            return Err("servers must be at least 1".into());
        }
        self.keyword("deployment")?;
        self.expect(Tok::Colon)?;
        let deployment = match self.ident()?.as_str() {
            "Plain" => Deployment::Plain,
            "Gossip" => {
                self.expect(Tok::LParen)?;
                self.keyword("grow_only")?;
                self.expect(Tok::Colon)?;
                let grow_only = self.bool_value()?;
                let merkle = if self.peek() == Some(&Tok::Comma) {
                    self.expect(Tok::Comma)?;
                    self.keyword("merkle")?;
                    self.expect(Tok::Colon)?;
                    self.bool_value()?
                } else {
                    false
                };
                self.expect(Tok::RParen)?;
                Deployment::Gossip { grow_only, merkle }
            }
            "Sharded" => {
                self.expect(Tok::LParen)?;
                self.keyword("shards")?;
                self.expect(Tok::Colon)?;
                let shards = self.num()? as usize;
                if shards == 0 {
                    return Err("shards must be at least 1".into());
                }
                self.expect(Tok::RParen)?;
                Deployment::Sharded { shards }
            }
            other => return Err(format!("unknown deployment '{other}'")),
        };
        self.expect(Tok::Comma)?;
        let semantics = match self.ident_field("semantics")?.as_str() {
            "Snapshot" => Semantics::Snapshot,
            "GrowOnly" => Semantics::GrowOnly,
            "Optimistic" => Semantics::Optimistic,
            "Locked" => Semantics::Locked,
            other => return Err(format!("unknown semantics '{other}'")),
        };
        let read_policy = match self.ident_field("read_policy")?.as_str() {
            "Primary" => ReadPolicy::Primary,
            "Any" => ReadPolicy::Any,
            "Quorum" => ReadPolicy::Quorum,
            "Leaderless" => ReadPolicy::Leaderless,
            "CausalSession" => ReadPolicy::CausalSession,
            other => return Err(format!("unknown read policy '{other}'")),
        };
        let guard_growth = self.bool_field("guard_growth")?;
        let fetch_order = match self.ident_field("fetch_order")?.as_str() {
            "ClosestFirst" => FetchOrder::ClosestFirst,
            "IdOrder" => FetchOrder::IdOrder,
            other => return Err(format!("unknown fetch order '{other}'")),
        };
        let think_ms = self.num_field("think_ms")?;
        let budget = self.num_field("budget")? as usize;
        let start_ms = self.num_field("start_ms")?;

        self.keyword("setup")?;
        self.expect(Tok::Colon)?;
        self.expect(Tok::LBracket)?;
        let mut setup = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            self.expect(Tok::LParen)?;
            let elem = self.num()?;
            self.expect(Tok::Comma)?;
            let home = self.num()? as usize;
            self.expect(Tok::RParen)?;
            setup.push((elem, home));
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Comma)?;

        self.keyword("ops")?;
        self.expect(Tok::Colon)?;
        self.expect(Tok::LBracket)?;
        let mut ops = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            match self.ident()?.as_str() {
                "Add" => {
                    self.expect(Tok::LParen)?;
                    let at_ms = self.num_field("at_ms")?;
                    self.keyword("elem")?;
                    self.expect(Tok::Colon)?;
                    let elem = self.num()?;
                    self.expect(Tok::Comma)?;
                    self.keyword("home")?;
                    self.expect(Tok::Colon)?;
                    let home = self.num()? as usize;
                    self.expect(Tok::RParen)?;
                    ops.push(Op::Add { at_ms, elem, home });
                }
                "Remove" => {
                    self.expect(Tok::LParen)?;
                    let at_ms = self.num_field("at_ms")?;
                    self.keyword("elem")?;
                    self.expect(Tok::Colon)?;
                    let elem = self.num()?;
                    self.expect(Tok::RParen)?;
                    ops.push(Op::Remove { at_ms, elem });
                }
                other => return Err(format!("unknown op '{other}'")),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Comma)?;

        self.keyword("faults")?;
        self.expect(Tok::Colon)?;
        self.expect(Tok::LBracket)?;
        let mut faults = Vec::new();
        while self.peek() != Some(&Tok::RBracket) {
            match self.ident()?.as_str() {
                "Outage" => {
                    self.expect(Tok::LParen)?;
                    let at_ms = self.num_field("at_ms")?;
                    let node = self.num_field("node")? as usize;
                    self.keyword("for_ms")?;
                    self.expect(Tok::Colon)?;
                    let for_ms = self.num()?;
                    self.expect(Tok::RParen)?;
                    faults.push(FaultSpec::Outage {
                        at_ms,
                        node,
                        for_ms,
                    });
                }
                "Partition" => {
                    self.expect(Tok::LParen)?;
                    let at_ms = self.num_field("at_ms")?;
                    self.keyword("side")?;
                    self.expect(Tok::Colon)?;
                    self.expect(Tok::LBracket)?;
                    let mut side = Vec::new();
                    while self.peek() != Some(&Tok::RBracket) {
                        side.push(self.num()? as usize);
                        if self.peek() == Some(&Tok::Comma) {
                            self.next()?;
                        }
                    }
                    self.expect(Tok::RBracket)?;
                    self.expect(Tok::Comma)?;
                    self.keyword("for_ms")?;
                    self.expect(Tok::Colon)?;
                    let for_ms = self.num()?;
                    self.expect(Tok::RParen)?;
                    faults.push(FaultSpec::Partition {
                        at_ms,
                        side,
                        for_ms,
                    });
                }
                "Flap" => {
                    self.expect(Tok::LParen)?;
                    let at_ms = self.num_field("at_ms")?;
                    let a = self.num_field("a")? as usize;
                    let b = self.num_field("b")? as usize;
                    let down_ms = self.num_field("down_ms")?;
                    let up_ms = self.num_field("up_ms")?;
                    self.keyword("cycles")?;
                    self.expect(Tok::Colon)?;
                    let cycles = self.num()? as usize;
                    self.expect(Tok::RParen)?;
                    faults.push(FaultSpec::Flap {
                        at_ms,
                        a,
                        b,
                        down_ms,
                        up_ms,
                        cycles,
                    });
                }
                other => return Err(format!("unknown fault '{other}'")),
            }
            if self.peek() == Some(&Tok::Comma) {
                self.next()?;
            }
        }
        self.expect(Tok::RBracket)?;
        self.expect(Tok::Comma)?;

        let chaos = match self.ident_field("chaos")?.as_str() {
            "None" => Chaos::None,
            "PhantomYield" => Chaos::PhantomYield,
            other => return Err(format!("unknown chaos '{other}'")),
        };
        self.expect(Tok::RParen)?;
        Ok(Scenario {
            seed,
            servers,
            deployment,
            semantics,
            read_policy,
            guard_growth,
            fetch_order,
            think_ms,
            budget,
            start_ms,
            setup,
            ops,
            faults,
            chaos,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Scenario {
        Scenario {
            seed: 42,
            servers: 3,
            deployment: Deployment::Gossip {
                grow_only: false,
                merkle: false,
            },
            semantics: Semantics::GrowOnly,
            read_policy: ReadPolicy::Leaderless,
            guard_growth: true,
            fetch_order: FetchOrder::IdOrder,
            think_ms: 2,
            budget: 16,
            start_ms: 60,
            setup: vec![(1, 0), (2, 1)],
            ops: vec![
                Op::Add {
                    at_ms: 5,
                    elem: 3,
                    home: 2,
                },
                Op::Remove { at_ms: 80, elem: 1 },
            ],
            faults: vec![
                FaultSpec::Outage {
                    at_ms: 65,
                    node: 1,
                    for_ms: 20,
                },
                FaultSpec::Partition {
                    at_ms: 70,
                    side: vec![0, 2],
                    for_ms: 15,
                },
                FaultSpec::Flap {
                    at_ms: 62,
                    a: 0,
                    b: 1,
                    down_ms: 2,
                    up_ms: 5,
                    cycles: 3,
                },
            ],
            chaos: Chaos::None,
        }
    }

    #[test]
    fn round_trips() {
        let s = sample();
        let text = s.to_ron();
        let back = Scenario::from_ron(&text).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn round_trips_with_empty_lists() {
        let s = Scenario {
            setup: Vec::new(),
            ops: Vec::new(),
            faults: Vec::new(),
            chaos: Chaos::PhantomYield,
            ..sample()
        };
        let back = Scenario::from_ron(&s.to_ron()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn sharded_deployment_round_trips() {
        let s = Scenario {
            deployment: Deployment::Sharded { shards: 3 },
            ..sample()
        };
        let text = s.to_ron();
        assert!(text.contains("deployment: Sharded(shards: 3)"));
        assert_eq!(Scenario::from_ron(&text).unwrap(), s);
        assert!(Scenario::from_ron(&text.replace("shards: 3", "shards: 0")).is_err());
    }

    #[test]
    fn merkle_deployment_round_trips() {
        let s = Scenario {
            deployment: Deployment::Gossip {
                grow_only: true,
                merkle: true,
            },
            ..sample()
        };
        let text = s.to_ron();
        assert!(text.contains("deployment: Gossip(grow_only: true, merkle: true)"));
        assert_eq!(Scenario::from_ron(&text).unwrap(), s);
    }

    #[test]
    fn pre_sharding_artifacts_still_parse() {
        // Artifacts written before the Sharded variant existed carry
        // Plain or Gossip deployments; both grammars are unchanged.
        for needle in ["Gossip(grow_only: false)", "Plain"] {
            let s = if needle == "Plain" {
                Scenario {
                    deployment: Deployment::Plain,
                    ..sample()
                }
            } else {
                sample()
            };
            let text = s.to_ron();
            assert!(text.contains(needle));
            assert_eq!(Scenario::from_ron(&text).unwrap(), s);
        }
    }

    #[test]
    fn causal_session_policy_round_trips() {
        let s = Scenario {
            read_policy: ReadPolicy::CausalSession,
            ..sample()
        };
        let text = s.to_ron();
        assert!(text.contains("read_policy: CausalSession"));
        assert_eq!(Scenario::from_ron(&text).unwrap(), s);
    }

    #[test]
    fn comments_are_ignored() {
        let mut text = String::from("// repro artifact\n");
        text.push_str(&sample().to_ron());
        assert_eq!(Scenario::from_ron(&text).unwrap(), sample());
    }

    #[test]
    fn rejects_garbage() {
        assert!(Scenario::from_ron("Scenario(seed: x)").is_err());
        assert!(Scenario::from_ron("").is_err());
        let mut trailing = sample().to_ron();
        trailing.push_str("extra");
        assert!(Scenario::from_ron(&trailing).is_err());
    }

    #[test]
    fn horizon_and_removal_helpers() {
        let s = sample();
        assert!(s.has_removals());
        // Last event: partition heals at 85, remove at 80, flap ends at 83.
        assert_eq!(s.horizon_ms(), 85);
        assert_eq!(
            FaultSpec::Flap {
                at_ms: 62,
                a: 0,
                b: 1,
                down_ms: 2,
                up_ms: 5,
                cycles: 3
            }
            .end_ms(),
            83
        );
    }
}
