//! Repro artifacts: self-contained `.ron` files a failing fuzz run
//! writes, and that any later session (or a checked-in `#[test]`) can
//! replay byte-for-byte.

use crate::run::{self, RunReport};
use crate::scenario::Scenario;
use std::path::{Path, PathBuf};

/// Where the artifact for `seed` lives under `dir`.
pub fn artifact_path(dir: &Path, seed: u64) -> PathBuf {
    dir.join(format!("repro-{seed}.ron"))
}

/// Writes a shrunk scenario (plus the violations it reproduces, as
/// comments) to `dir/repro-<seed>.ron`, creating `dir` if needed.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_artifact(
    dir: &Path,
    scenario: &Scenario,
    violations: &[String],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = artifact_path(dir, scenario.seed);
    let mut text = String::from(
        "// weakset-dst repro artifact.\n\
         // Replay: weakset_dst::repro::replay(path), or `Scenario::from_ron` + `run::execute`.\n",
    );
    for v in violations {
        text.push_str(&format!("// violation: {}\n", v.replace('\n', " ")));
    }
    text.push_str(&scenario.to_ron());
    std::fs::write(&path, text)?;
    Ok(path)
}

/// Loads a scenario back from an artifact file.
///
/// # Errors
///
/// Describes the I/O or parse problem.
pub fn load(path: &Path) -> Result<Scenario, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Scenario::from_ron(&text)
}

/// Loads and re-executes an artifact, returning the (deterministic)
/// report.
///
/// # Errors
///
/// Describes the I/O or parse problem; execution itself cannot fail.
pub fn replay(path: &Path) -> Result<RunReport, String> {
    Ok(run::execute(&load(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn artifacts_round_trip() {
        let dir = std::env::temp_dir().join("weakset-dst-selftest");
        let s = generate(5);
        let path = write_artifact(&dir, &s, &["demo violation\nwith newline".into()]).unwrap();
        assert_eq!(path, artifact_path(&dir, s.seed));
        assert_eq!(load(&path).unwrap(), s);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_reports_missing_files() {
        let err = load(Path::new("/nonexistent/weakset-dst.ron")).unwrap_err();
        assert!(err.contains("weakset-dst.ron"));
    }
}
