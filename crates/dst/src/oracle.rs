//! The conformance oracle: which figure a scenario's computation must
//! satisfy, and under which constraint reading.
//!
//! | Semantics   | Figure | Constraint                                   |
//! |-------------|--------|----------------------------------------------|
//! | Snapshot    | Fig. 4 | none (mutations may be lost)                 |
//! | GrowOnly    | Fig. 5 | grow-only; per-run (§3.3) when the workload  |
//! |             |        | shrinks under a grow guard                   |
//! | Optimistic  | Fig. 6 | none, plus: never fails, and every yield was |
//! |             |        | a member at some point during the run        |
//! | Locked      | Fig. 3 | immutable; per-run (§3.1) when the workload  |
//! |             |        | mutates outside the locked window            |

use crate::scenario::Scenario;
use weakset::prelude::Semantics;
use weakset_spec::checker::{check_computation_with, Figure};
use weakset_spec::constraint::ConstraintKind;
use weakset_spec::specs::fig6;
use weakset_spec::state::Computation;

/// The figure and constraint reading a scenario is judged against.
pub fn spec_for(s: &Scenario) -> (Figure, ConstraintKind) {
    match s.semantics {
        Semantics::Snapshot => (Figure::Fig4, ConstraintKind::None),
        Semantics::GrowOnly => (
            Figure::Fig5,
            if s.has_removals() {
                ConstraintKind::GrowOnlyDuringRuns
            } else {
                ConstraintKind::GrowOnly
            },
        ),
        Semantics::Optimistic => (Figure::Fig6, ConstraintKind::None),
        Semantics::Locked => (
            Figure::Fig3,
            if s.ops.is_empty() {
                ConstraintKind::Immutable
            } else {
                ConstraintKind::ImmutableDuringRuns
            },
        ),
    }
}

/// Checks a recorded computation against the scenario's spec, returning
/// one human-readable message per violation class found.
pub fn check(s: &Scenario, comp: &Computation) -> Vec<String> {
    let mut out = Vec::new();
    let (figure, constraint) = spec_for(s);
    let conf = check_computation_with(figure, constraint, comp);
    if !conf.is_ok() {
        out.push(format!("{figure}: {}", conf.summary()));
    }
    if s.semantics == Semantics::Optimistic {
        for (i, run) in comp.runs.iter().enumerate() {
            if run.failed() {
                out.push(format!("run {i}: optimistic iterator signalled failure"));
            }
            if !fig6::yields_were_members(comp, run) {
                out.push(format!(
                    "run {i}: optimistic yield of an element that was never a member"
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::scenario::{Chaos, Deployment, Op};
    use weakset_store::prelude::ReadPolicy;

    #[test]
    fn spec_table_matches_the_paper() {
        let base = generate(1);
        let s = |sem, ops: Vec<Op>| Scenario {
            semantics: sem,
            ops,
            deployment: Deployment::Plain,
            read_policy: ReadPolicy::Primary,
            chaos: Chaos::None,
            ..base.clone()
        };
        let rm = Op::Remove { at_ms: 5, elem: 1 };
        let add = Op::Add {
            at_ms: 5,
            elem: 100,
            home: 0,
        };
        assert_eq!(
            spec_for(&s(Semantics::Snapshot, vec![rm])),
            (Figure::Fig4, ConstraintKind::None)
        );
        assert_eq!(
            spec_for(&s(Semantics::GrowOnly, vec![add])),
            (Figure::Fig5, ConstraintKind::GrowOnly)
        );
        assert_eq!(
            spec_for(&s(Semantics::GrowOnly, vec![rm])),
            (Figure::Fig5, ConstraintKind::GrowOnlyDuringRuns)
        );
        assert_eq!(
            spec_for(&s(Semantics::Optimistic, vec![])),
            (Figure::Fig6, ConstraintKind::None)
        );
        assert_eq!(
            spec_for(&s(Semantics::Locked, vec![])),
            (Figure::Fig3, ConstraintKind::Immutable)
        );
        assert_eq!(
            spec_for(&s(Semantics::Locked, vec![add])),
            (Figure::Fig3, ConstraintKind::ImmutableDuringRuns)
        );
    }
}
