//! The conformance oracle: which figure a scenario's computation must
//! satisfy, and under which constraint reading.
//!
//! | Semantics   | Figure | Constraint                                   |
//! |-------------|--------|----------------------------------------------|
//! | Snapshot    | Fig. 4 | none (mutations may be lost)                 |
//! | GrowOnly    | Fig. 5 | grow-only; per-run (§3.3) when the workload  |
//! |             |        | shrinks under a grow guard                   |
//! | Optimistic  | Fig. 6 | none                                         |
//! | Locked      | Fig. 3 | immutable; per-run (§3.1) when the workload  |
//! |             |        | mutates outside the locked window            |
//!
//! Every figure is checked through the single visibility/arbitration
//! checker in [`weakset_spec::visibility`]: [`spec_for`] names the figure
//! and constraint, and [`check`] instantiates that figure's [`AxiomSet`]
//! and folds it over the computation. The hand-written Figure 6 extras
//! (never fails, every yield was once a member) are now the
//! `FailureNotAllowed` and §3.4 phantom-yield axioms of that checker, so
//! no per-figure membership logic lives here.
//!
//! [`check_with_session`] additionally installs a causal-session floor
//! (session-order ⊆ visibility): a run that drains the set while the
//! session's own committed inserts are missing is a read-your-writes
//! violation.

use crate::scenario::Scenario;
use weakset::prelude::Semantics;
use weakset_spec::checker::Figure;
use weakset_spec::constraint::ConstraintKind;
use weakset_spec::state::Computation;
use weakset_spec::value::SetValue;
use weakset_spec::visibility::{check_execution, AxiomSet};

/// The figure and constraint reading a scenario is judged against.
pub fn spec_for(s: &Scenario) -> (Figure, ConstraintKind) {
    match s.semantics {
        Semantics::Snapshot => (Figure::Fig4, ConstraintKind::None),
        Semantics::GrowOnly => (
            Figure::Fig5,
            if s.has_removals() {
                ConstraintKind::GrowOnlyDuringRuns
            } else {
                ConstraintKind::GrowOnly
            },
        ),
        Semantics::Optimistic => (Figure::Fig6, ConstraintKind::None),
        Semantics::Locked => (
            Figure::Fig3,
            if s.ops.is_empty() {
                ConstraintKind::Immutable
            } else {
                ConstraintKind::ImmutableDuringRuns
            },
        ),
    }
}

/// The axiom set a scenario's computation is checked against.
pub fn axioms_for(s: &Scenario) -> AxiomSet {
    let (figure, constraint) = spec_for(s);
    AxiomSet::for_figure(figure).with_arbitration(constraint)
}

/// Checks a recorded computation against the scenario's spec, returning
/// one human-readable message per violation class found.
pub fn check(s: &Scenario, comp: &Computation) -> Vec<String> {
    check_with_session(s, comp, &SetValue::empty())
}

/// [`check`], plus a causal-session floor: elements the reading session
/// observed as committed before the runs started, which a terminated run
/// must therefore have yielded.
pub fn check_with_session(s: &Scenario, comp: &Computation, floor: &SetValue) -> Vec<String> {
    let axioms = axioms_for(s).with_session_floor(floor.clone());
    let conf = check_execution(&axioms, comp);
    if conf.is_ok() {
        Vec::new()
    } else {
        vec![format!("{}: {}", axioms.figure, conf.summary())]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::scenario::{Chaos, Deployment, Op};
    use weakset_spec::value::ElemId;
    use weakset_store::prelude::ReadPolicy;

    #[test]
    fn spec_table_matches_the_paper() {
        let base = generate(1);
        let s = |sem, ops: Vec<Op>| Scenario {
            semantics: sem,
            ops,
            deployment: Deployment::Plain,
            read_policy: ReadPolicy::Primary,
            chaos: Chaos::None,
            ..base.clone()
        };
        let rm = Op::Remove { at_ms: 5, elem: 1 };
        let add = Op::Add {
            at_ms: 5,
            elem: 100,
            home: 0,
        };
        assert_eq!(
            spec_for(&s(Semantics::Snapshot, vec![rm])),
            (Figure::Fig4, ConstraintKind::None)
        );
        assert_eq!(
            spec_for(&s(Semantics::GrowOnly, vec![add])),
            (Figure::Fig5, ConstraintKind::GrowOnly)
        );
        assert_eq!(
            spec_for(&s(Semantics::GrowOnly, vec![rm])),
            (Figure::Fig5, ConstraintKind::GrowOnlyDuringRuns)
        );
        assert_eq!(
            spec_for(&s(Semantics::Optimistic, vec![])),
            (Figure::Fig6, ConstraintKind::None)
        );
        assert_eq!(
            spec_for(&s(Semantics::Locked, vec![])),
            (Figure::Fig3, ConstraintKind::Immutable)
        );
        assert_eq!(
            spec_for(&s(Semantics::Locked, vec![add])),
            (Figure::Fig3, ConstraintKind::ImmutableDuringRuns)
        );
    }

    #[test]
    fn every_oracle_is_a_visibility_instantiation() {
        // The axiom table the oracle hands the shared checker, per
        // semantics — no per-figure code paths beyond this table.
        use weakset_spec::visibility::{FailureMode, Vintage};
        let base = generate(1);
        let s = |sem| Scenario {
            semantics: sem,
            ops: vec![],
            deployment: Deployment::Plain,
            read_policy: ReadPolicy::Primary,
            chaos: Chaos::None,
            ..base.clone()
        };
        let ax = axioms_for(&s(Semantics::Optimistic));
        assert_eq!(
            (ax.vintage, ax.failure),
            (Vintage::Pre, FailureMode::Optimistic)
        );
        let ax = axioms_for(&s(Semantics::Snapshot));
        assert_eq!(
            (ax.vintage, ax.failure),
            (Vintage::First, FailureMode::Pessimistic)
        );
        let ax = axioms_for(&s(Semantics::GrowOnly));
        assert_eq!(
            (ax.vintage, ax.failure),
            (Vintage::Pre, FailureMode::Pessimistic)
        );
        let ax = axioms_for(&s(Semantics::Locked));
        assert_eq!(
            (ax.vintage, ax.failure),
            (Vintage::First, FailureMode::Pessimistic)
        );
    }

    #[test]
    fn session_floor_is_enforced_through_the_oracle() {
        use weakset_spec::state::{Outcome, Recorder, State};
        let base = generate(1);
        let s = Scenario {
            semantics: Semantics::Optimistic,
            ops: vec![],
            deployment: Deployment::Plain,
            read_policy: ReadPolicy::CausalSession,
            chaos: Chaos::None,
            ..base.clone()
        };
        let st = || State::fully_accessible([ElemId(1)].into_iter().collect());
        let mut r = Recorder::new(st());
        r.begin_run();
        r.record_invocation(st(), Outcome::Yielded(ElemId(1)));
        r.record_invocation(st(), Outcome::Returned);
        r.end_run();
        let comp = r.finish();
        assert!(check(&s, &comp).is_empty());
        let floor: SetValue = [ElemId(1), ElemId(2)].into_iter().collect();
        let msgs = check_with_session(&s, &comp, &floor);
        assert_eq!(msgs.len(), 1, "{msgs:?}");
        assert!(msgs[0].contains("session"), "{msgs:?}");
    }
}
