//! Regressions the `--digest-mode merkle` fuzz leg found in the
//! Merkle-range exchange, pinned as replayable scenarios.

use weakset_dst::prelude::*;

/// Regression (mid-exchange vector skew): the push leg used to re-read
/// the origin's *live* digest after the descent. An add landing between
/// the exchange's tree snapshot and that re-read produced a batch whose
/// vector covered the fresh dot while its entry was in neither half of
/// the diff — the receiver joined the vector, then refused the entry
/// forever as already-seen (`apply_batch` treats covered-but-absent as
/// removed). The fuzzer shrank it to two adds on a three-node grow-only
/// deployment; the pair diverged permanently with zero faults.
#[test]
fn concurrent_add_during_merkle_exchange_converges() {
    let scenario = Scenario::from_ron(
        "Scenario(
    seed: 8346079845500723674,
    servers: 3,
    deployment: Gossip(grow_only: true, merkle: true),
    semantics: Optimistic,
    read_policy: Primary,
    guard_growth: false,
    fetch_order: IdOrder,
    think_ms: 4,
    budget: 36,
    start_ms: 72,
    setup: [],
    ops: [Add(at_ms: 10, elem: 100, home: 1), Add(at_ms: 15, elem: 101, home: 1)],
    faults: [],
    chaos: None,
)",
    )
    .expect("pinned artifact must parse");
    let report = execute(&scenario);
    assert_eq!(
        report.violations,
        Vec::<String>::new(),
        "merkle gossip must converge under adds racing the exchange"
    );
}

/// The merkle generator's seed stream stays violation-free across both
/// digest modes (a slice of the fuzz leg, pinned so `cargo test` alone
/// catches a reintroduction).
#[test]
fn merkle_seed_stream_stays_clean() {
    for i in 0..12 {
        let scenario = generate_merkle(mix(7, i));
        let report = execute(&scenario);
        assert_eq!(
            report.violations,
            Vec::<String>::new(),
            "seed {} (iter {i})",
            scenario.seed
        );
    }
}
