//! End-to-end tests for the record/replay bridge: scenarios run live on
//! the threaded runtime with a recorder attached, then replay through
//! the deterministic simulator where the conformance oracles, shrinker,
//! and explainer re-judge them.

use weakset::prelude::{FetchOrder, Semantics};
use weakset_dst::prelude::*;
use weakset_runtime::record::RecEvent;
use weakset_store::prelude::ReadPolicy;

fn base_scenario(seed: u64) -> Scenario {
    Scenario {
        seed,
        servers: 2,
        deployment: Deployment::Plain,
        semantics: Semantics::Snapshot,
        read_policy: ReadPolicy::Primary,
        guard_growth: false,
        fetch_order: FetchOrder::IdOrder,
        think_ms: 1,
        budget: 16,
        start_ms: 10,
        setup: vec![(1, 0), (2, 1), (3, 0)],
        ops: vec![
            Op::Add {
                at_ms: 5,
                elem: 4,
                home: 1,
            },
            Op::Remove { at_ms: 8, elem: 2 },
        ],
        faults: vec![],
        chaos: Chaos::None,
    }
}

/// Satellite 1: one threaded run, recorded; two independent replays must
/// be byte-identical (equal sim trace hashes) and match the live run's
/// observable outcome.
#[test]
fn replaying_a_recording_is_deterministic() {
    let s = base_scenario(0xD57);
    let live = record_scenario(&s).expect("record");
    assert!(
        live.report.violations.is_empty(),
        "live violations: {:?}",
        live.report.violations
    );
    assert!(!live.recording.truncated, "clean run must not truncate");
    assert!(!live.recording.entries.is_empty());

    let a = replay_recording(&live.recording).expect("replay a");
    let b = replay_recording(&live.recording).expect("replay b");
    assert_eq!(a.divergences, Vec::<String>::new());
    assert_eq!(b.divergences, Vec::<String>::new());
    assert_eq!(
        a.report.trace_hash, b.report.trace_hash,
        "two replays of one recording must produce identical sim traces"
    );
    assert_ne!(a.report.trace_hash, 0, "replay carries a real trace hash");
    assert_eq!(a.report.yielded, b.report.yielded);
    assert_eq!(a.report.violations, b.report.violations);
    assert_eq!(a.membership, b.membership);

    // And the replay reproduces the live run's observable outcome.
    assert_eq!(a.report.yielded, live.report.yielded);
    assert_eq!(a.membership, live.membership);
    assert!(a.report.violations.is_empty(), "{:?}", a.report.violations);
    assert!(a.report.metrics.counter("replay.divergence") == 0);
    assert!(a.report.metrics.counter("replay.rpc.replayed") > 0);
}

/// Satellite 3: a partition plus a link flap during the live run. The
/// recording must capture the reachability transitions, and the replay
/// must reproduce the outcome divergence-free — including any
/// blocked-then-healed behaviour the optimistic iterator saw.
#[test]
fn faulted_threaded_run_replays_deterministically() {
    let mut s = base_scenario(0xFA17);
    s.semantics = Semantics::Optimistic;
    s.read_policy = ReadPolicy::Primary;
    s.setup = vec![(1, 0), (2, 1)];
    s.ops = vec![];
    s.faults = vec![
        FaultSpec::Partition {
            at_ms: 15,
            side: vec![1],
            for_ms: 40,
        },
        FaultSpec::Flap {
            at_ms: 20,
            a: 0,
            b: 1,
            down_ms: 4,
            up_ms: 4,
            cycles: 2,
        },
    ];

    let live = record_scenario(&s).expect("record");
    assert!(
        live.report.violations.is_empty(),
        "optimistic + self-healing faults must pass live: {:?}",
        live.report.violations
    );

    let cuts = live
        .recording
        .entries
        .iter()
        .filter(|e| matches!(e.ev, RecEvent::SetReachable { ok: false, .. }))
        .count();
    let heals = live
        .recording
        .entries
        .iter()
        .filter(|e| matches!(e.ev, RecEvent::SetReachable { ok: true, .. }))
        .count();
    assert!(cuts > 0, "partition + flap must record reachability cuts");
    assert_eq!(cuts, heals, "every recorded cut must record its heal");

    let a = replay_recording(&live.recording).expect("replay a");
    let b = replay_recording(&live.recording).expect("replay b");
    assert_eq!(a.divergences, Vec::<String>::new());
    assert_eq!(a.report.trace_hash, b.report.trace_hash);
    assert_eq!(a.report.yielded, live.report.yielded);
    assert_eq!(a.membership, live.membership);
    assert!(a.report.violations.is_empty(), "{:?}", a.report.violations);
    assert!(
        a.report.metrics.counter("replay.fault.applied") >= (cuts + heals) as u64,
        "replay must apply the recorded transitions to the sim topology"
    );
}

/// Satellite 4 (b): a hand-truncated recording — as a hung shutdown
/// would leave behind — replays its completed prefix without panicking
/// or reporting divergences, and the prefix replay is deterministic.
#[test]
fn truncated_recording_replays_its_prefix() {
    let s = base_scenario(0x7C); // Snapshot: any prefix is a legal run
    let live = record_scenario(&s).expect("record");
    assert!(live.report.violations.is_empty());

    // Cut the log at the second iterator invocation, as if the run had
    // died there, and mark it the way ThreadedRuntime::shutdown does.
    let mut cut = live.recording.clone();
    let cut_at = cut
        .entries
        .iter()
        .position(|e| matches!(&e.ev, RecEvent::Region { label } if label == "inv.2"))
        .expect("run long enough to have a second invocation");
    cut.entries.truncate(cut_at);
    cut.truncated = true;

    let a = replay_recording(&cut).expect("truncated replay");
    let b = replay_recording(&cut).expect("truncated replay");
    assert_eq!(
        a.divergences,
        Vec::<String>::new(),
        "a truncated log's missing tail is expected, not a divergence"
    );
    assert_eq!(a.report.trace_hash, b.report.trace_hash);
    // Exactly the first invocation completed before the cut.
    assert_eq!(a.report.steps, 1);
    assert_eq!(a.report.yielded.len(), 1);
    assert_eq!(a.report.yielded, live.report.yielded[..1].to_vec());
}

/// Tampering with a recorded payload must surface as a divergence —
/// loudly, in both the report and the metrics — never silently.
#[test]
fn payload_tampering_is_reported_as_divergence() {
    let s = base_scenario(0xBAD);
    let live = record_scenario(&s).expect("record");

    let mut tampered = live.recording.clone();
    let idx = tampered
        .entries
        .iter()
        .position(|e| matches!(e.ev, RecEvent::Rpc { .. }))
        .expect("log contains rpcs");
    if let RecEvent::Rpc { req_hash, .. } = &mut tampered.entries[idx].ev {
        *req_hash ^= 0xDEAD_BEEF;
    }

    let rep = replay_recording(&tampered).expect("replay");
    assert!(
        !rep.divergences.is_empty(),
        "hash mismatch must be reported"
    );
    assert!(rep.divergences.iter().any(|d| d.contains("payload")));
    assert!(rep.report.metrics.counter("replay.divergence") > 0);
}

/// The full failure pipeline over a recording: a chaos-injected
/// violation survives a disk round-trip, the *recording* shrinks while
/// still violating, and `explain` runs over the replayed report.
#[test]
fn violating_recording_shrinks_and_explains() {
    let mut s = base_scenario(0x51);
    s.chaos = Chaos::PhantomYield;
    s.setup = vec![(1, 0), (2, 1)];
    s.ops = vec![Op::Add {
        at_ms: 5,
        elem: 7,
        home: 0,
    }];
    s.faults = vec![FaultSpec::Outage {
        at_ms: 12,
        node: 1,
        for_ms: 10,
    }];

    let live = record_scenario(&s).expect("record");
    assert!(
        !live.report.violations.is_empty(),
        "phantom yield must violate the snapshot oracle"
    );

    // Disk round-trip, as the CLI writes it.
    let dir = std::env::temp_dir().join(format!("weakset-rr-e2e-{}", std::process::id()));
    let path = write_recording(&dir, &live.recording).expect("write");
    let loaded = load_recording(&path).expect("load");
    assert_eq!(loaded, live.recording);
    std::fs::remove_dir_all(&dir).ok();

    let rep = replay_recording(&loaded).expect("replay");
    assert!(
        !rep.report.violations.is_empty(),
        "replay must reproduce the violation: {:?}",
        rep.divergences
    );

    let (shrunk, execs) = shrink_recording(&loaded);
    assert!(execs > 1, "shrinking must actually explore candidates");
    assert!(shrunk.entries.len() <= loaded.entries.len());
    let shrunk_s = Scenario::from_ron(&shrunk.workload).expect("shrunk workload parses");
    // The chaos violation needs none of the workload: everything drops.
    assert!(shrunk_s.setup.is_empty(), "setup should shrink away");
    assert!(shrunk_s.ops.is_empty(), "ops should shrink away");
    assert!(shrunk_s.faults.is_empty(), "faults should shrink away");
    let min = replay_recording(&shrunk).expect("shrunk replay");
    assert!(
        !min.report.violations.is_empty(),
        "shrunk recording must still violate"
    );

    // The causal explainer accepts the replayed report as-is.
    let _ = explain(&min.report);
}
