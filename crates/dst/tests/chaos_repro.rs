//! The violation pipeline, end to end: a deliberately injected spec
//! violation (the [`Chaos::PhantomYield`] sabotage flag) is caught by the
//! oracle, shrunk to a minimal scenario, persisted as a repro artifact,
//! and replayed from that artifact — including the checked-in example
//! under `dst/repro-chaos-example.ron`.

use std::path::PathBuf;
use weakset_dst::prelude::*;

/// A busy scenario with plenty to shrink away, sabotaged.
fn sabotaged() -> Scenario {
    let mut s = generate(mix(4242, 3));
    s.deployment = Deployment::Plain;
    s.ops = vec![
        Op::Add {
            at_ms: 15,
            elem: 100,
            home: 0,
        },
        Op::Add {
            at_ms: 40,
            elem: 101,
            home: 1,
        },
    ];
    s.faults = vec![FaultSpec::Outage {
        at_ms: 20,
        node: 1,
        for_ms: 15,
    }];
    s.chaos = Chaos::PhantomYield;
    s
}

#[test]
fn injected_violation_is_caught_shrunk_and_replayed() {
    let s = sabotaged();
    let report = execute(&s);
    assert!(
        !report.violations.is_empty(),
        "phantom yield went undetected"
    );

    // Shrinking keeps the violation while discarding the incidental
    // workload and fault schedule (the sabotage survives any drop).
    let (small, execs) = shrink(&s);
    assert!(execs > 0);
    assert!(small.ops.is_empty(), "ops not shrunk away: {:?}", small.ops);
    assert!(
        small.faults.is_empty(),
        "faults not shrunk away: {:?}",
        small.faults
    );
    let small_report = execute(&small);
    assert!(!small_report.violations.is_empty());

    // Persist and replay: the artifact is self-contained and the replay
    // reproduces the identical run.
    let dir = std::env::temp_dir().join("weakset-dst-chaos-test");
    let path = write_artifact(&dir, &small, &small_report.violations).unwrap();
    let replayed = replay(&path).unwrap();
    assert_eq!(replayed.trace_hash, small_report.trace_hash);
    assert_eq!(replayed.violations, small_report.violations);
    std::fs::remove_file(&path).ok();
}

/// The checked-in example artifact replays as a normal test and still
/// reports its violation.
#[test]
fn checked_in_artifact_replays() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../dst/repro-chaos-example.ron")
        .canonicalize()
        .expect("checked-in artifact exists");
    let scenario = load(&path).unwrap();
    assert_eq!(scenario.chaos, Chaos::PhantomYield);

    let report = replay(&path).unwrap();
    assert!(
        !report.violations.is_empty(),
        "checked-in sabotage artifact replayed clean"
    );
    // The honest part of the run still yields the real members; only the
    // forged post-run invocation is rejected.
    let mut got = report.yielded.clone();
    got.sort_unstable();
    assert_eq!(got, vec![1, 2]);

    // Replay is deterministic: executing the parsed scenario directly
    // matches the artifact replay.
    let direct = execute(&scenario);
    assert_eq!(direct.trace_hash, report.trace_hash);
    assert_eq!(direct.violations, report.violations);
}
