//! Determinism regression: the whole stack — simulator, store, gossip,
//! iterators, fault injection, the fuzz driver itself — must be a pure
//! function of the scenario seed. Replayable repro artifacts and sound
//! shrinking both stand on this.

use weakset_dst::prelude::*;

/// Same seed, two full executions, byte-identical traces.
#[test]
fn same_seed_same_trace_hash() {
    for i in 0..8 {
        let scenario = generate(mix(42, i));
        let a = execute(&scenario);
        let b = execute(&scenario);
        assert_eq!(
            a.trace_hash, b.trace_hash,
            "seed {}: trace diverged between executions",
            scenario.seed
        );
        assert_eq!(a.yielded, b.yielded, "seed {}", scenario.seed);
        assert_eq!(a.steps, b.steps, "seed {}", scenario.seed);
        assert_eq!(a.violations, b.violations, "seed {}", scenario.seed);
    }
}

/// Different seeds explore different schedules: across a batch of
/// scenarios the trace hashes are not all equal.
#[test]
fn different_seeds_diverge() {
    let hashes: Vec<u64> = (0..8)
        .map(|i| execute(&generate(mix(7, i))).trace_hash)
        .collect();
    assert!(
        hashes.iter().any(|&h| h != hashes[0]),
        "8 distinct seeds produced identical traces: {hashes:?}"
    );
}

/// The generator itself is pure: scenario construction never consults
/// ambient state.
#[test]
fn generation_is_pure() {
    for i in 0..50 {
        let seed = mix(1, i);
        assert_eq!(generate(seed), generate(seed));
    }
}
