//! Criterion bench for E7: partial listings under partition.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::PrefetchConfig;
use weakset_fs::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::prelude::{StoreServer, StoreWorld};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_partial_listing");
    for cut in [2usize, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(cut), &cut, |b, &cut| {
            b.iter(|| {
                let mut topo = Topology::new();
                let client = topo.add_node("client", 0);
                let vols: Vec<_> = (0..8)
                    .map(|i| topo.add_node(format!("vol{i}"), i + 1))
                    .collect();
                let mut config = WorldConfig::seeded(7);
                config.trace = false;
                let mut w = StoreWorld::new(
                    config,
                    topo,
                    LatencyModel::Constant(SimDuration::from_millis(5)),
                );
                for &v in &vols {
                    w.install_service(v, Box::new(StoreServer::new()));
                }
                let mut fs =
                    FileSystem::format(&mut w, client, vols[0], SimDuration::from_millis(300))
                        .expect("healthy");
                flat_dir(&mut w, &mut fs, &FsPath::root(), 64, 64, &vols).expect("healthy");
                let side: Vec<_> = vols[8 - cut..].to_vec();
                w.topology_mut().partition(&side);
                let mut listing = fs
                    .dynls(&mut w, &FsPath::root(), PrefetchConfig::default())
                    .expect("home reachable");
                let (entries, _end) = listing.drain_available(&mut w);
                assert_eq!(entries.len(), 64 * (8 - cut) / 8);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
