//! Criterion bench for E8: trace classification cost.

use criterion::{criterion_group, criterion_main, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, wan};
use weakset_sim::time::SimDuration;
use weakset_spec::taxonomy::classify_run;

fn bench(c: &mut Criterion) {
    c.bench_function("e8_classify_run", |b| {
        // Record one computation, then measure pure classification.
        let mut w = wan(8, 4, SimDuration::from_millis(5));
        let set = populated_set(&mut w, 64, SimDuration::from_millis(100));
        let mut it = set.elements_observed(Semantics::Optimistic);
        loop {
            match it.next(&mut w.world) {
                IterStep::Yielded(_) => {}
                IterStep::Done => break,
                other => panic!("{other:?}"),
            }
        }
        let comp = it.take_computation(&w.world).expect("observed");
        b.iter(|| {
            let run = comp.runs.first().expect("run");
            std::hint::black_box(classify_run(&comp, run));
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
