//! Criterion bench for E4: grow-only iteration racing a producer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, schedule_growth, wan};
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e4_growonly_race");
    for interval_ms in [80u64, 10] {
        g.bench_with_input(
            BenchmarkId::from_parameter(interval_ms),
            &interval_ms,
            |b, &interval_ms| {
                b.iter(|| {
                    let mut w = wan(4, 4, SimDuration::from_millis(5));
                    let set = populated_set(&mut w, 10, SimDuration::from_millis(100));
                    let now = w.world.now();
                    schedule_growth(&mut w, &set, now, SimDuration::from_millis(interval_ms), 60);
                    let mut it = set.elements(Semantics::GrowOnly);
                    let mut yields = 0;
                    for _ in 0..80 {
                        match it.next(&mut w.world) {
                            IterStep::Yielded(_) => yields += 1,
                            IterStep::Done => break,
                            other => panic!("{other:?}"),
                        }
                    }
                    assert!(yields >= 10);
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
