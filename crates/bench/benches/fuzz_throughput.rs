//! Criterion bench for the DST fuzzer: end-to-end scenario throughput
//! (generate + execute + oracle-check), the number that sizes the CI
//! fuzz gate's iteration budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset_dst::prelude::{execute, generate, mix};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("dst_fuzz_throughput");
    for &seed in &[1u64, 42] {
        g.bench_with_input(BenchmarkId::from_parameter(seed), &seed, |b, &seed| {
            let mut iter = 0u64;
            b.iter(|| {
                let scenario = generate(mix(seed, iter));
                iter = iter.wrapping_add(1);
                let report = execute(&scenario);
                assert!(report.violations.is_empty(), "{:?}", report.violations);
                report.trace_hash
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
