//! Criterion bench for E2: snapshot iteration under partitions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, wan};
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e2_partitioned_drain");
    for cut in [0usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(cut), &cut, |b, &cut| {
            b.iter(|| {
                let mut w = wan(2, 8, SimDuration::from_millis(5));
                let set = populated_set(&mut w, 64, SimDuration::from_millis(100));
                if cut > 0 {
                    let side: Vec<_> = w.servers[8 - cut..].to_vec();
                    w.world.topology_mut().partition(&side);
                }
                let (_, end) = set.collect(&mut w.world, Semantics::Snapshot);
                if cut == 0 {
                    assert_eq!(end, IterStep::Done);
                } else {
                    assert!(matches!(end, IterStep::Failed(_)));
                }
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
