//! Criterion bench for E6: strict ls vs dynamic-set listing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::PrefetchConfig;
use weakset_fs::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::time::SimDuration;
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::prelude::{StoreServer, StoreWorld};

fn fs_world(n_files: usize) -> (StoreWorld, FileSystem) {
    let mut topo = Topology::new();
    let client = topo.add_node("client", 0);
    let vols: Vec<_> = (0..8)
        .map(|i| topo.add_node(format!("vol{i}"), i + 1))
        .collect();
    let mut config = WorldConfig::seeded(6);
    config.trace = false;
    let mut world = StoreWorld::new(
        config,
        topo,
        LatencyModel::Constant(SimDuration::from_millis(5)),
    );
    for &v in &vols {
        world.install_service(v, Box::new(StoreServer::new()));
    }
    let mut fs = FileSystem::format(&mut world, client, vols[0], SimDuration::from_millis(500))
        .expect("healthy");
    flat_dir(&mut world, &mut fs, &FsPath::root(), n_files, 64, &vols).expect("healthy");
    (world, fs)
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_listing");
    {
        let n = 64usize;
        g.bench_with_input(BenchmarkId::new("ls", n), &n, |b, &n| {
            b.iter(|| {
                let (mut w, fs) = fs_world(n);
                let listing = fs.ls(&mut w, &FsPath::root()).expect("healthy");
                assert_eq!(listing.len(), n);
            });
        });
        g.bench_with_input(BenchmarkId::new("dynls_w16", n), &n, |b, &n| {
            b.iter(|| {
                let (mut w, fs) = fs_world(n);
                let mut listing = fs
                    .dynls(
                        &mut w,
                        &FsPath::root(),
                        PrefetchConfig {
                            window: 16,
                            ..Default::default()
                        },
                    )
                    .expect("healthy");
                let (entries, end) = listing.drain_available(&mut w);
                assert_eq!(end, DynLsStep::Complete);
                assert_eq!(entries.len(), n);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
