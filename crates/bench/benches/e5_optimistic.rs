//! Criterion bench for E5: optimistic iteration through a partition+heal.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{drive, populated_set, wan};
use weakset_sim::fault::FaultPlan;
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_optimistic_heal");
    for heal_ms in [100u64, 500] {
        g.bench_with_input(
            BenchmarkId::from_parameter(heal_ms),
            &heal_ms,
            |b, &heal_ms| {
                b.iter(|| {
                    let mut w = wan(5, 8, SimDuration::from_millis(5));
                    let set = populated_set(&mut w, 32, SimDuration::from_millis(100));
                    let side: Vec<_> = w.servers[4..].to_vec();
                    w.world.topology_mut().partition(&side);
                    let heal_at = w.world.now() + SimDuration::from_millis(heal_ms);
                    w.world.install_plan(&FaultPlan::none().heal_at(heal_at));
                    let mut it = set.elements(Semantics::Optimistic);
                    let (yields, step, _) =
                        drive(&mut w.world, &mut it, 40, SimDuration::from_millis(50));
                    assert_eq!(step, IterStep::Done);
                    assert_eq!(yields, 32);
                });
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
