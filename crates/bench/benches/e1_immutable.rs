//! Criterion bench for E1: fault-free snapshot iteration cost vs set size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, wan};
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_immutable_drain");
    for n in [16usize, 64, 256] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let mut w = wan(1, 8, SimDuration::from_millis(5));
                let set = populated_set(&mut w, n, SimDuration::from_millis(100));
                let (got, end) = set.collect(&mut w.world, Semantics::Snapshot);
                assert_eq!(end, IterStep::Done);
                assert_eq!(got.len(), n);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
