//! Criterion bench for E9: locked vs snapshot iteration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, wan};
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_strong_vs_weak");
    for (name, semantics) in [
        ("locked", Semantics::Locked),
        ("snapshot", Semantics::Snapshot),
    ] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &semantics, |b, &s| {
            b.iter(|| {
                let mut w = wan(9, 4, SimDuration::from_millis(5));
                let set = populated_set(&mut w, 32, SimDuration::from_millis(100));
                let (got, end) = set.collect(&mut w.world, s);
                assert_eq!(end, IterStep::Done);
                assert_eq!(got.len(), 32);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
