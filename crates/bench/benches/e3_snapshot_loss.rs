//! Criterion bench for E3: snapshot iteration with concurrent churn.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset::prelude::*;
use weakset_bench::scenarios::{populated_set, schedule_churn_over, wan};
use weakset_sim::time::SimDuration;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e3_churned_snapshot");
    for churn in [0usize, 8, 32] {
        g.bench_with_input(BenchmarkId::from_parameter(churn), &churn, |b, &churn| {
            b.iter(|| {
                let mut w = wan(3, 4, SimDuration::from_millis(5));
                let set = populated_set(&mut w, 40, SimDuration::from_millis(100));
                if churn > 0 {
                    let now = w.world.now();
                    schedule_churn_over(
                        &mut w,
                        &set,
                        now,
                        SimDuration::from_millis(20),
                        churn,
                        0.5,
                        40,
                        churn as u64,
                    );
                }
                let (_, end) = set.collect(&mut w.world, Semantics::Snapshot);
                assert_eq!(end, IterStep::Done);
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
