//! Criterion bench for E10: anti-entropy convergence across fan-outs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use weakset_bench::experiments::e10_gossip;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e10_gossip_convergence");
    g.bench_with_input(BenchmarkId::from_parameter("sweep"), &(), |b, ()| {
        b.iter(|| {
            let points = e10_gossip::convergence_points();
            assert!(points.iter().all(|p| p.rounds > 0));
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(3))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench
}
criterion_main!(benches);
