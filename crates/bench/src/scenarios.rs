//! Shared world/workload builders for the experiments.

use weakset::prelude::*;
use weakset_sim::latency::LatencyModel;
use weakset_sim::node::NodeId;
use weakset_sim::time::{SimDuration, SimTime};
use weakset_sim::topology::Topology;
use weakset_sim::world::WorldConfig;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{StoreClient, StoreServer, StoreWorld};

/// A standard WAN deployment: one client plus `n_servers` servers at
/// distinct sites.
pub struct Wan {
    /// The world.
    pub world: StoreWorld,
    /// The client's node.
    pub client_node: NodeId,
    /// Server nodes in site order.
    pub servers: Vec<NodeId>,
}

/// Builds a WAN world with constant one-way latency.
pub fn wan(seed: u64, n_servers: usize, one_way: SimDuration) -> Wan {
    wan_with_model(seed, n_servers, LatencyModel::Constant(one_way))
}

/// Builds a WAN world with an arbitrary latency model. The determinism
/// trace is off (experiment runs can be long) but the causal event sink
/// is on: every snapshot carries per-kind event counts and
/// critical-path objectives.
pub fn wan_with_model(seed: u64, n_servers: usize, latency: LatencyModel) -> Wan {
    let mut topo = Topology::new();
    let client_node = topo.add_node("client", 0);
    let servers: Vec<NodeId> = topo.add_servers("server-", n_servers);
    let mut config = WorldConfig::seeded(seed);
    config.trace = false;
    config.default_timeout = SimDuration::from_millis(200);
    let mut world = StoreWorld::new(config, topo, latency);
    world.events_mut().set_enabled(true);
    for &s in &servers {
        world.install_service(s, Box::new(StoreServer::new()));
    }
    Wan {
        world,
        client_node,
        servers,
    }
}

/// Creates a weak set of `n` elements spread round-robin over the
/// servers, returning the set handle.
pub fn populated_set(wan: &mut Wan, n: usize, timeout: SimDuration) -> WeakSet {
    let client = StoreClient::new(wan.client_node, timeout);
    let cref = weakset_store::prelude::CollectionRef::unreplicated(CollectionId(1), wan.servers[0]);
    client
        .create_collection(&mut wan.world, &cref)
        .expect("healthy world at setup");
    let set = WeakSet::new(client, cref);
    for i in 0..n {
        let home = wan.servers[i % wan.servers.len()];
        set.add(
            &mut wan.world,
            ObjectRecord::new(ObjectId(i as u64 + 1), format!("obj-{i}"), vec![b'x'; 64]),
            home,
        )
        .expect("healthy world at setup");
    }
    set
}

/// Schedules `count` membership mutations, evenly spaced `interval`
/// apart starting at `start`: with probability `add_fraction` an add of a
/// fresh element, otherwise a remove of a random element among ids
/// `1..=existing` (the initial population).
#[allow(clippy::too_many_arguments)]
pub fn schedule_churn_over(
    wan: &mut Wan,
    set: &WeakSet,
    start: SimTime,
    interval: SimDuration,
    count: usize,
    add_fraction: f64,
    existing: u64,
    seed: u64,
) {
    let mut rng = wan.world.rng_for(&format!("churn-{seed}"));
    let cref = set.cref().clone();
    let n_existing = existing.max(1);
    for k in 0..count {
        let at = start + interval.saturating_mul(k as u64 + 1);
        let cref = cref.clone();
        let is_add = rng.chance(add_fraction);
        let fresh = 10_000 + k as u64;
        let victim = rng.range_u64(1, n_existing + 1);
        let home = wan.servers[k % wan.servers.len()];
        // Environment actions apply at the servers directly (loopback):
        // realistic interleaving in time without recursing through the
        // event loop for long mutation streams.
        wan.world.spawn_at(at, move |w: &mut StoreWorld| {
            if is_add {
                let rec =
                    ObjectRecord::new(ObjectId(fresh), format!("fresh-{fresh}"), vec![b'y'; 64]);
                if let Some(srv) = w.service_mut::<StoreServer>(home) {
                    srv.apply(weakset_store::msg::StoreMsg::PutObject(rec));
                }
                if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                    primary.apply(weakset_store::msg::StoreMsg::AddMember {
                        coll: cref.id,
                        entry: weakset_store::collection::MemberEntry {
                            elem: ObjectId(fresh),
                            home,
                        },
                    });
                }
            } else if let Some(primary) = w.service_mut::<StoreServer>(cref.home) {
                primary.apply(weakset_store::msg::StoreMsg::RemoveMember {
                    coll: cref.id,
                    elem: ObjectId(victim),
                });
            }
        });
    }
}

/// [`schedule_churn_over`] with a default population of 1000.
#[allow(clippy::too_many_arguments)]
pub fn schedule_churn(
    wan: &mut Wan,
    set: &WeakSet,
    start: SimTime,
    interval: SimDuration,
    count: usize,
    add_fraction: f64,
    seed: u64,
) {
    schedule_churn_over(wan, set, start, interval, count, add_fraction, 1_000, seed);
}

/// Schedules `count` pure additions (grow-only churn).
pub fn schedule_growth(
    wan: &mut Wan,
    set: &WeakSet,
    start: SimTime,
    interval: SimDuration,
    count: usize,
) {
    schedule_churn(wan, set, start, interval, count, 1.1, 0);
}

/// Drives an iterator to its terminal step (bounded), returning
/// `(yield count, final step, blocked invocations)`.
pub fn drive(
    world: &mut StoreWorld,
    it: &mut Elements,
    max_blocks: usize,
    wait: SimDuration,
) -> (usize, IterStep, usize) {
    let mut yields = 0;
    let mut blocks = 0;
    let mut consecutive = 0;
    loop {
        match it.next(world) {
            IterStep::Yielded(_) => {
                consecutive = 0;
                yields += 1;
            }
            IterStep::Blocked => {
                blocks += 1;
                consecutive += 1;
                if consecutive >= max_blocks {
                    return (yields, IterStep::Blocked, blocks);
                }
                world.sleep(wait);
            }
            step => return (yields, step, blocks),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use weakset::semantics::Semantics;

    #[test]
    fn wan_and_population_build() {
        let mut w = wan(1, 4, SimDuration::from_millis(5));
        let set = populated_set(&mut w, 12, SimDuration::from_millis(100));
        assert_eq!(set.size(&mut w.world).unwrap(), 12);
    }

    #[test]
    fn drive_completes_a_simple_run() {
        let mut w = wan(2, 3, SimDuration::from_millis(2));
        let set = populated_set(&mut w, 9, SimDuration::from_millis(100));
        let mut it = set.elements(Semantics::Optimistic);
        let (yields, step, blocks) = drive(&mut w.world, &mut it, 3, SimDuration::from_millis(10));
        assert_eq!(yields, 9);
        assert_eq!(step, IterStep::Done);
        assert_eq!(blocks, 0);
    }

    #[test]
    fn churn_mutates_during_sleep() {
        let mut w = wan(3, 2, SimDuration::from_millis(1));
        let set = populated_set(&mut w, 5, SimDuration::from_millis(100));
        let now = w.world.now();
        schedule_churn(
            &mut w,
            &set,
            now,
            SimDuration::from_millis(5),
            10,
            1.1, // all adds
            0,
        );
        w.world.sleep(SimDuration::from_millis(200));
        assert_eq!(set.size(&mut w.world).unwrap(), 15);
    }
}
