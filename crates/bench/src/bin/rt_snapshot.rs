//! Real-clock runtime benchmark: drives the threaded backend with
//! concurrent client threads and emits `BENCH_rt.json` — membership-read
//! throughput (ops/sec) and read-latency p99 per read policy.
//!
//! ```text
//! cargo run --release -p weakset-bench --bin rt_snapshot
//! cargo run --release -p weakset-bench --bin rt_snapshot -- --out target/bench --threads 4 --ops 2000
//! ```
//!
//! Unlike the simulator snapshots (E1–E11), these numbers come from the
//! wall clock on real OS threads and real mailboxes, so they vary with
//! the machine and the scheduler. The CI compare gate therefore treats
//! `BENCH_rt.json` as *report-only*: deltas are printed next to the
//! gated objectives but never fail the build.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use weakset_obs::{Direction, MetricsRegistry};
use weakset_runtime::prelude::*;
use weakset_sim::node::NodeId;
use weakset_sim::time::SimDuration;
use weakset_store::collection::MemberEntry;
use weakset_store::msg::StoreMsg;
use weakset_store::object::{CollectionId, ObjectId, ObjectRecord};
use weakset_store::prelude::{CollectionRef, ReadPolicy, StoreClient, StoreServer};

const COLL: CollectionId = CollectionId(1);
const MEMBERS: u64 = 64;

fn policy_label(p: ReadPolicy) -> &'static str {
    match p {
        ReadPolicy::Primary => "primary",
        ReadPolicy::Any => "any",
        ReadPolicy::Quorum => "quorum",
        ReadPolicy::Leaderless => "leaderless",
        ReadPolicy::CausalSession => "causal_session",
    }
}

fn main() {
    let mut out = PathBuf::from(".");
    let mut seed = 42u64;
    let mut threads = 4usize;
    let mut ops = 2000usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(args.next().expect("--out requires a directory")),
            "--seed" => {
                seed = args
                    .next()
                    .expect("--seed requires a value")
                    .parse()
                    .expect("--seed must be an unsigned integer");
            }
            "--threads" => {
                threads = args
                    .next()
                    .expect("--threads requires a value")
                    .parse()
                    .expect("--threads must be a positive integer");
            }
            "--ops" => {
                ops = args
                    .next()
                    .expect("--ops requires a value")
                    .parse()
                    .expect("--ops must be a positive integer");
            }
            "--help" | "-h" => {
                eprintln!("usage: rt_snapshot [--out DIR] [--seed N] [--threads T] [--ops N]");
                return;
            }
            other => panic!("unknown argument {other:?}"),
        }
    }

    // One fleet for the whole run: three store servers hosting a
    // replicated collection, pre-populated with MEMBERS elements.
    let mut rt = ThreadedRuntime::<StoreMsg>::new(seed);
    let servers: Vec<NodeId> = (0..3).map(|i| rt.add_node(format!("s{i}"))).collect();
    for &s in &servers {
        rt.install_service(s, Box::new(StoreServer::new()));
    }
    let setup_node = rt.add_node("setup");
    let setup = StoreClient::new(setup_node, SimDuration::from_millis(500));
    let cref = CollectionRef {
        id: COLL,
        home: servers[0],
        replicas: servers[1..].to_vec(),
    };
    setup.create_collection(&mut rt, &cref).unwrap();
    for i in 1..=MEMBERS {
        let home = servers[(i % 3) as usize];
        setup
            .put_object(
                &mut rt,
                home,
                ObjectRecord::new(ObjectId(i), format!("o{i}"), &b"payload"[..]),
            )
            .unwrap();
        setup
            .add_member(
                &mut rt,
                &cref,
                MemberEntry {
                    elem: ObjectId(i),
                    home,
                },
            )
            .unwrap();
    }

    let mut master = MetricsRegistry::new();
    let mut snap = master.snapshot("rt", seed);
    for policy in [
        ReadPolicy::Primary,
        ReadPolicy::Quorum,
        ReadPolicy::Leaderless,
    ] {
        let label = policy_label(policy);
        // One client node (and thus one mailbox identity) per worker
        // thread, each driving its own cloned runtime view.
        let worker_nodes: Vec<NodeId> = (0..threads)
            .map(|t| rt.add_node(format!("load.{label}.{t}")))
            .collect();
        let started = Instant::now();
        let handles: Vec<_> = worker_nodes
            .into_iter()
            .map(|node| {
                let mut view = rt.clone();
                let cref = cref.clone();
                let metric = format!("rt.read.{label}.us");
                std::thread::spawn(move || {
                    let client = StoreClient::new(node, SimDuration::from_millis(500));
                    for _ in 0..ops {
                        let t0 = Instant::now();
                        let read = client
                            .read_members(&mut view, &cref, policy)
                            .expect("read against a healthy fleet");
                        assert_eq!(read.entries.len() as u64, MEMBERS);
                        view.metrics_mut()
                            .observe(&metric, t0.elapsed().as_micros() as u64);
                    }
                    view
                })
            })
            .collect();
        for h in handles {
            let view = h.join().expect("worker thread panicked");
            master.merge(view.metrics());
        }
        let elapsed = started.elapsed().as_secs_f64();
        let total_ops = (threads * ops) as u64;
        let ops_per_sec = total_ops as f64 / elapsed.max(f64::EPSILON);
        master.add(&format!("rt.read.{label}.ops"), total_ops);
        let p99 = master
            .latency_mut(&format!("rt.read.{label}.us"))
            .p99()
            .unwrap_or(0);
        println!("{label:>10}: {ops_per_sec:>10.0} ops/sec, read p99 {p99} us");
        snap = snap
            .with_objective(
                &format!("rt.{label}.ops_per_sec"),
                ops_per_sec,
                Direction::HigherIsBetter,
            )
            .with_objective(
                &format!("rt.{label}.read_p99_us"),
                p99 as f64,
                Direction::LowerIsBetter,
            );
    }
    master.merge(rt.metrics());
    if let Err(hung) = rt.shutdown(Duration::from_secs(10)) {
        eprintln!("warning: node threads still running at shutdown: {hung:?}");
    }

    // Re-freeze with the merged counters/latencies, keeping the
    // objectives attached above.
    let objectives = snap.objectives.clone();
    let mut frozen = master.snapshot("rt", seed);
    frozen.objectives = objectives;

    std::fs::create_dir_all(&out).expect("create output directory");
    let path = out.join(frozen.file_name());
    std::fs::write(&path, frozen.to_json()).expect("write snapshot");
    println!(
        "{} ({} counters, {} latencies, {} objectives)",
        path.display(),
        frozen.counters.len(),
        frozen.latencies.len(),
        frozen.objectives.len()
    );
}
